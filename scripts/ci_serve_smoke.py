#!/usr/bin/env python
"""CI smoke for the live control plane (`repro serve`).

Boots the service as a real subprocess on an ephemeral port, then
drives the whole advertised lifecycle over HTTP:

1. poll ``/status`` until the world is warm and at least one live PCS
   decision has fired under the burst trace;
2. poll ``/metrics`` until the Prometheus latency gauges appear;
3. POST a background sweep to ``/sweeps`` and drain it to ``done``;
4. POST ``/shutdown`` and require a clean exit (code 0, no orphan
   process left behind).

Exits non-zero (with the captured server log) on any missed step, so
the tier-2 CI job fails loudly.  Stdlib only.
"""

import json
import re
import subprocess
import sys
import time
import urllib.request

BOOT_TIMEOUT_S = 120.0
DECISION_TIMEOUT_S = 180.0
SWEEP_TIMEOUT_S = 300.0
SHUTDOWN_TIMEOUT_S = 30.0

SERVE_ARGS = [
    sys.executable, "-m", "repro", "serve",
    "--scenario", "fanout-feed",
    "--policy", "PCS",
    "--trace-profile", "burst",
    "--rate", "25",
    "--window-s", "4",
    "--dilation", "50",
    "--profiling-conditions", "6",
    "--shape-scale", "0.2",
    "--nodes", "6",
    "--port", "0",
]

SWEEP_REQUEST = {
    "scenario": "fanout-feed",
    "policies": ["Basic", "PCS"],
    "rates": [20.0],
    "seeds": [0],
    "intervals": 2,
    "warmup_intervals": 0,
    "window_s": 4.0,
    "scale": 0.2,
    "n_nodes": 6,
}


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as resp:
        return resp.read().decode()


def post(base, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else b""
    request = urllib.request.Request(base + path, data=data, method="POST")
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.read().decode()


def wait_for(label, deadline_s, predicate):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        value = predicate()
        if value is not None:
            print(f"ok: {label}")
            return value
        time.sleep(0.5)
    raise SystemExit(f"FAIL: timed out waiting for {label}")


def main() -> int:
    proc = subprocess.Popen(
        SERVE_ARGS,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        announce = proc.stdout.readline()
        print("serve:", announce.strip())
        match = re.search(r"http://[\d.]+:(\d+)", announce)
        if not match:
            raise SystemExit(f"FAIL: no listening address in {announce!r}")
        base = f"http://127.0.0.1:{match.group(1)}"

        def warm():
            status = json.loads(get(base, "/status"))
            loop = status.get("loop") or {}
            if status["status"] == "failed":
                raise SystemExit(f"FAIL: serve failed: {status.get('error')}")
            if loop.get("n_decisions", 0) >= 1 and loop.get("n_requests", 0) > 0:
                return status
            return None

        status = wait_for(
            "live loop running with >= 1 PCS decision",
            max(BOOT_TIMEOUT_S, DECISION_TIMEOUT_S), warm,
        )
        print(
            "  windows={windows_completed} decisions={n_decisions} "
            "migrations={n_migrations}".format(**status["loop"])
        )

        def gauges():
            metrics = get(base, "/metrics")
            wanted = (
                "pcs_window_p99_seconds", "pcs_window_mean_seconds",
                "pcs_decisions_total",
            )
            return metrics if all(g in metrics for g in wanted) else None

        wait_for("latency gauges on /metrics", 60.0, gauges)

        scenarios = json.loads(get(base, "/scenarios"))["scenarios"]
        assert any(s["name"] == "fanout-feed" for s in scenarios)
        print(f"ok: /scenarios lists {len(scenarios)} scenarios")

        job = json.loads(post(base, "/sweeps", SWEEP_REQUEST))
        print(f"ok: sweep {job['id']} started ({job['total']} points)")

        def drained():
            jobs = json.loads(get(base, "/sweeps"))["sweeps"]
            state = next(j for j in jobs if j["id"] == job["id"])
            if state["status"] == "done":
                return state
            if state["status"] in ("failed", "stopped"):
                raise SystemExit(f"FAIL: sweep ended {state}")
            return None

        state = wait_for("background sweep drained", SWEEP_TIMEOUT_S, drained)
        for line in state["results"]:
            print("  ", line)

        print(post(base, "/shutdown").strip())
        code = proc.wait(timeout=SHUTDOWN_TIMEOUT_S)
        if code != 0:
            raise SystemExit(f"FAIL: serve exited {code}")
        print("ok: clean shutdown (exit 0, no orphans)")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
            print("WARN: serve process had to be killed", file=sys.stderr)
        tail = proc.stdout.read()
        if tail:
            print("--- serve log tail ---")
            print(tail)


if __name__ == "__main__":
    sys.exit(main())
