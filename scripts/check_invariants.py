#!/usr/bin/env python
"""Static invariant checks over ``src/repro`` — tier-1 CI gate.

Two repo-wide conventions are load-bearing enough to enforce
mechanically rather than by review:

**Percentile invariant.**  Latency percentiles are nearest-rank, never
interpolated, and every consumer must go through a sanctioned kernel —
``repro.sim.metrics.percentile`` (the shared metric kernel), the
P²-estimator's small-sample fallback in ``repro.monitoring.streaming``,
and the reissue kernel's own-window threshold in
``repro.baselines.routing`` (the one site adaptive kernels also feed
from).  A raw ``np.percentile`` anywhere else silently reintroduces
linear interpolation and breaks the golden pins; exactly one raw call
is allowed per sanctioned file.

**Seeding invariant.**  All randomness flows from named
``repro.rng.RngRegistry`` streams so every run is reproducible from the
root seed.  Unseeded generators (``np.random.default_rng()`` with no
argument), the global legacy API (``np.random.seed``,
``np.random.<dist>(...)``), wall-clock seeding (``time.time()`` mixed
into seeds) and ``random.random``-style stdlib draws are all banned in
library code.

Violations print ``path:line: message`` and exit 1, so the CI log
points straight at the offending statement.  Run from the repo root::

    python scripts/check_invariants.py

An alternative source root can be passed as the sole argument (the
self-test exercises the checker against synthetic trees that way).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Files allowed exactly one raw ``np.percentile`` call each.
PERCENTILE_SANCTIONED = {
    "sim/metrics.py": 1,        # the shared nearest-rank kernel
    "monitoring/streaming.py": 1,  # P2Quantile's <=5-observation fallback
    "baselines/routing.py": 1,  # ReissueKernel's own-window threshold
}

PERCENTILE_CALL = re.compile(r"\bnp\.percentile\s*\(")

#: (pattern, message) pairs banned everywhere under src/repro.
SEEDING_BANS = [
    (
        re.compile(r"\bnp\.random\.default_rng\s*\(\s*\)"),
        "unseeded np.random.default_rng() — draw from a named "
        "RngRegistry stream instead",
    ),
    (
        re.compile(r"\bnp\.random\.seed\s*\("),
        "np.random.seed mutates global state — use RngRegistry",
    ),
    (
        re.compile(r"\bRandomState\s*\("),
        "legacy np.random.RandomState — use RngRegistry streams",
    ),
    (
        re.compile(
            r"\bnp\.random\.(rand|randn|randint|random|choice|shuffle|"
            r"permutation|uniform|normal|exponential|poisson)\s*\("
        ),
        "global legacy np.random API — use RngRegistry streams",
    ),
    (
        re.compile(r"\bimport\s+random\b|\bfrom\s+random\s+import\b"),
        "stdlib random module — use RngRegistry streams",
    ),
    (
        re.compile(r"seed\s*=\s*(int\s*\(\s*)?time\.(time|time_ns)\s*\("),
        "wall-clock seeding breaks reproducibility — seeds come from "
        "the config",
    ),
]


def iter_source_files(src_root: Path) -> list[Path]:
    if not src_root.is_dir():
        print(f"{src_root}: source tree not found", file=sys.stderr)
        sys.exit(2)
    return sorted(src_root.rglob("*.py"))


def strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment (good enough: the conventions
    never put banned calls inside string literals on purpose, and a
    false positive fails loudly rather than silently)."""
    return line.split("#", 1)[0]


def check_file(path: Path, src_root: Path) -> list[str]:
    rel = path.relative_to(src_root).as_posix()
    violations: list[str] = []
    percentile_lines: list[int] = []
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = strip_comment(raw)
        if PERCENTILE_CALL.search(line):
            percentile_lines.append(lineno)
        for pattern, message in SEEDING_BANS:
            if pattern.search(line):
                violations.append(f"{path}:{lineno}: {message}")
    allowed = PERCENTILE_SANCTIONED.get(rel, 0)
    if len(percentile_lines) > allowed:
        for lineno in percentile_lines[allowed:] if allowed else percentile_lines:
            violations.append(
                f"{path}:{lineno}: raw np.percentile outside the "
                f"sanctioned sites — go through repro.sim.metrics."
                f"percentile (nearest-rank) instead"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    src_root = Path(args[0]).resolve() if args else DEFAULT_SRC_ROOT
    enforce_sanctioned = src_root == DEFAULT_SRC_ROOT
    violations: list[str] = []
    missing = []
    seen_raw: dict[str, int] = {}
    files = iter_source_files(src_root)
    for path in files:
        violations.extend(check_file(path, src_root))
        rel = path.relative_to(src_root).as_posix()
        if rel in PERCENTILE_SANCTIONED:
            n = sum(
                1
                for raw in path.read_text().splitlines()
                if PERCENTILE_CALL.search(strip_comment(raw))
            )
            seen_raw[rel] = n
    # The sanctioned sites must still exist: if one disappears (the
    # kernel moved), the allowlist is stale and must be updated here.
    # Only enforced against the real tree — synthetic self-test trees
    # have no business containing the kernels.
    if enforce_sanctioned:
        for rel, expected in PERCENTILE_SANCTIONED.items():
            if seen_raw.get(rel, 0) != expected:
                missing.append(
                    f"{src_root / rel}: expected exactly {expected} "
                    f"sanctioned raw np.percentile call(s), found "
                    f"{seen_raw.get(rel, 0)} — update PERCENTILE_SANCTIONED "
                    f"in scripts/check_invariants.py if the kernel moved"
                )
    problems = violations + missing
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(
            f"\ncheck_invariants: {len(problems)} violation(s)",
            file=sys.stderr,
        )
        return 1
    print(f"check_invariants: OK ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
