"""Benchmark: regenerate Fig. 6 (six-policy latency comparison).

Default scale: a reduced sweep (3 rates, 16 nodes) that preserves every
qualitative feature of the paper's figure — PCS best at moderate/heavy
load, the RED crossover, RED-5 worst, RI conservative.  Run with
``--paper-scale`` for the full 6-rate, 30-node, 100-searching-VM sweep
(about half a minute).
"""

import pytest

from repro.baselines.policies import BasicPolicy, REDPolicy, ReissuePolicy
from repro.experiments.fig6 import Fig6Config, paper_pcs_policy, run_fig6
from repro.service.nutch import NutchConfig


def _config(paper: bool) -> Fig6Config:
    if paper:
        return Fig6Config()
    return Fig6Config(
        arrival_rates=(20.0, 100.0, 300.0),
        n_nodes=16,
        n_intervals=6,
        warmup_intervals=1,
        seed=7,
        nutch=NutchConfig(n_search_groups=10, replicas_per_group=4),
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_policy_comparison(benchmark, paper_scale):
    result = benchmark.pedantic(
        run_fig6, args=(_config(paper_scale),), rounds=1, iterations=1
    )
    print("\n" + result.render())

    rates = sorted(result.results)
    heavy = result.results[rates[-1]]
    light = result.results[rates[0]]
    # Paper-shape assertions.
    # (1) PCS beats Basic and every mitigation technique at heavy load.
    for name in heavy:
        if name != "PCS":
            assert heavy["PCS"].overall_mean_s < heavy[name].overall_mean_s, name
    # (2) redundancy helps at light load but hurts at heavy load.
    assert light["RED-3"].overall_mean_s < light["Basic"].overall_mean_s
    assert heavy["RED-3"].overall_mean_s > heavy["Basic"].overall_mean_s
    # (3) RED-5 is the worst technique at heavy load.
    assert heavy["RED-5"].overall_mean_s == max(
        r.overall_mean_s for r in heavy.values()
    )
    # (4) reissue degrades more gracefully than redundancy.
    assert heavy["RI-90"].overall_mean_s < heavy["RED-3"].overall_mean_s
    # (5) the headline aggregation favours PCS.
    head = result.headline_reduction()
    assert head["tail"] > 0 and head["mean"] > 0


@pytest.mark.benchmark(group="fig6")
def test_fig6_single_heavy_rate(benchmark):
    """One heavy-load cell — the regime the paper's argument lives in."""
    cfg = Fig6Config(
        arrival_rates=(200.0,),
        n_nodes=16,
        n_intervals=6,
        warmup_intervals=1,
        seed=11,
        nutch=NutchConfig(n_search_groups=10, replicas_per_group=4),
        policies=(
            BasicPolicy(),
            REDPolicy(replicas=3),
            ReissuePolicy(quantile=0.90),
            paper_pcs_policy(),
        ),
    )
    result = benchmark.pedantic(run_fig6, args=(cfg,), rounds=1, iterations=1)
    cell = result.results[200.0]
    assert cell["PCS"].component_p99_s < cell["Basic"].component_p99_s
    assert cell["PCS"].n_migrations > 0
