"""Benchmark: the parallel sweep-execution subsystem.

Four claims, measured:

1. fanning a multi-point Fig. 6-style sweep out over 4 workers beats
   the serial path by >= 2x wall-clock (asserted when the host
   actually has >= 4 usable cores — process parallelism cannot beat
   the clock on a 1-core container, so there the ratio is only
   reported);
2. parallel results are *bit-identical* to serial results, point by
   point and for every execution backend (asserted everywhere,
   always);
3. resuming a completed sweep from the on-disk cache is at least an
   order of magnitude faster than recomputing it;
4. on a small grid (<= 8 points) the thread backend beats the spawn
   process backend: spawn pays an interpreter + numpy import and a
   cold predictor memo per worker, which a small grid cannot
   amortise, while threads share all three (asserted everywhere —
   the grid is sized so that start-up tax dominates its compute).

Measured numbers are persisted as ``BENCH_sweep_*.json`` records (see
:mod:`recording`).
"""

import os
import time

import pytest

from recording import record_benchmark
from repro.baselines.policies import BasicPolicy, REDPolicy, ReissuePolicy
from repro.experiments.fig6 import paper_pcs_policy
from repro.service.nutch import NutchConfig
from repro.sim.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.sim.runner import RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepSpec
from repro.workloads.generator import GeneratorConfig


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _sweep_spec(paper: bool) -> SweepSpec:
    """A 12-point grid whose per-point cost dominates spawn overhead."""
    if paper:
        nutch = NutchConfig()
        n_nodes, rates = 30, (10.0, 50.0, 100.0, 200.0)
    else:
        nutch = NutchConfig(n_search_groups=10, replicas_per_group=4)
        n_nodes, rates = 16, (20.0, 60.0, 120.0, 240.0)
    base = RunnerConfig(
        n_nodes=n_nodes,
        arrival_rate=rates[0],
        interval_s=30.0,
        n_intervals=6,
        warmup_intervals=1,
        seed=7,
        nutch=nutch,
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.01, max_batch_jobs_per_node=3
        ),
    )
    return SweepSpec(
        base=base,
        policies=(BasicPolicy(), REDPolicy(replicas=3), ReissuePolicy(0.90)),
        arrival_rates=rates,
        seeds=(7,),
    )


@pytest.mark.benchmark(group="sweep")
def test_sweep_parallel_speedup(benchmark, paper_scale):
    """Serial vs 4-worker wall-clock on the same 12-point grid."""
    spec = _sweep_spec(paper_scale)

    t0 = time.perf_counter()
    serial = ParallelSweepRunner(spec, workers=1).run()
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(
        ParallelSweepRunner(spec, workers=4).run, rounds=1, iterations=1
    )
    parallel_s = time.perf_counter() - t0

    # Claim 2 first — correctness is unconditional.
    for point in spec.points():
        assert (
            parallel.results[point].metrics_dict()
            == serial.results[point].metrics_dict()
        ), point.describe()

    cores = _usable_cores()
    speedup = serial_s / parallel_s
    print(
        f"\n{spec.n_points}-point sweep: serial {serial_s:.1f}s, "
        f"4 workers {parallel_s:.1f}s -> {speedup:.2f}x "
        f"({cores} usable cores)"
    )
    base = spec.base
    record_benchmark(
        "sweep_parallel_speedup",
        {
            "serial": serial_s,
            "parallel_4_workers": parallel_s,
            "speedup": speedup,
            # Feeds repro.sim.sweep.calibrate_wall_s_per_node_second.
            "serial_s_per_point": serial_s / spec.n_points,
        },
        config={
            "n_points": spec.n_points,
            "paper_scale": paper_scale,
            "usable_cores": cores,
            "scenario": spec.scenario,
            "node_seconds_per_point": (
                base.n_intervals * base.interval_s * base.n_nodes
            ),
        },
    )
    if cores >= 4:
        # Claim 1: the whole point of the subsystem.
        assert speedup >= 2.0, (
            f"expected >= 2x speedup at 4 workers on {cores} cores, "
            f"got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= 4 usable cores, host has {cores} "
            f"(measured {speedup:.2f}x; identity checks passed)"
        )


def _small_grid_spec() -> SweepSpec:
    """A 6-point grid sized so start-up tax dominates its compute.

    Tiny topology and short intervals keep per-point work around a
    hundred milliseconds; the PCS policy adds predictor training,
    which the thread backend performs once (shared memo) and every
    spawn worker repeats from a cold memo.
    """
    base = RunnerConfig(
        n_nodes=6,
        arrival_rate=30.0,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=0,
        nutch=NutchConfig(
            n_search_groups=3, replicas_per_group=2,
            n_segmenters=1, n_aggregators=1,
        ),
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.02, max_batch_jobs_per_node=3
        ),
        n_profiling_conditions=8,
    )
    return SweepSpec(
        base=base,
        policies=(BasicPolicy(), REDPolicy(replicas=2), paper_pcs_policy()),
        arrival_rates=(30.0, 70.0),
        seeds=(0,),
    )


@pytest.mark.benchmark(group="sweep")
def test_sweep_backends_small_grid(benchmark):
    """Claim 4: per-backend wall-clock on a small (6-point) grid.

    Thread workers share the interpreter, the imported modules and the
    predictor memo; spawn workers each pay an interpreter + numpy
    import and train their own predictor.  On a grid this small that
    overhead cannot be amortised, so the thread backend must win —
    exactly the regime the ``auto`` rule routes to threads.
    """
    spec = _small_grid_spec()
    assert spec.n_points <= 8

    # The cost-aware auto rule must route this small *cheap* grid to
    # threads (the spec-based estimate sits below the spawn-tax
    # cutoff); the recorded choice rides in the benchmark artifact so
    # CI provenance shows what `auto` actually picked.
    auto_choice = ParallelSweepRunner(spec, workers=4)._resolve_backend(
        spec.n_points, []
    ).name
    assert auto_choice == "thread", (
        f"auto routed the small cheap grid to {auto_choice!r}"
    )

    backends = {
        "serial": SerialBackend(),
        "thread": ThreadBackend(4),
        "process": ProcessBackend(4),
        "process_chunked": ProcessBackend(4, chunk_size=2),
    }
    timings = {}
    outcomes = {}

    def run_all():
        for name, backend in backends.items():
            t0 = time.perf_counter()
            outcomes[name] = ParallelSweepRunner(
                spec, workers=4, backend=backend
            ).run()
            timings[name] = time.perf_counter() - t0

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Claim 2 first — every backend agrees with serial, bit for bit.
    for name in backends:
        for point in spec.points():
            assert (
                outcomes[name].results[point].metrics_dict()
                == outcomes["serial"].results[point].metrics_dict()
            ), f"{name}: {point.describe()}"

    speedup = timings["process"] / timings["thread"]
    print(
        f"\n{spec.n_points}-point grid: "
        + ", ".join(f"{n} {t:.2f}s" for n, t in timings.items())
        + f" -> thread beats spawn {speedup:.2f}x"
    )
    record_benchmark(
        "sweep_backends_small_grid",
        {**timings, "thread_vs_process_speedup": speedup},
        config={
            "n_points": spec.n_points,
            "workers": 4,
            "chunk_size_chunked": 2,
            "usable_cores": _usable_cores(),
            "scenario": spec.scenario,
            "auto_backend_choice": auto_choice,
        },
    )
    # Claim 4: the whole point of the thread backend.
    assert timings["thread"] < timings["process"], (
        f"expected the thread backend to beat spawn on a "
        f"{spec.n_points}-point grid, got thread {timings['thread']:.2f}s "
        f"vs process {timings['process']:.2f}s"
    )


@pytest.mark.benchmark(group="sweep")
def test_sweep_cache_resume(benchmark, tmp_path):
    """Claim 3: a warm cache turns the sweep into pure JSON reads."""
    spec = _sweep_spec(paper=False)

    t0 = time.perf_counter()
    cold = ParallelSweepRunner(spec, workers=1, cache=tmp_path).run()
    cold_s = time.perf_counter() - t0
    assert cold.cache_hits == 0

    warm = benchmark.pedantic(
        ParallelSweepRunner(spec, workers=1, cache=tmp_path).run,
        rounds=1,
        iterations=1,
    )
    assert warm.cache_hits == spec.n_points
    for point in spec.points():
        assert (
            warm.results[point].metrics_dict()
            == cold.results[point].metrics_dict()
        )
    print(
        f"\ncold sweep {cold_s:.1f}s, warm resume {warm.wall_time_s:.3f}s "
        f"({cold_s / max(warm.wall_time_s, 1e-9):.0f}x)"
    )
    record_benchmark(
        "sweep_cache_resume",
        {
            "cold": cold_s,
            "warm": warm.wall_time_s,
            "speedup": cold_s / max(warm.wall_time_s, 1e-9),
        },
        config={"n_points": spec.n_points, "scenario": spec.scenario},
    )
    assert warm.wall_time_s * 10 < cold_s
