"""Benchmark: live control loop vs batch replay on fanout-feed.

The control-plane refactor routes *both* execution modes through one
:class:`~repro.controlplane.loop.ControlLoop` body; this benchmark
records what the live mode costs on top of the replay:

- **batch replay** — ``ExperimentRunner.run`` (a ControlLoop on a
  :class:`~repro.controlplane.clock.VirtualClock`, exact summaries, a
  decision between windows);
- **live loop** — the same seeded world with ``live=True`` on a
  heavily dilated :class:`~repro.controlplane.clock.WallClock`
  (streaming summaries, a decision after *every* window, rolling
  gauges, bounded history) — the hot path of ``repro serve`` with the
  pacing cost made negligible by dilation.

Recorded in ``BENCH_serve_loop.json``: windows/second for both modes
and the live mode's mean/max per-window decision latency (the
monitor→predict→decide→act pass a real deployment would pay between
windows).
"""

import time

from recording import record_benchmark
from repro.controlplane.clock import WallClock
from repro.controlplane.loop import ControlLoop
from repro.experiments.fig6 import paper_pcs_policy
from repro.scenarios import get_scenario
from repro.sim.runner import ExperimentRunner

N_WINDOWS = 24
_CONFIG = {
    "scenario": "fanout-feed",
    "policy": "PCS",
    "n_nodes": 8,
    "arrival_rate": 40.0,
    "window_s": 8.0,
    "n_windows": N_WINDOWS,
    "scale": 0.5,
    "trace_profile": "burst",
    "dilation": 1e6,
}


def _runner(summary_mode):
    spec = get_scenario("fanout-feed")
    return ExperimentRunner(
        spec.runner_config(
            n_nodes=8, arrival_rate=40.0, interval_s=8.0,
            n_intervals=N_WINDOWS, warmup_intervals=0, seed=0,
            n_profiling_conditions=8, scale=0.5, trace_profile="burst",
            summary_mode=summary_mode,
        )
    )


def test_serve_loop(capsys):
    # Batch replay: the facade path (VirtualClock, exact summaries).
    runner = _runner("exact")
    t0 = time.perf_counter()
    result = runner.run(paper_pcs_policy())
    wall_batch = time.perf_counter() - t0
    assert result.n_requests > 0

    # Live loop: same seeded world, decisions after every window, on a
    # wall clock dilated hard enough that pacing costs ~nothing.
    runner = _runner("streaming")
    state = runner.setup(paper_pcs_policy())
    clock = WallClock(
        origin=runner.config.churn_prewarm_s, dilation=_CONFIG["dilation"]
    )
    loop = ControlLoop(
        runner, state, clock=clock, live=True, history_limit=N_WINDOWS,
    )
    latencies = []
    t0 = time.perf_counter()
    for window in range(N_WINDOWS):
        loop.run_window(window)
        latencies.append(loop.last_decision_latency_s)
    wall_live = time.perf_counter() - t0
    assert loop.decide.n_decisions == N_WINDOWS
    assert all(lat is not None for lat in latencies)

    batch_wps = N_WINDOWS / wall_batch
    live_wps = N_WINDOWS / wall_live
    mean_decision = sum(latencies) / len(latencies)
    max_decision = max(latencies)
    # The live loop must stay within the paper's online budget: the
    # decision pass is a small fraction of an 8 s window.
    assert max_decision < runner.config.interval_s

    record_benchmark(
        "serve_loop",
        {
            "batch_wall_s": wall_batch,
            "live_wall_s": wall_live,
            "batch_windows_per_s": batch_wps,
            "live_windows_per_s": live_wps,
            "live_over_batch_wall": wall_live / wall_batch,
            "decision_latency_mean_s": mean_decision,
            "decision_latency_max_s": max_decision,
        },
        config={**_CONFIG, "n_requests_live": int(state.n_requests)},
    )
    with capsys.disabled():
        print(
            f"\n[serve-loop] {N_WINDOWS} windows: "
            f"batch {batch_wps:.1f} w/s, live {live_wps:.1f} w/s "
            f"({wall_live / wall_batch:.2f}x batch wall); "
            f"decision latency mean {mean_decision * 1e3:.1f} ms, "
            f"max {max_decision * 1e3:.1f} ms"
        )
