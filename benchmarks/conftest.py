"""Shared fixtures for the benchmark harness.

Every benchmark regenerates (a scaled version of) one of the paper's
evaluation artifacts and prints the same rows/series the paper reports;
``pytest benchmarks/ --benchmark-only`` is the reproduction driver.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the Fig. 6 benchmark at the paper's full scale "
        "(30 nodes, 100 searching components, six arrival rates)",
    )


@pytest.fixture(scope="session")
def paper_scale(request):
    """Whether to use the full paper-scale configurations."""
    return request.config.getoption("--paper-scale")
