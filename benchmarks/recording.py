"""Machine-readable benchmark records: ``BENCH_<name>.json``.

Every benchmark that prints a timing also persists it through
:func:`record_benchmark`, so the perf trajectory of the repository is
recorded rather than scrolled away: one JSON file per benchmark name
holding the timings, the configuration they were measured under, the
git SHA and a UTC timestamp.  CI uploads the files as artifacts; local
runs leave them under ``benchmarks/results/`` (override with the
``BENCH_OUTPUT_DIR`` environment variable).

Schema (version 1)::

    {
      "schema_version": 1,
      "name": "<benchmark name>",
      "created": "<UTC ISO-8601>",
      "git_sha": "<commit>" | null,
      "config": {...},          # what was measured (shape knobs)
      "timings_s": {...}        # label -> seconds (or derived ratios)
    }

Floats round-trip exactly (``json`` serialises via ``repr``), so
records can be diffed numerically across commits.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Mapping, Optional, Union

__all__ = ["record_benchmark", "load_benchmark_records", "bench_output_dir"]

SCHEMA_VERSION = 1


def bench_output_dir() -> Path:
    """Where records land: ``$BENCH_OUTPUT_DIR`` or benchmarks/results."""
    default = Path(__file__).resolve().parent / "results"
    return Path(os.environ.get("BENCH_OUTPUT_DIR", default))


def _git_sha() -> Optional[str]:
    """The repository's HEAD commit, or ``None`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def record_benchmark(
    name: str,
    timings_s: Mapping[str, float],
    config: Optional[Mapping[str, object]] = None,
    out_dir: Union[str, Path, None] = None,
) -> Path:
    """Write (atomically) one ``BENCH_<name>.json`` record; returns it.

    ``name`` becomes the filename stem — keep it ``[a-z0-9_]`` so the
    CI artifact glob ``BENCH_*.json`` stays simple.  ``timings_s`` maps
    labels to measured seconds (derived ratios like speedups are fine
    too — the label should say so).  ``config`` records whatever shape
    knobs make the numbers comparable across commits.
    """
    if not name or any(c in name for c in "/\\ "):
        raise ValueError(f"bad benchmark name {name!r}")
    directory = Path(out_dir) if out_dir is not None else bench_output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "config": dict(config or {}),
        "timings_s": {k: float(v) for k, v in timings_s.items()},
    }
    path = directory / f"BENCH_{name}.json"
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    os.replace(tmp, path)
    return path


def load_benchmark_records(out_dir: Union[str, Path, None] = None) -> list:
    """Read every ``BENCH_*.json`` record under ``out_dir``, sorted by name.

    The inverse of :func:`record_benchmark`: returns the parsed payload
    dicts of every record whose ``schema_version`` matches
    :data:`SCHEMA_VERSION`.  Unparseable files and foreign schema
    versions are skipped (a half-written record from a crashed run, or
    one written by a newer harness, must not poison consumers such as
    the sweep cost calibration) — an absent directory simply yields
    ``[]``.
    """
    directory = Path(out_dir) if out_dir is not None else bench_output_dir()
    records = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if (
            isinstance(payload, dict)
            and payload.get("schema_version") == SCHEMA_VERSION
        ):
            records.append(payload)
    return records
