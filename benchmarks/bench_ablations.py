"""Benchmark: the design-choice ablations of DESIGN.md.

Each timed call also prints its ablation table, so a benchmark run
leaves the full evidence trail in the log.
"""

import pytest

from repro.experiments.ablations import (
    AblationConfig,
    build_method_comparison,
    hierarchy_tradeoff,
    monitor_noise_sensitivity,
    predictor_fidelity,
    threshold_sweep,
    update_mode_comparison,
)

SMALL = AblationConfig(
    arrival_rate=100.0,
    n_nodes=12,
    n_intervals=5,
    warmup_intervals=1,
)


@pytest.mark.benchmark(group="ablations")
def test_threshold_sweep(benchmark):
    out = benchmark.pedantic(
        threshold_sweep, args=(SMALL,), kwargs={"epsilons_ms": (0.3, 1.0, 5.0)},
        rounds=1, iterations=1,
    )
    print("\n" + out)
    assert "Basic" in out


@pytest.mark.benchmark(group="ablations")
def test_update_mode(benchmark):
    out = benchmark.pedantic(
        update_mode_comparison, kwargs={"sizes": ((80, 16), (160, 32))},
        rounds=1, iterations=1,
    )
    print("\n" + out)
    assert "Algorithm 2" in out


@pytest.mark.benchmark(group="ablations")
def test_build_method(benchmark):
    out = benchmark.pedantic(build_method_comparison, rounds=1, iterations=1)
    print("\n" + out)
    assert "speedup" in out


@pytest.mark.benchmark(group="ablations")
def test_predictor_fidelity(benchmark):
    out = benchmark.pedantic(
        predictor_fidelity, args=(SMALL,), rounds=1, iterations=1
    )
    print("\n" + out)
    assert "oracle" in out


@pytest.mark.benchmark(group="ablations")
def test_hierarchy(benchmark):
    out = benchmark.pedantic(
        hierarchy_tradeoff,
        kwargs={"m": 480, "k": 32, "group_sizes": (120, 480)},
        rounds=1,
        iterations=1,
    )
    print("\n" + out)
    assert "group size" in out


@pytest.mark.benchmark(group="ablations")
def test_monitor_noise(benchmark):
    out = benchmark.pedantic(
        monitor_noise_sensitivity,
        kwargs={"noise_scales": (0.0, 1.0, 5.0), "cfg": SMALL},
        rounds=1,
        iterations=1,
    )
    print("\n" + out)
    assert "noise" in out
