"""Benchmark: the vectorised interval simulator per routing kernel.

One scheduling interval of the full Nutch-like service at a moderate
rate — the inner loop of every Fig. 6 cell — timed per routing policy,
plus the event-driven reference for contrast.  Each timing is also
persisted as a machine-readable ``BENCH_queue_sim_*.json`` record (see
:mod:`recording`).
"""

import numpy as np
import pytest

from recording import record_benchmark
from repro.baselines.policies import (
    BasicPolicy,
    PCSPolicy,
    REDPolicy,
    ReissuePolicy,
)
from repro.service.nutch import build_nutch_service
from repro.sim.des_service import DESServiceSimulator
from repro.sim.queue_sim import simulate_service_interval

POLICIES = [
    BasicPolicy(),
    REDPolicy(replicas=3),
    REDPolicy(replicas=5),
    ReissuePolicy(quantile=0.90),
    PCSPolicy(),
]

_SIM_CONFIG = {"arrival_rate": 100.0, "duration_s": 30.0, "topology": "nutch"}


def _bench_name(label: str) -> str:
    return "queue_sim_" + label.lower().replace("-", "")


@pytest.fixture(scope="module")
def service_and_dists():
    service = build_nutch_service()
    dists = {c.name: c.base_service for c in service.components}
    return service, dists


def _record_from_stats(benchmark, name: str, config: dict) -> None:
    """Persist the rounds pytest-benchmark itself measured — one timing
    source, no parallel perf_counter bookkeeping to drift from it."""
    stats = benchmark.stats.stats
    record_benchmark(
        name,
        {"round_min": stats.min, "round_mean": stats.mean},
        config={**config, "rounds": len(stats.data)},
    )


@pytest.mark.benchmark(group="queue-sim")
@pytest.mark.parametrize("policy", POLICIES, ids=[p.name for p in POLICIES])
def test_interval_simulation(benchmark, policy, service_and_dists):
    service, dists = service_and_dists

    def run():
        return simulate_service_interval(
            service.topology,
            policy,
            arrival_rate=100.0,
            duration_s=30.0,
            service_dists=dists,
            rng=np.random.default_rng(0),
        )

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.n_requests > 0
    _record_from_stats(
        benchmark,
        _bench_name(policy.name),
        {**_SIM_CONFIG, "policy": policy.name},
    )


@pytest.mark.benchmark(group="queue-sim")
def test_des_reference_simulation(benchmark, service_and_dists):
    """The per-event reference — orders of magnitude slower, kept for
    validation; benchmarked at a reduced load."""
    service, dists = service_and_dists

    def run():
        sim = DESServiceSimulator(
            service.topology, dists, np.random.default_rng(0)
        )
        return sim.run(arrival_rate=20.0, duration_s=10.0)

    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.completed > 0
    _record_from_stats(
        benchmark,
        "queue_sim_des_reference",
        {"arrival_rate": 20.0, "duration_s": 10.0, "topology": "nutch"},
    )
