"""Benchmark: regenerate Fig. 7 (scheduler scalability).

Times one full scheduling interval (matrix construction + greedy
search) per (m, k) grid point, exactly the quantity the paper plots;
the (640, 128) point is the paper's quoted 551 ms.
"""

import numpy as np
import pytest

from repro.experiments.fig7 import PAPER_INTERVAL_S, make_instance, _oracle
from repro.scheduler.hierarchical import HierarchicalScheduler
from repro.scheduler.pcs import PCSScheduler, SchedulerConfig
from repro.scheduler.threshold import StaticThreshold
from repro.units import ms

GRID = [(40, 8), (80, 16), (160, 32), (320, 64), (640, 128)]


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("m,k", GRID, ids=[f"{m}x{k}" for m, k in GRID])
def test_fig7_schedule_interval(benchmark, m, k):
    predictor = _oracle()
    config = SchedulerConfig(threshold=StaticThreshold(ms(1)))

    def run():
        inputs = make_instance(m, k, np.random.default_rng(0))
        return PCSScheduler(predictor, config).schedule(inputs)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    # The paper's scalability claim: far below the scheduling interval.
    assert outcome.total_time_s < 0.02 * PAPER_INTERVAL_S


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("m", [1280, 2560])
def test_fig7_hierarchical(benchmark, m):
    """§VI-D's grouped strategy beyond 640 components."""
    predictor = _oracle()
    config = SchedulerConfig(threshold=StaticThreshold(ms(1)))

    def run():
        inputs = make_instance(m, 128, np.random.default_rng(0))
        return HierarchicalScheduler(predictor, config, group_size=640).schedule(
            inputs
        )

    outcome = benchmark.pedantic(run, rounds=2, iterations=1)
    assert outcome.n_migrations > 0
