"""Micro-benchmarks of the numerical kernels everything rests on.

Guards the vectorisation wins the HPC guides call for: the Lindley
max-prefix-scan form must stay an order of magnitude faster than the
reference loop, and the fast matrix build must dominate the reference
build.
"""

import numpy as np
import pytest

from repro.experiments.fig7 import make_instance, _oracle
from repro.model.matrix import PerformanceMatrix
from repro.model.queueing import mg1_latency_array
from repro.simcore.lindley import lindley_waits, lindley_waits_reference


@pytest.fixture(scope="module")
def queue_sample():
    rng = np.random.default_rng(0)
    n = 200_000
    arrivals = np.cumsum(rng.exponential(0.01, n))
    services = rng.exponential(0.008, n)
    return arrivals, services


@pytest.mark.benchmark(group="kernels")
def test_lindley_vectorised(benchmark, queue_sample):
    arrivals, services = queue_sample
    waits = benchmark(lindley_waits, arrivals, services)
    assert waits.shape == arrivals.shape


@pytest.mark.benchmark(group="kernels")
def test_lindley_reference_small(benchmark, queue_sample):
    # The reference loop is only benchmarked on a slice — it exists as
    # the specification, not the production kernel.
    arrivals, services = queue_sample
    benchmark(lindley_waits_reference, arrivals[:5_000], services[:5_000])


@pytest.mark.benchmark(group="kernels")
def test_mg1_latency_array(benchmark):
    rng = np.random.default_rng(1)
    means = rng.uniform(0.002, 0.02, 10_000)
    scv = rng.uniform(0.2, 2.0, 10_000)
    lam = rng.uniform(1.0, 100.0, 10_000)
    out = benchmark(mg1_latency_array, means, scv, lam)
    assert np.all(np.isfinite(out))


@pytest.mark.benchmark(group="kernels")
@pytest.mark.parametrize("method", ["fast", "reference"])
def test_matrix_build(benchmark, method):
    size = (60, 10) if method == "reference" else (160, 32)
    inputs = make_instance(*size, np.random.default_rng(2))
    predictor = _oracle()

    def build():
        return PerformanceMatrix(inputs.copy(), predictor).build(method)

    pm = benchmark.pedantic(build, rounds=2, iterations=1)
    assert pm.L is not None
