"""Benchmark: adaptive vs fixed duplication + the §VI-C closed loop.

Two artifacts on the quick Fig. 6 grid (``BENCH_adaptive_routing.json``):

- **fixed vs adaptive p99** — RI-90 against its online-tuned ARI-90
  counterpart (and Basic as the floor) at every grid rate, so the cost
  of routing with the streamed cross-window threshold instead of each
  window's own noisy percentile is tracked commit over commit;
- **predicted vs measured crossover** — the analytic
  :func:`~repro.experiments.analysis.predicted_crossover_rate` (M/G/1
  with induced per-replica rates + exponential benefit transforms)
  against the measured
  :func:`~repro.experiments.analysis.summary_crossover_rate` for
  RED-3.  The acceptance bar asserted here (and in tier-2 CI, which
  runs this file): the two crossovers land within **one grid step** of
  each other — the idle-node service model under-prices cluster
  interference, so the predicted crossing sits a touch high, but it
  must pick (nearly) the same grid segment Fig. 6 measures.
"""

import time

from recording import record_benchmark
from repro.baselines.policies import (
    AdaptiveReissuePolicy,
    BasicPolicy,
    REDPolicy,
    ReissuePolicy,
)
from repro.experiments.analysis import (
    predicted_crossover_rate,
    summary_crossover_rate,
)
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.scenarios import get_scenario
from repro.service.nutch import NutchConfig

RATES = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0)

_CONFIG = Fig6Config(
    arrival_rates=RATES,
    n_nodes=12,
    interval_s=8.0,
    n_intervals=3,
    warmup_intervals=1,
    seed=7,
    nutch=NutchConfig(
        n_search_groups=4, replicas_per_group=5,
        n_segmenters=1, n_aggregators=1,
    ),
    policies=(
        BasicPolicy(),
        REDPolicy(replicas=3),
        ReissuePolicy(quantile=0.90),
        AdaptiveReissuePolicy(quantile=0.90),
    ),
)


def _segment_index(rates, x):
    """Which grid segment a crossover landed in: the largest ``i``
    with ``rates[i] <= x`` (``len(rates) - 1`` for "past the grid",
    which is also where a no-crossover ``None`` is binned)."""
    if x is None:
        return len(rates) - 1
    idx = 0
    for i, r in enumerate(rates):
        if x >= r:
            idx = i
    return idx


def test_adaptive_routing(capsys):
    t0 = time.perf_counter()
    result = run_fig6(_CONFIG, workers=4, backend="thread")
    wall_sweep = time.perf_counter() - t0
    summary = result.seed_summary()

    # -- fixed vs adaptive p99 across the grid -------------------------
    p99 = {
        name: {
            rate: summary.get(name, rate)["component_latency.p99"].mean
            for rate in summary.rates()
        }
        for name in ("Basic", "RI-90", "ARI-90")
    }
    # The adaptive kernel must stay in the same regime as its fixed
    # counterpart everywhere on the grid (the tuned timer is a stabler
    # estimate of the same quantile, not a different policy).
    for rate in RATES:
        assert p99["ARI-90"][rate] < 3 * p99["RI-90"][rate], rate

    # -- predicted vs measured crossover (RED-3) -----------------------
    measured = summary_crossover_rate(summary, "RED-3")
    t1 = time.perf_counter()
    topology = get_scenario("nutch-search").build_service(
        _CONFIG.runner_config(RATES[0])
    ).topology
    predicted = predicted_crossover_rate(
        topology, REDPolicy(replicas=3), RATES
    )
    wall_predict = time.perf_counter() - t1
    seg_measured = _segment_index(RATES, measured)
    seg_predicted = _segment_index(RATES, predicted)
    # The acceptance bar: within one grid step of each other.
    assert abs(seg_predicted - seg_measured) <= 1, (measured, predicted)

    record_benchmark(
        "adaptive_routing",
        {
            "sweep_wall_s": wall_sweep,
            "predict_wall_s": wall_predict,
            "measured_crossover_rps": measured,
            "predicted_crossover_rps": predicted,
            "measured_crossover_segment": float(seg_measured),
            "predicted_crossover_segment": float(seg_predicted),
            **{
                f"p99_{name.lower().replace('-', '_')}_at_{rate:g}": v
                for name, per_rate in p99.items()
                for rate, v in per_rate.items()
            },
        },
        config={
            "scenario": "nutch-search",
            "arrival_rates": list(RATES),
            "n_nodes": _CONFIG.n_nodes,
            "interval_s": _CONFIG.interval_s,
            "n_intervals": _CONFIG.n_intervals,
            "warmup_intervals": _CONFIG.warmup_intervals,
            "seed": _CONFIG.seed,
            "policies": [p.name for p in _CONFIG.policies],
            "crossover_technique": "RED-3",
        },
    )
    with capsys.disabled():
        print(
            f"\n[adaptive-routing] sweep {wall_sweep:.1f}s | RED-3 "
            f"crossover measured {measured:.0f} req/s (segment "
            f"{seg_measured}) vs predicted "
            f"{predicted:.0f} req/s (segment {seg_predicted})"
        )
        for rate in RATES:
            print(
                f"  {rate:5g} req/s  p99  Basic "
                f"{p99['Basic'][rate] * 1e3:7.2f} ms | RI-90 "
                f"{p99['RI-90'][rate] * 1e3:7.2f} ms | ARI-90 "
                f"{p99['ARI-90'][rate] * 1e3:7.2f} ms"
            )
