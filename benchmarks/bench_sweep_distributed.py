"""Benchmark: the distributed (spool) sweep backend.

Three claims, measured:

1. a sweep coordinated through a spool directory with two
   ``python -m repro.worker`` subprocess workers is *bit-identical* to
   the serial run, point by point (asserted everywhere, always);
2. the per-job dispatch tax — the filesystem round-trip of submit ->
   claim -> result -> consume, with no compute in between — is small
   and of the order of :data:`repro.sim.backends.NETWORK_DISPATCH_TAX_S`,
   the constant the cost-aware ``auto`` rule uses to decide when a
   grid is expensive enough to ship to the spool (measured and
   recorded; asserted only against a generous ceiling, since shared
   CI filesystems jitter);
3. coordinator wall-clock decomposes into worker compute plus spool
   overhead: the run's results carry their worker-side
   ``wall_time_s``, so the record shows both sides of the ledger.

Measured numbers are persisted as ``BENCH_sweep_distributed.json``
(see :mod:`recording`).
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from recording import record_benchmark
from repro.baselines.policies import BasicPolicy, REDPolicy
from repro.service.nutch import NutchConfig
from repro.sim.backends import NETWORK_DISPATCH_TAX_S
from repro.sim.distributed import (
    DistributedBackend,
    SweepSpool,
    encode_task,
    request_stop,
)
from repro.sim.runner import RunnerConfig
from repro.sim.sweep import ParallelSweepRunner, SweepSpec
from repro.workloads.generator import GeneratorConfig


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _grid_spec() -> SweepSpec:
    """An 8-point grid: big enough to spread over two workers, small
    enough for CI."""
    base = RunnerConfig(
        n_nodes=6,
        arrival_rate=30.0,
        interval_s=8.0,
        n_intervals=3,
        warmup_intervals=1,
        seed=0,
        nutch=NutchConfig(
            n_search_groups=3, replicas_per_group=2,
            n_segmenters=1, n_aggregators=1,
        ),
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.02, max_batch_jobs_per_node=3
        ),
        n_profiling_conditions=8,
    )
    return SweepSpec(
        base=base,
        policies=(BasicPolicy(), REDPolicy(replicas=2)),
        arrival_rates=(30.0, 70.0),
        seeds=(0, 1),
    )


def _spawn_workers(spool: Path, n: int):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH", "")) if p
    )
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro.worker", str(spool)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for _ in range(n)
    ]


@pytest.mark.benchmark(group="sweep")
def test_sweep_distributed_speedup(benchmark, tmp_path):
    """Coordinator + 2 spool workers vs serial, plus the dispatch tax."""
    spec = _grid_spec()

    # Claim 2: the raw protocol round-trip, no compute.  One trivial
    # payload cycled through submit -> claim -> result -> consume is
    # exactly the filesystem overhead every real job pays on top of
    # its compute.
    spool = SweepSpool(tmp_path / "tax-spool").ensure()
    entry = encode_task(0, (spec.base, BasicPolicy()))
    rounds = 50
    t0 = time.perf_counter()
    for i in range(rounds):
        job_id = f"tax-{i:06d}"
        spool.submit_job(job_id, "tax", [entry])
        payload = spool.claim(job_id)
        assert payload is not None
        spool.write_result(job_id, {"status": "ok", "results": []})
        spool.release_claim(job_id)
        assert spool.read_result(job_id) is not None
        spool.consume_result(job_id)
    dispatch_tax_s = (time.perf_counter() - t0) / rounds

    t0 = time.perf_counter()
    serial = ParallelSweepRunner(spec, backend="serial").run()
    serial_s = time.perf_counter() - t0

    work_spool = tmp_path / "spool"
    workers = _spawn_workers(work_spool, 2)
    try:
        t0 = time.perf_counter()
        distributed = benchmark.pedantic(
            ParallelSweepRunner(
                spec,
                backend=DistributedBackend(
                    work_spool,
                    chunk_size=1,
                    wait_workers=2,
                    poll_interval_s=0.02,
                ),
            ).run,
            rounds=1,
            iterations=1,
        )
        distributed_s = time.perf_counter() - t0
    finally:
        request_stop(work_spool)
        for proc in workers:
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()

    # Claim 1 first — correctness is unconditional.
    for point in spec.points():
        assert (
            distributed.results[point].metrics_dict()
            == serial.results[point].metrics_dict()
        ), point.describe()

    # Claim 3: both sides of the ledger.  Worker-side compute is what
    # the results themselves measured; everything else the coordinator
    # waited for is spool overhead (dispatch, polling, worker startup).
    worker_compute_s = sum(
        r.wall_time_s for r in distributed.results.values()
    )
    speedup = serial_s / distributed_s
    cores = _usable_cores()
    print(
        f"\n{spec.n_points}-point sweep: serial {serial_s:.1f}s, "
        f"2 spool workers {distributed_s:.1f}s -> {speedup:.2f}x; "
        f"worker compute {worker_compute_s:.1f}s, dispatch tax "
        f"{dispatch_tax_s * 1e3:.1f} ms/job ({cores} usable cores)"
    )
    base = spec.base
    record_benchmark(
        "sweep_distributed",
        {
            "serial": serial_s,
            "distributed_2_workers": distributed_s,
            "speedup": speedup,
            "worker_compute_total": worker_compute_s,
            "coordinator_overhead": distributed_s - worker_compute_s / 2,
            "dispatch_tax_per_job": dispatch_tax_s,
            "serial_s_per_point": serial_s / spec.n_points,
        },
        config={
            "n_points": spec.n_points,
            "workers": 2,
            "chunk_size": 1,
            "usable_cores": cores,
            "scenario": spec.scenario,
            "network_dispatch_tax_constant_s": NETWORK_DISPATCH_TAX_S,
            "node_seconds_per_point": (
                base.n_intervals * base.interval_s * base.n_nodes
            ),
        },
    )
    # Claim 2: the dispatch tax must stay in the regime the auto rule
    # assumes — well under a second per job on any sane filesystem.
    # (The constant itself is ~0.05 s; CI shared disks jitter, so the
    # assertion leaves an order of magnitude of headroom.)
    assert dispatch_tax_s < 10 * NETWORK_DISPATCH_TAX_S, (
        f"spool round-trip took {dispatch_tax_s:.3f}s/job; "
        f"NETWORK_DISPATCH_TAX_S assumes ~{NETWORK_DISPATCH_TAX_S}s"
    )
