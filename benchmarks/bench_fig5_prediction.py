"""Benchmark: regenerate Fig. 5 (prediction accuracy of Eq. 1).

Prints the per-workload error table and checks the paper-shape bounds
while timing the full profiling + training + evaluation campaign.
"""

import pytest

from repro.experiments.fig5 import PAPER_FIG5, Fig5Config, run_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_prediction_accuracy(benchmark):
    result = benchmark.pedantic(
        run_fig5, args=(Fig5Config(seed=0),), rounds=1, iterations=1
    )
    print("\n" + result.render())
    # Paper-shape assertions: error magnitude and bucket ordering.
    assert result.mape < 2 * PAPER_FIG5["mape"]
    buckets = result.buckets
    assert buckets[3.0] <= buckets[5.0] <= buckets[8.0]
    assert buckets[8.0] >= 0.9


@pytest.mark.benchmark(group="fig5")
def test_fig5_reduced_grid(benchmark):
    """A smaller grid for quick runs; same pipeline."""
    result = benchmark.pedantic(
        run_fig5,
        args=(Fig5Config(n_hadoop_sizes=8, n_spark_sizes=5, seed=3),),
        rounds=1,
        iterations=1,
    )
    assert len(result.cases) == 3 * 8 + 3 * 5
