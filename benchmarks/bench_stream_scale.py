"""Benchmark: memory-bounded streaming at million-request scale.

One fanout-feed interval with ~10⁶ arrivals, run twice:

- **monolithic exact** — the historical single pass keeping every
  sample array resident (the "before": peak memory grows O(requests));
- **chunked streaming** — ``chunk_requests`` + an
  :class:`~repro.sim.estimators.IntervalAccumulatorSet` (the "after":
  peak memory is O(chunk + reservoir), whatever the request count).

Wall time and tracemalloc peak for both land in
``BENCH_stream_scale.json`` (see :mod:`recording`), so the memory
ratio is tracked commit over commit.  The tier-2 regression test
(``tests/sim/test_stream_scale.py``) asserts the streamed ceiling; this
benchmark records the before/after contrast.
"""

import time
import tracemalloc

import numpy as np

from recording import record_benchmark
from repro.baselines.policies import BasicPolicy
from repro.rng import RngRegistry
from repro.scenarios import get_scenario
from repro.sim.estimators import IntervalAccumulatorSet
from repro.sim.queue_sim import simulate_service_interval

#: fanout-feed is stable below ~1360 req/s (24 Pareto shard groups,
#: 3 replicas each); 1200 req/s x 850 s ~ 1.02M arrivals per interval.
RATE = 1200.0
DURATION_S = 850.0
CHUNK = 32768

_CONFIG = {
    "scenario": "fanout-feed",
    "arrival_rate": RATE,
    "duration_s": DURATION_S,
    "chunk_requests": CHUNK,
    "expected_requests": RATE * DURATION_S,
}


def _fanout():
    spec = get_scenario("fanout-feed")
    topology = spec.build_service(spec.runner_config()).topology
    return topology, {c.name: c.base_service for c in topology.components}


def _measure(fn):
    """(result, wall seconds, tracemalloc peak bytes) for one call."""
    tracemalloc.start()
    t0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, wall, peak


def test_stream_scale(capsys):
    topology, dists = _fanout()

    mono, wall_mono, peak_mono = _measure(
        lambda: simulate_service_interval(
            topology, BasicPolicy(), RATE, DURATION_S, dists,
            np.random.default_rng(0),
        )
    )
    n_mono = mono.request_latencies.size
    del mono  # release the O(requests) arrays before the second pass

    rngs = RngRegistry(0)
    stream = IntervalAccumulatorSet.create(
        rng_for=lambda role: rngs.get(f"estimator-{role}")
    )
    _, wall_stream, peak_stream = _measure(
        lambda: simulate_service_interval(
            topology, BasicPolicy(), RATE, DURATION_S, dists,
            rngs.get("requests"),
            chunk_requests=CHUNK, stream_into=stream,
        )
    )

    assert n_mono > 1_000_000 and stream.overall.n > 1_000_000
    # The point of the exercise: bounded working set at 10^6 requests.
    assert peak_stream < peak_mono / 3

    record_benchmark(
        "stream_scale",
        {
            "monolithic_wall_s": wall_mono,
            "streaming_wall_s": wall_stream,
            "monolithic_peak_mib": peak_mono / 2**20,
            "streaming_peak_mib": peak_stream / 2**20,
            "peak_ratio": peak_mono / peak_stream,
        },
        config={**_CONFIG, "n_requests": int(n_mono)},
    )
    with capsys.disabled():
        print(
            f"\n[stream-scale] {n_mono:,} requests: "
            f"monolithic {wall_mono:.1f}s / {peak_mono / 2**20:.0f} MiB, "
            f"streaming {wall_stream:.1f}s / {peak_stream / 2**20:.0f} MiB "
            f"({peak_mono / peak_stream:.0f}x less memory)"
        )
