"""Streaming latency accumulation for memory-bounded simulation.

At paper scale × millions of arrivals the simulator cannot keep every
latency sample to compute exact nearest-rank percentiles at the end —
that is the O(requests) memory wall this layer removes.  It provides
one front door, :class:`LatencyAccumulator`, with two modes:

``"exact"``
    stores the sample arrays verbatim and summarises them through the
    shared metric kernel (:func:`repro.sim.metrics.summarize` over
    :func:`repro.sim.metrics.pool`).  Bit-identical to the historical
    pool-then-summarise path — this is what every default run uses, so
    golden pins and sweep-cache digests are untouched.

``"streaming"``
    O(reservoir) memory however many observations stream through:

    - mean/variance via the shared Welford/Chan kernel
      (:class:`repro.monitoring.streaming.StreamingMoments`, folded in
      with the vectorised ``add_batch``) — mean is exact up to float
      rounding, never sampled;
    - ``max`` tracked exactly (running maximum);
    - percentiles from a **seeded bottom-k reservoir**
      (:class:`ReservoirSampler`) by default, or from the monitor's P²
      marker estimator (:class:`repro.monitoring.streaming.P2Quantile`)
      with ``engine="p2"``.  The reservoir is the default because it is
      *mergeable* (bottom-k of a union is associative), which the
      runner needs to combine per-interval accumulators into the run
      summary; P² marker states cannot be merged and raise
      :class:`~repro.errors.EstimatorError` if you try.

Error contract (documented here, enforced by
``tests/sim/test_estimators_properties.py``): with reservoir size k,
an estimated q-quantile is the exact nearest-rank quantile of a
uniform-without-replacement subsample of size k, so its *rank* error is
O(sqrt(q(1-q)/k)) — about ±0.08 percentile points at the default
k = 16384 for p99 — and every reported value is an actually observed
latency (the nearest-rank convention survives sampling).  The P²
engine's error is distribution-dependent (parabolic interpolation) and
is bounded empirically by the property suite.

Reservoir sampling uses per-observation priorities drawn from the
accumulator's own seeded generator: keep the k observations with the
smallest priorities.  This makes the kept *set* independent of chunk
boundaries (the priority stream is consumed one value per observation
in arrival order) and makes ``merge`` exact: bottom-k of the union of
two bottom-k sets is the bottom-k of the union of the originals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import EstimatorError
from repro.monitoring.streaming import P2Quantile, StreamingMoments
from repro.sim.metrics import LatencySummary, percentile, pool, summarize

__all__ = [
    "DEFAULT_RESERVOIR_SIZE",
    "ReservoirSampler",
    "LatencyAccumulator",
    "IntervalAccumulatorSet",
]

#: Default bottom-k reservoir capacity: rank error ~ sqrt(.01*.99/16384)
#: ≈ 8e-4 for p99 — well inside the error contract documented above.
DEFAULT_RESERVOIR_SIZE = 16384

#: The quantiles a :class:`~repro.sim.metrics.LatencySummary` reports.
_SUMMARY_QS = (50.0, 95.0, 99.0)

#: Streaming-mode reservoirs store values as float32: the ~1e-7
#: relative quantisation is orders of magnitude below the reservoir's
#: own O(1/sqrt(k)) rank error, and it halves the (already bounded)
#: resident sample memory.  Exact mode never narrows.
_RESERVOIR_DTYPE = np.float32


class ReservoirSampler:
    """Seeded bottom-k priority reservoir over a stream of floats.

    Each observation gets a uniform priority from ``rng`` (one draw per
    observation, in arrival order); the sampler keeps the ``capacity``
    observations with the smallest priorities.  Equivalent to a uniform
    sample without replacement, but — unlike algorithm-R index juggling
    — vectorised per chunk, invariant to how the stream is chunked, and
    exactly mergeable.
    """

    def __init__(self, capacity: int, rng: np.random.Generator) -> None:
        if capacity < 1:
            raise EstimatorError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = rng
        self._values = np.empty(0, dtype=_RESERVOIR_DTYPE)
        self._priorities = np.empty(0, dtype=np.float64)
        self._seen = 0

    @property
    def n_seen(self) -> int:
        """Total observations streamed through (kept or not)."""
        return self._seen

    @property
    def values(self) -> np.ndarray:
        """The kept sample (unordered; copy-safe view)."""
        return self._values

    def add(self, xs) -> None:
        """Fold a chunk of observations in (one priority draw each)."""
        arr = np.asarray(xs).ravel()
        if arr.size == 0:
            return
        prio = self._rng.random(arr.size)
        self._seen += int(arr.size)
        self._absorb(arr.astype(_RESERVOIR_DTYPE, copy=False), prio)

    def merge(self, other: "ReservoirSampler") -> "ReservoirSampler":
        """Union two reservoirs: bottom-k of the combined priorities.

        Exactly associative — merging per-interval reservoirs in any
        grouping yields the same kept set as one run-long stream.
        """
        if other.capacity != self.capacity:
            raise EstimatorError(
                f"cannot merge reservoirs of capacity {self.capacity} "
                f"and {other.capacity}"
            )
        self._seen += other._seen
        self._absorb(other._values, other._priorities)
        return self

    def _absorb(self, values: np.ndarray, priorities: np.ndarray) -> None:
        values = np.concatenate([self._values, values])
        priorities = np.concatenate([self._priorities, priorities])
        if values.size > self.capacity:
            keep = np.argpartition(priorities, self.capacity)[: self.capacity]
            values = values[keep]
            priorities = priorities[keep]
        self._values = values
        self._priorities = priorities

    def quantile(self, q: float, *, label: str = "") -> float:
        """Nearest-rank q-percentile (q in [0, 100]) of the kept sample.

        Routes through the shared metric kernel so the convention (an
        actually observed value, ``method='higher'``) is preserved.
        """
        return percentile(
            np.asarray(self._values, dtype=np.float64), q, label=label
        )


class LatencyAccumulator:
    """The single seam every latency sample in a run flows through.

    Parameters
    ----------
    mode:
        ``"exact"`` (store-everything, bit-identical to pool+summarize)
        or ``"streaming"`` (O(reservoir) memory, estimated percentiles).
    engine:
        Streaming percentile engine: ``"reservoir"`` (default,
        mergeable) or ``"p2"`` (the monitor's marker estimator; not
        mergeable).
    rng:
        Priority stream for the reservoir (required for streaming
        reservoir mode; take it from a named ``RngRegistry`` stream for
        reproducibility).
    reservoir_size:
        Bottom-k capacity (streaming reservoir mode).
    """

    def __init__(
        self,
        mode: str = "exact",
        *,
        engine: str = "reservoir",
        rng: Optional[np.random.Generator] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ) -> None:
        if mode not in ("exact", "streaming"):
            raise EstimatorError(
                f"mode must be 'exact' or 'streaming', got {mode!r}"
            )
        if engine not in ("reservoir", "p2"):
            raise EstimatorError(
                f"engine must be 'reservoir' or 'p2', got {engine!r}"
            )
        self.mode = mode
        self.engine = engine
        self._batches = 0
        self._parts: List[np.ndarray] = []
        self._moments = StreamingMoments()
        self._max = -np.inf
        self._reservoir: Optional[ReservoirSampler] = None
        self._p2: Optional[Dict[float, P2Quantile]] = None
        if mode == "streaming":
            if engine == "reservoir":
                if rng is None:
                    raise EstimatorError(
                        "streaming reservoir mode needs an rng "
                        "(a named RngRegistry stream)"
                    )
                self._reservoir = ReservoirSampler(reservoir_size, rng)
            else:
                self._p2 = {q: P2Quantile(q / 100.0) for q in _SUMMARY_QS}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Observations accumulated so far."""
        if self.mode == "exact":
            return int(sum(a.size for a in self._parts))
        return self._moments.n

    @property
    def n_batches(self) -> int:
        """How many (possibly empty) batches were folded in."""
        return len(self._parts) if self.mode == "exact" else self._batches

    @property
    def mean(self) -> float:
        """Running mean (exact in both modes, up to float rounding)."""
        if self.mode == "exact":
            return float(pool(self._parts).mean())
        return self._moments.mean

    def add(self, xs) -> None:
        """Fold a batch of latencies in.

        Exact mode stores the array verbatim (empty arrays included, so
        the pool's all-empty diagnostics match the historical path);
        streaming mode folds it into the constant-memory state.
        """
        arr = np.asarray(xs, dtype=np.float64).ravel()
        if self.mode == "exact":
            self._parts.append(arr)
            return
        self._batches += 1
        if arr.size == 0:
            return
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise EstimatorError(
                "latencies must be finite and non-negative"
            )
        self._moments.add_batch(arr)
        self._max = max(self._max, float(arr.max()))
        if self._reservoir is not None:
            self._reservoir.add(arr)
        else:
            assert self._p2 is not None
            for est in self._p2.values():
                est.add_many(arr)

    def merge(self, other: "LatencyAccumulator") -> "LatencyAccumulator":
        """Fold another accumulator in (associative).

        Exact merges concatenate part lists; streaming merges combine
        moments (Chan), maxima, and reservoirs (bottom-k of the union).
        P² engines refuse — marker states are not mergeable — as do
        mixed modes/engines: silently blending an exact and an
        estimated summary would corrupt the provenance contract.
        """
        if other.mode != self.mode or other.engine != self.engine:
            raise EstimatorError(
                f"cannot merge a ({self.mode}, {self.engine}) accumulator "
                f"with a ({other.mode}, {other.engine}) one"
            )
        if self.mode == "exact":
            self._parts.extend(other._parts)
            return self
        if self._p2 is not None:
            raise EstimatorError(
                "P² marker states cannot be merged; use the reservoir "
                "engine for mergeable streaming accumulation"
            )
        self._batches += other._batches
        self._moments.merge(other._moments)
        self._max = max(self._max, other._max)
        assert self._reservoir is not None and other._reservoir is not None
        self._reservoir.merge(other._reservoir)
        return self

    def summary(self, *, label: str = "") -> LatencySummary:
        """Reduce to a :class:`~repro.sim.metrics.LatencySummary`.

        Exact mode is bit-identical to ``summarize(pool(parts))``; in
        streaming mode ``n``, ``mean`` and ``max`` are exact while the
        percentiles carry the documented estimator error.
        """
        if self.mode == "exact":
            return summarize(pool(self._parts, label=label), label=label)
        if self.n == 0:
            raise EstimatorError(
                f"cannot summarise an empty latency stream"
                f"{f' ({label})' if label else ''}"
            )
        if self._reservoir is not None:
            qs = {
                q: self._reservoir.quantile(q, label=label)
                for q in _SUMMARY_QS
            }
        else:
            assert self._p2 is not None
            qs = {q: float(self._p2[q].estimate) for q in _SUMMARY_QS}
        return LatencySummary(
            n=self.n,
            mean=self._moments.mean,
            p50=qs[50.0],
            p95=qs[95.0],
            p99=qs[99.0],
            max=float(self._max),
        )


@dataclass
class IntervalAccumulatorSet:
    """The accumulators one streamed interval (or run) fills.

    Mirrors the three sample families a :class:`~repro.sim.runner.
    PolicyResult` reports: pooled per-component sojourns (metric 1),
    overall request latencies (metric 2), and the per-class split of
    the latter (mixed-class runs only, keyed by class name).
    """

    overall: LatencyAccumulator
    component_pool: LatencyAccumulator
    per_class: Optional[Dict[str, LatencyAccumulator]] = None

    @classmethod
    def create(
        cls,
        rng_for: "callable",
        class_names: Optional[tuple] = None,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
    ) -> "IntervalAccumulatorSet":
        """Build a streaming set with one named rng stream per role.

        ``rng_for(role)`` returns the priority generator for that role
        (e.g. ``lambda role: rngs.get(f"estimator-{role}")``), so every
        reservoir is seeded from its own :class:`~repro.rng.RngRegistry`
        stream and the whole set is reproducible.
        """
        per_class = None
        if class_names is not None:
            per_class = {
                name: LatencyAccumulator(
                    "streaming",
                    rng=rng_for(f"class-{name}"),
                    reservoir_size=reservoir_size,
                )
                for name in class_names
            }
        return cls(
            overall=LatencyAccumulator(
                "streaming",
                rng=rng_for("overall"),
                reservoir_size=reservoir_size,
            ),
            component_pool=LatencyAccumulator(
                "streaming",
                rng=rng_for("component"),
                reservoir_size=reservoir_size,
            ),
            per_class=per_class,
        )

    def add_chunk(
        self,
        overall: np.ndarray,
        component_sojourns: Dict[str, List[np.ndarray]],
        class_of: Optional[np.ndarray],
        class_names: Optional[tuple],
    ) -> None:
        """Fold one simulated chunk in and let its arrays die."""
        self.overall.add(overall)
        for parts in component_sojourns.values():
            for part in parts:
                self.component_pool.add(part)
        if self.per_class is not None and class_of is not None:
            assert class_names is not None
            for c, name in enumerate(class_names):
                self.per_class[name].add(overall[class_of == c])

    def merge(self, other: "IntervalAccumulatorSet") -> "IntervalAccumulatorSet":
        """Fold another set in role-by-role (associative)."""
        self.overall.merge(other.overall)
        self.component_pool.merge(other.component_pool)
        if other.per_class is not None:
            if self.per_class is None:
                raise EstimatorError(
                    "cannot merge a per-class accumulator set into one "
                    "without per-class roles"
                )
            for name, acc in other.per_class.items():
                self.per_class[name].merge(acc)
        return self
