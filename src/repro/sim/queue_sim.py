"""Vectorised per-interval sample-path simulation of the service.

For one scheduling interval, given each component's *current* service-
time distribution (base distribution inflated by the interference the
component experiences on its node), this module simulates every
request's journey through the topology with **exact FIFO queue sample
paths** (the Lindley kernel) and the routing mechanics of the compared
policies:

Basic / PCS
    each sub-request goes to one uniformly chosen replica of each group
    (random splitting keeps per-replica arrivals Poisson, matching the
    M/G/1 model the predictor uses).

RED-k (request redundancy)
    each sub-request is executed on ``k`` replicas simultaneously; the
    quickest wins.  Cancellation is *imperfect*, as the paper observes
    (§VI-C): when one copy begins execution a cancel message is sent,
    but (i) copies that started within the message delay of each other
    both execute, and (ii) messages in flight don't stop a copy that is
    about to start.  We model this with a two-pass scheme: pass 1
    computes uncancelled sample paths and start times; a copy is
    cancelled iff some sibling started more than ``cancel_delay_s``
    before this copy would start; pass 2 re-runs the queues with
    cancelled copies consuming zero service time (they held a queue
    slot until the cancel arrived, then vanished).

RI-p (request reissue)
    a sub-request goes to its primary replica; if it has not finished
    after the p-th percentile of the expected latency for its class, a
    secondary copy is sent to the next replica.  Pass 1 determines who
    reissues; pass 2 re-runs every replica with the merged
    primary+secondary arrival streams (reissue load slows everyone,
    which is exactly the high-load pathology the paper measures).

Stage semantics follow Eqs. 3–4: a request's stage latency is the max
over the stage's groups; its overall latency the sum over stages.  All
sub-requests of one stage share the stage's arrival stream (inter-stage
jitter is dropped — the DES reference simulator in
:mod:`repro.sim.des_service` bounds this approximation in tests).

Per the paper's metric definition (§VI-A), the pooled component-latency
sample records, for redundancy/reissue policies, the latency of the
*quickest* replica of each sub-request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

import numpy as np

from repro.baselines.policies import (
    BasicPolicy,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
)
from repro.errors import SimulationError
from repro.service.topology import ReplicaGroup, ServiceTopology
from repro.simcore.distributions import Distribution
from repro.simcore.lindley import lindley_waits

__all__ = ["IntervalOutcome", "simulate_service_interval", "poisson_arrivals"]


@dataclass
class IntervalOutcome:
    """Everything one simulated interval produced."""

    request_latencies: np.ndarray
    component_sojourns: Dict[str, np.ndarray]
    component_service_samples: Dict[str, np.ndarray]
    duration_s: float
    arrival_rate: float

    @property
    def n_requests(self) -> int:
        """Number of requests simulated in the interval."""
        return int(self.request_latencies.size)

    def pooled_component_latencies(self) -> np.ndarray:
        """All per-component sub-request latencies, pooled (metric 1)."""
        arrays = [a for a in self.component_sojourns.values() if a.size]
        if not arrays:
            return np.empty(0)
        return np.concatenate(arrays)


def poisson_arrivals(
    rate: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival instants of a Poisson process on [0, duration).

    Uses the order-statistics property: conditional on the count, the
    arrival times are sorted uniforms — one vectorised draw.
    """
    if rate < 0 or duration_s <= 0:
        raise SimulationError(
            f"need rate >= 0 and duration > 0, got {rate}, {duration_s}"
        )
    n = int(rng.poisson(rate * duration_s))
    return np.sort(rng.uniform(0.0, duration_s, n))


# ----------------------------------------------------------------------
# per-group mechanics
# ----------------------------------------------------------------------
def _primary_choice(
    n: int, n_replicas: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform-random primary per request.

    Random splitting keeps each replica's arrival process Poisson (the
    M in Eq. 2's M/G/1); deterministic round-robin would thin the
    stream into more-regular Erlang interarrivals and understate
    queueing relative to the paper's model.
    """
    if n_replicas == 1:
        return np.zeros(n, dtype=np.int64)
    return rng.integers(0, n_replicas, n)


def _group_basic(
    arrivals: np.ndarray,
    group: ReplicaGroup,
    dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    sojourns: Dict[str, List[np.ndarray]],
    services: Dict[str, List[np.ndarray]],
) -> np.ndarray:
    n = arrivals.size
    r_count = group.n_replicas
    primary = _primary_choice(n, r_count, rng)
    group_lat = np.empty(n)
    for r, comp in enumerate(group.components):
        mask = primary == r
        t = arrivals[mask]
        s = np.asarray(dists[comp.name].sample(rng, t.size), dtype=np.float64)
        soj = lindley_waits(t, s, validate=False) + s
        group_lat[mask] = soj
        sojourns[comp.name].append(soj)
        services[comp.name].append(s)
    return group_lat


def _group_red(
    arrivals: np.ndarray,
    group: ReplicaGroup,
    dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    k: int,
    cancel_delay_s: float,
    sojourns: Dict[str, List[np.ndarray]],
    services: Dict[str, List[np.ndarray]],
) -> np.ndarray:
    n = arrivals.size
    r_count = group.n_replicas
    k = min(k, r_count)
    if k == 1 or n == 0:
        return _group_basic(arrivals, group, dists, rng, sojourns, services)
    primary = _primary_choice(n, r_count, rng)
    # copy c of request i runs on replica (primary[i] + c) % r_count.
    starts = np.full((k, n), np.inf)
    svc = np.zeros((k, n))
    replica_req: Dict[int, np.ndarray] = {}
    replica_copy: Dict[int, np.ndarray] = {}
    for r in range(r_count):
        copy_idx = (r - primary) % r_count
        mask = copy_idx < k
        req_ids = np.flatnonzero(mask)
        if req_ids.size == 0:
            continue
        t = arrivals[req_ids]
        s = np.asarray(dists[group.components[r].name].sample(rng, t.size))
        w = lindley_waits(t, s, validate=False)
        c = copy_idx[req_ids]
        starts[c, req_ids] = t + w
        svc[c, req_ids] = s
        replica_req[r] = req_ids
        replica_copy[r] = c
    # Imperfect cancellation: a copy dies iff a sibling began execution
    # more than the message delay before this copy would start.
    first_start = starts.min(axis=0)
    cancelled = starts > first_start + cancel_delay_s
    # Pass 2: cancelled copies consume no service time.
    svc2 = np.where(cancelled, 0.0, svc)
    finish = np.full((k, n), np.inf)
    for r, req_ids in replica_req.items():
        t = arrivals[req_ids]
        c = replica_copy[r]
        s2 = svc2[c, req_ids]
        w2 = lindley_waits(t, s2, validate=False)
        finish[c, req_ids] = t + w2 + s2
        live = ~cancelled[c, req_ids]
        # Executed work only — cancelled copies never ran.
        services[group.components[r].name].append(s2[live])
    finish = np.where(cancelled, np.inf, finish)
    winner_copy = np.argmin(finish, axis=0)
    group_lat = finish[winner_copy, np.arange(n)] - arrivals
    # Metric 1 records the quickest replica's latency per sub-request,
    # attributed to the winning component.
    winner_replica = (primary + winner_copy) % r_count
    for r, comp in enumerate(group.components):
        won = winner_replica == r
        if won.any():
            sojourns[comp.name].append(group_lat[won])
    return group_lat


def _group_reissue(
    arrivals: np.ndarray,
    group: ReplicaGroup,
    dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    quantile: float,
    sojourns: Dict[str, List[np.ndarray]],
    services: Dict[str, List[np.ndarray]],
) -> np.ndarray:
    n = arrivals.size
    r_count = group.n_replicas
    if r_count == 1 or n == 0:
        return _group_basic(arrivals, group, dists, rng, sojourns, services)
    primary = _primary_choice(n, r_count, rng)
    # Pass 1: primary-only sample paths give each request's would-be
    # latency and set the reissue threshold (the p-th percentile of the
    # expected latency for this request class, estimated from the same
    # interval's history).
    soj1 = np.empty(n)
    svc1 = np.empty(n)
    for r, comp in enumerate(group.components):
        mask = primary == r
        t = arrivals[mask]
        s = np.asarray(dists[comp.name].sample(rng, t.size))
        soj1[mask] = lindley_waits(t, s, validate=False) + s
        svc1[mask] = s
    # Policy-internal reissue timer, not a reported metric: the real
    # system's timer interpolates its latency estimate, so this
    # intentionally stays raw np.percentile rather than the
    # nearest-rank kernel in repro.sim.metrics.
    threshold = float(np.percentile(soj1, quantile * 100.0)) if n else 0.0
    reissue = soj1 > threshold
    secondary_replica = (primary + 1) % r_count
    soj2 = np.empty(n)
    sec_soj = np.full(n, np.inf)
    for r, comp in enumerate(group.components):
        p_mask = primary == r
        s_mask = reissue & (secondary_replica == r)
        t_p = arrivals[p_mask]
        t_s = arrivals[s_mask] + threshold
        s_p = svc1[p_mask]
        s_s = np.asarray(dists[comp.name].sample(rng, int(s_mask.sum())))
        # Merge primary and secondary streams in arrival order.
        t_all = np.concatenate([t_p, t_s])
        s_all = np.concatenate([s_p, s_s])
        order = np.argsort(t_all, kind="stable")
        w_all = lindley_waits(t_all[order], s_all[order], validate=False)
        soj_all = np.empty_like(w_all)
        soj_all[...] = w_all + s_all[order]
        # Un-permute back to primary/secondary slots.
        unsorted = np.empty_like(soj_all)
        unsorted[order] = soj_all
        soj2[p_mask] = unsorted[: t_p.size]
        sec_soj[s_mask] = unsorted[t_p.size :]
        services[comp.name].append(s_all)
    with np.errstate(invalid="ignore"):
        reissued_lat = np.minimum(soj2, threshold + sec_soj)
    group_lat = np.where(reissue, reissued_lat, soj2)
    # Metric 1: quickest copy per sub-request, attributed to its component.
    primary_won = ~reissue | (soj2 <= threshold + sec_soj)
    for r, comp in enumerate(group.components):
        won_primary = (primary == r) & primary_won
        won_secondary = (secondary_replica == r) & reissue & ~primary_won
        won = won_primary | won_secondary
        if won.any():
            sojourns[comp.name].append(group_lat[won])
    return group_lat


# ----------------------------------------------------------------------
# whole-service interval
# ----------------------------------------------------------------------
def simulate_service_interval(
    topology: ServiceTopology,
    policy: Policy,
    arrival_rate: float,
    duration_s: float,
    service_dists: Mapping[str, Distribution],
    rng: np.random.Generator,
) -> IntervalOutcome:
    """Simulate one scheduling interval of the whole service.

    Parameters
    ----------
    topology:
        The service's stages/groups/replicas.
    policy:
        One of the six compared policies (PCS routes like Basic; its
        migrations act between intervals by changing ``service_dists``).
    arrival_rate:
        Service-level request arrival rate (req/s).
    duration_s:
        Interval length (seconds).
    service_dists:
        Current true service-time distribution per component name.
    rng:
        Source of randomness for arrivals and service draws.
    """
    missing = [
        c.name for c in topology.components if c.name not in service_dists
    ]
    if missing:
        raise SimulationError(f"missing service distributions for {missing}")
    arrivals = poisson_arrivals(arrival_rate, duration_s, rng)
    n = arrivals.size
    sojourns: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    services: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    overall = np.zeros(n)
    for stage in topology.stages:
        stage_lat = np.zeros(n)
        for group in stage.groups:
            if isinstance(policy, REDPolicy):
                group_lat = _group_red(
                    arrivals, group, service_dists, rng,
                    policy.replicas, policy.cancel_delay_s, sojourns, services,
                )
            elif isinstance(policy, ReissuePolicy):
                group_lat = _group_reissue(
                    arrivals, group, service_dists, rng,
                    policy.quantile, sojourns, services,
                )
            elif isinstance(policy, (BasicPolicy, PCSPolicy, Policy)):
                group_lat = _group_basic(
                    arrivals, group, service_dists, rng,
                    sojourns, services,
                )
            else:  # pragma: no cover - Policy base catches everything
                raise SimulationError(f"unknown policy {policy!r}")
            if n:
                np.maximum(stage_lat, group_lat, out=stage_lat)  # Eq. 3
        overall += stage_lat  # Eq. 4
    return IntervalOutcome(
        request_latencies=overall,
        component_sojourns={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in sojourns.items()
        },
        component_service_samples={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in services.items()
        },
        duration_s=float(duration_s),
        arrival_rate=float(arrival_rate),
    )
