"""Vectorised per-interval sample-path simulation of the service.

For one scheduling interval, given each component's *current* service-
time distribution (base distribution inflated by the interference the
component experiences on its node), this module simulates every
request's journey through the topology with **exact FIFO queue sample
paths** (the Lindley kernel).

The per-group routing mechanics — random splitting for Basic/PCS,
redundancy with imperfect cancellation for RED-k, percentile reissue
for RI-p, fixed-delay hedging — live in
:mod:`repro.baselines.routing` as :class:`~repro.baselines.routing.
RoutingKernel` classes, registered next to their policy descriptors in
:mod:`repro.baselines.policies`.  This module resolves the kernel once
per interval via :func:`~repro.baselines.routing.routing_kernel_for`
and never branches on policy types, so new policies plug in without
touching the simulator.

Stage semantics follow Eqs. 3–4, generalised to the topology's request
DAG: a request's stage latency is the max over the stage's
*participating* groups (optional groups are included per request with
their ``participation`` probability, drawn from the caller's request
stream), the stage's completion is the slowest predecessor stage's
completion plus that latency, and the overall latency is the max over
the exit stages' completions — the critical path.  On a chain topology
this is exactly the old sum-over-stages and the sample paths are
bit-identical (golden-pinned in ``tests/scenarios``).  All sub-requests
of one stage share the stage's arrival stream (inter-stage jitter is
dropped — the DES reference simulator in :mod:`repro.sim.des_service`
traverses the same DAG event-by-event and bounds this approximation in
tests).

Per the paper's metric definition (§VI-A), the pooled component-latency
sample records, for redundancy/reissue policies, the latency of the
*quickest* replica of each sub-request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.baselines.policies import Policy, routing_kernel_for
from repro.errors import SimulationError
from repro.service.topology import ResolvedClassMix, ServiceTopology
from repro.simcore.distributions import Distribution

__all__ = ["IntervalOutcome", "simulate_service_interval", "poisson_arrivals"]


@dataclass
class IntervalOutcome:
    """Everything one simulated interval produced."""

    request_latencies: np.ndarray
    component_sojourns: Dict[str, np.ndarray]
    component_service_samples: Dict[str, np.ndarray]
    duration_s: float
    arrival_rate: float
    #: Per-request class index / class names under a mixed-class run
    #: (None on the homogeneous single-class path).
    class_of: Optional[np.ndarray] = None
    class_names: Optional[Tuple[str, ...]] = None

    @property
    def n_requests(self) -> int:
        """Number of requests simulated in the interval."""
        return int(self.request_latencies.size)

    def pooled_component_latencies(self) -> np.ndarray:
        """All per-component sub-request latencies, pooled (metric 1)."""
        arrays = [a for a in self.component_sojourns.values() if a.size]
        if not arrays:
            return np.empty(0)
        return np.concatenate(arrays)

    def per_class_latencies(self) -> Dict[str, np.ndarray]:
        """Overall request latencies split by request class.

        Only meaningful on mixed-class runs; raises otherwise so a
        caller cannot silently read an empty split.
        """
        if self.class_of is None or self.class_names is None:
            raise SimulationError(
                "per-class latencies need a mixed-class interval "
                "(simulate_service_interval(..., classes=...))"
            )
        return {
            name: self.request_latencies[self.class_of == c]
            for c, name in enumerate(self.class_names)
        }


def poisson_arrivals(
    rate: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival instants of a Poisson process on [0, duration).

    Uses the order-statistics property: conditional on the count, the
    arrival times are sorted uniforms — one vectorised draw.
    """
    if rate < 0 or duration_s <= 0:
        raise SimulationError(
            f"need rate >= 0 and duration > 0, got {rate}, {duration_s}"
        )
    n = int(rng.poisson(rate * duration_s))
    return np.sort(rng.uniform(0.0, duration_s, n))


def simulate_service_interval(
    topology: ServiceTopology,
    policy: Policy,
    arrival_rate: float,
    duration_s: float,
    service_dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    classes: Optional[ResolvedClassMix] = None,
) -> IntervalOutcome:
    """Simulate one scheduling interval of the whole service.

    Parameters
    ----------
    topology:
        The service's stages/groups/replicas.
    policy:
        Any policy with a registered routing kernel (PCS routes like
        Basic; its migrations act between intervals by changing
        ``service_dists``).
    arrival_rate:
        Service-level request arrival rate (req/s).
    duration_s:
        Interval length (seconds).
    service_dists:
        Current true service-time distribution per component name.
    rng:
        Source of randomness for arrivals and service draws.
    classes:
        Resolved request-class mix
        (:meth:`~repro.service.topology.ServiceTopology.resolve_classes`).
        ``None`` — the homogeneous population — takes the pre-class
        code path, whose RNG draw order and sample paths are preserved
        bit for bit (golden-pinned).  With a mix, each request draws
        its class once (mix weights), participates in each group with
        its class's effective probability, and its service samples are
        multiplied by the class's ``service_scale``.
    """
    missing = [
        c.name for c in topology.components if c.name not in service_dists
    ]
    if missing:
        raise SimulationError(f"missing service distributions for {missing}")
    kernel = routing_kernel_for(policy)
    arrivals = poisson_arrivals(arrival_rate, duration_s, rng)
    n = arrivals.size
    class_of: Optional[np.ndarray] = None
    scale: Optional[np.ndarray] = None
    if classes is not None:
        # One class draw per request; single-active-class mixes skip
        # the draw entirely (their RNG stream must not shift).
        class_of = (
            classes.class_of(rng.random(n))
            if classes.multi_class
            else np.zeros(n, dtype=np.int64)
        )
        scale = classes.service_scales[class_of]
    sojourns: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    services: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    predecessors = topology.predecessor_indices
    completions: List[np.ndarray] = []
    gi = 0  # stage-major global group index (class-matrix column)
    for si, stage in enumerate(topology.stages):
        stage_lat = np.zeros(n)
        for group in stage.groups:
            if classes is not None:
                p_req = classes.group_participation[class_of, gi]
                gi += 1
                if np.all(p_req >= 1.0):
                    group_lat = kernel.route_group(
                        arrivals, group, service_dists, rng,
                        sojourns, services, scale,
                    )
                    if n:
                        np.maximum(stage_lat, group_lat, out=stage_lat)
                    continue
                # Class-conditional branch: each request joins with its
                # *class's* effective participation (0 drops the group
                # from that class's DAG without any draw noise — the
                # comparison is still made, keeping draw counts fixed).
                take = rng.random(n) < p_req
                sub_lat = kernel.route_group(
                    arrivals[take], group, service_dists, rng,
                    sojourns, services,
                    scale[take] if scale is not None else None,
                )
                if n:
                    stage_lat[take] = np.maximum(stage_lat[take], sub_lat)
                continue
            if group.optional:
                # Probabilistic branch: each request joins this group's
                # fan-out with probability `participation`; skipped
                # requests contribute nothing to the stage max.
                take = rng.random(n) < group.participation
                sub_lat = kernel.route_group(
                    arrivals[take], group, service_dists, rng,
                    sojourns, services,
                )
                if n:
                    stage_lat[take] = np.maximum(stage_lat[take], sub_lat)
                continue
            group_lat = kernel.route_group(
                arrivals, group, service_dists, rng, sojourns, services
            )
            if n:
                np.maximum(stage_lat, group_lat, out=stage_lat)  # Eq. 3
        preds = predecessors[si]
        if preds:
            # Critical path: the stage starts when its slowest
            # predecessor completes (Eq. 4 on a chain).
            ready = completions[preds[0]]
            for p in preds[1:]:
                ready = np.maximum(ready, completions[p])
            completions.append(ready + stage_lat)
        else:
            completions.append(stage_lat)
    exits = topology.exit_indices
    overall = completions[exits[0]]
    for si in exits[1:]:
        overall = np.maximum(overall, completions[si])
    return IntervalOutcome(
        request_latencies=overall,
        component_sojourns={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in sojourns.items()
        },
        component_service_samples={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in services.items()
        },
        duration_s=float(duration_s),
        arrival_rate=float(arrival_rate),
        class_of=class_of,
        class_names=None if classes is None else classes.names,
    )
