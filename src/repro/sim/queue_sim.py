"""Vectorised per-interval sample-path simulation of the service.

For one scheduling interval, given each component's *current* service-
time distribution (base distribution inflated by the interference the
component experiences on its node), this module simulates every
request's journey through the topology with **exact FIFO queue sample
paths** (the Lindley kernel).

The per-group routing mechanics — random splitting for Basic/PCS,
redundancy with imperfect cancellation for RED-k, percentile reissue
for RI-p, fixed-delay hedging — live in
:mod:`repro.baselines.routing` as :class:`~repro.baselines.routing.
RoutingKernel` classes, registered next to their policy descriptors in
:mod:`repro.baselines.policies`.  This module resolves the kernel once
per interval via :func:`~repro.baselines.routing.routing_kernel_for`
and never branches on policy types, so new policies plug in without
touching the simulator.

Stage semantics follow Eqs. 3–4, generalised to the topology's request
DAG: a request's stage latency is the max over the stage's
*participating* groups (optional groups are included per request with
their ``participation`` probability, drawn from the caller's request
stream), the stage's completion is the slowest predecessor stage's
completion plus that latency, and the overall latency is the max over
the exit stages' completions — the critical path.  On a chain topology
this is exactly the old sum-over-stages and the sample paths are
bit-identical (golden-pinned in ``tests/scenarios``).  All sub-requests
of one stage share the stage's arrival stream (inter-stage jitter is
dropped — the DES reference simulator in :mod:`repro.sim.des_service`
traverses the same DAG event-by-event and bounds this approximation in
tests).

Per the paper's metric definition (§VI-A), the pooled component-latency
sample records, for redundancy/reissue policies, the latency of the
*quickest* replica of each sub-request.

Scaling to 10⁶–10⁷ requests per interval
----------------------------------------
``chunk_requests`` processes the interval in fixed-size request chunks,
threading each component's Lindley queue state across chunk boundaries
(:class:`~repro.simcore.lindley.LindleyCarry`).  Two collection modes:

- **exact chunked** (``chunk_requests`` set, no ``stream_into``): all
  randomness is pre-drawn in the legacy single-pass call order and
  sliced per chunk, and the Lindley carry replays the monolithic float
  operations exactly — the returned :class:`IntervalOutcome` is
  **bit-identical** to the unchunked one for any chunk size (the
  identity tests' contract).  Sample arrays are still O(requests); this
  mode exists as the provable stepping stone between the legacy path
  and the streaming one.
- **streaming chunked** (``chunk_requests`` + ``stream_into``): true
  single-pass O(chunk) memory.  Arrivals are generated per time window
  (Poisson count + sorted uniforms per window — an exact Poisson
  process), service randomness is drawn per chunk (a different, still
  fully seeded stream than the monolithic path — no bit-identity
  contract, by design), and every chunk's latencies are folded into the
  caller's :class:`~repro.sim.estimators.IntervalAccumulatorSet` and
  freed.  The returned outcome carries the accumulators instead of
  sample arrays.

Only kernels with ``supports_chunking`` (random splitting — Basic/PCS)
can chunk; for the others (redundancy's sibling cancellation and
reissue's interval-global percentile timer are inherently
whole-interval) the simulator silently falls back to the monolithic
pass, still honouring ``stream_into`` by folding the monolithic arrays
into the accumulators at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.baselines.policies import Policy, routing_kernel_for
from repro.errors import SimulationError
from repro.service.topology import ResolvedClassMix, ServiceTopology
from repro.sim.estimators import IntervalAccumulatorSet
from repro.simcore.distributions import Distribution
from repro.simcore.lindley import LindleyCarry

__all__ = ["IntervalOutcome", "simulate_service_interval", "poisson_arrivals"]


@dataclass
class IntervalOutcome:
    """Everything one simulated interval produced."""

    request_latencies: np.ndarray
    component_sojourns: Dict[str, np.ndarray]
    component_service_samples: Dict[str, np.ndarray]
    duration_s: float
    arrival_rate: float
    #: Per-request class index / class names under a mixed-class run
    #: (None on the homogeneous single-class path).
    class_of: Optional[np.ndarray] = None
    class_names: Optional[Tuple[str, ...]] = None
    #: Streaming-mode collection: the accumulator set the caller passed
    #: as ``stream_into``, now holding the interval's summaries.  When
    #: set, the per-sample arrays above are intentionally empty.
    streaming: Optional[IntervalAccumulatorSet] = None
    #: Realized duplicate executions this interval, summed over groups —
    #: redundancy copies that escaped cancellation plus reissued/hedged
    #: secondaries (:class:`repro.baselines.routing.RoutingOutcome`).
    #: Always 0 for single-copy kernels.
    duplicates: int = 0

    @property
    def n_requests(self) -> int:
        """Number of requests simulated in the interval."""
        if self.streaming is not None:
            return int(self.streaming.overall.n)
        return int(self.request_latencies.size)

    @property
    def duplicate_load(self) -> float:
        """Realized duplicates per request — the measured counterpart of
        the policy's :class:`~repro.baselines.policies.InducedLoad`
        prediction (0.0 for an empty or duplicate-free interval)."""
        n = self.n_requests
        return self.duplicates / n if n else 0.0

    def pooled_component_latencies(self) -> np.ndarray:
        """All per-component sub-request latencies, pooled (metric 1)."""
        if self.streaming is not None:
            raise SimulationError(
                "a streamed interval keeps no sample arrays; read "
                "outcome.streaming.component_pool instead"
            )
        arrays = [a for a in self.component_sojourns.values() if a.size]
        if not arrays:
            return np.empty(0)
        return np.concatenate(arrays)

    def per_class_latencies(self) -> Dict[str, np.ndarray]:
        """Overall request latencies split by request class.

        Only meaningful on mixed-class runs; raises otherwise so a
        caller cannot silently read an empty split.
        """
        if self.streaming is not None:
            raise SimulationError(
                "a streamed interval keeps no sample arrays; read "
                "outcome.streaming.per_class instead"
            )
        if self.class_of is None or self.class_names is None:
            raise SimulationError(
                "per-class latencies need a mixed-class interval "
                "(simulate_service_interval(..., classes=...))"
            )
        return {
            name: self.request_latencies[self.class_of == c]
            for c, name in enumerate(self.class_names)
        }


def poisson_arrivals(
    rate: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Arrival instants of a Poisson process on [0, duration).

    Uses the order-statistics property: conditional on the count, the
    arrival times are sorted uniforms — one vectorised draw.
    """
    if rate < 0 or duration_s <= 0:
        raise SimulationError(
            f"need rate >= 0 and duration > 0, got {rate}, {duration_s}"
        )
    n = int(rng.poisson(rate * duration_s))
    return np.sort(rng.uniform(0.0, duration_s, n))


def _class_draws(
    classes: Optional[ResolvedClassMix], rng: np.random.Generator, n: int
) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
    """One class draw per request (single-active-class mixes skip the
    draw entirely — their RNG stream must not shift)."""
    if classes is None:
        return None, None
    class_of = (
        classes.class_of(rng.random(n))
        if classes.multi_class
        else np.zeros(n, dtype=np.int64)
    )
    return class_of, classes.service_scales[class_of]


def _compose_overall(
    topology: ServiceTopology, completions: List[np.ndarray]
) -> np.ndarray:
    """Critical path over exit stages (Eq. 4 generalised to the DAG)."""
    exits = topology.exit_indices
    overall = completions[exits[0]]
    for si in exits[1:]:
        overall = np.maximum(overall, completions[si])
    return overall


def _stage_completions(
    preds: List[int], completions: List[np.ndarray], stage_lat: np.ndarray
) -> np.ndarray:
    """One stage's completion times from its predecessors' (Eq. 4)."""
    if not preds:
        return stage_lat
    ready = completions[preds[0]]
    for p in preds[1:]:
        ready = np.maximum(ready, completions[p])
    return ready + stage_lat


def simulate_service_interval(
    topology: ServiceTopology,
    policy: Policy,
    arrival_rate: float,
    duration_s: float,
    service_dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    classes: Optional[ResolvedClassMix] = None,
    *,
    chunk_requests: Optional[int] = None,
    stream_into: Optional[IntervalAccumulatorSet] = None,
    threshold_feed=None,
) -> IntervalOutcome:
    """Simulate one scheduling interval of the whole service.

    Parameters
    ----------
    topology:
        The service's stages/groups/replicas.
    policy:
        Any policy with a registered routing kernel (PCS routes like
        Basic; its migrations act between intervals by changing
        ``service_dists``).
    arrival_rate:
        Service-level request arrival rate (req/s).
    duration_s:
        Interval length (seconds).
    service_dists:
        Current true service-time distribution per component name.
    rng:
        Source of randomness for arrivals and service draws.
    classes:
        Resolved request-class mix
        (:meth:`~repro.service.topology.ServiceTopology.resolve_classes`).
        ``None`` — the homogeneous population — takes the pre-class
        code path, whose RNG draw order and sample paths are preserved
        bit for bit (golden-pinned).  With a mix, each request draws
        its class once (mix weights), participates in each group with
        its class's effective probability, and its service samples are
        multiplied by the class's ``service_scale``.
    chunk_requests:
        Process the interval in request chunks of this size (see the
        module docstring).  ``None`` — the default — is the exact
        legacy single pass.
    stream_into:
        Fold every latency into this accumulator set instead of
        returning sample arrays (O(chunk) memory when combined with
        ``chunk_requests`` on a chunk-capable kernel).
    threshold_feed:
        A :class:`~repro.baselines.routing.ThresholdFeed` bound to the
        interval's kernel when the policy adapts its timer online
        (:attr:`~repro.baselines.policies.Policy.adapts_threshold`).
        ``None`` — the default, and the only value non-adaptive runs
        pass — leaves the kernel untouched (RNG streams and sample
        paths are identical either way).
    """
    missing = [
        c.name for c in topology.components if c.name not in service_dists
    ]
    if missing:
        raise SimulationError(f"missing service distributions for {missing}")
    if chunk_requests is not None and chunk_requests < 1:
        raise SimulationError(
            f"chunk_requests must be >= 1, got {chunk_requests}"
        )
    kernel = routing_kernel_for(policy)
    if threshold_feed is not None:
        kernel = kernel.bind_threshold_feed(threshold_feed)
    if chunk_requests is not None and kernel.supports_chunking:
        if stream_into is None:
            return _simulate_chunked_exact(
                topology, kernel, arrival_rate, duration_s,
                service_dists, rng, classes, chunk_requests,
            )
        return _simulate_chunked_streaming(
            topology, kernel, arrival_rate, duration_s,
            service_dists, rng, classes, chunk_requests, stream_into,
        )
    outcome = _simulate_monolithic(
        topology, kernel, arrival_rate, duration_s, service_dists, rng,
        classes,
    )
    if stream_into is None:
        return outcome
    # Monolithic fallback under streaming collection (chunk-incapable
    # kernel, or no chunk size given): fold the arrays in at the end.
    stream_into.add_chunk(
        outcome.request_latencies,
        {name: [arr] for name, arr in outcome.component_sojourns.items()},
        outcome.class_of,
        outcome.class_names,
    )
    return IntervalOutcome(
        request_latencies=np.empty(0),
        component_sojourns={c.name: np.empty(0) for c in topology.components},
        component_service_samples={
            c.name: np.empty(0) for c in topology.components
        },
        duration_s=float(duration_s),
        arrival_rate=float(arrival_rate),
        class_of=None,
        class_names=outcome.class_names,
        streaming=stream_into,
        duplicates=outcome.duplicates,
    )


def _simulate_monolithic(
    topology: ServiceTopology,
    kernel,
    arrival_rate: float,
    duration_s: float,
    service_dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    classes: Optional[ResolvedClassMix],
) -> IntervalOutcome:
    """The exact legacy single pass (golden-pinned sample paths)."""
    arrivals = poisson_arrivals(arrival_rate, duration_s, rng)
    n = arrivals.size
    class_of, scale = _class_draws(classes, rng, n)
    sojourns: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    services: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    predecessors = topology.predecessor_indices
    completions: List[np.ndarray] = []
    duplicates = 0
    gi = 0  # stage-major global group index (class-matrix column)
    for si, stage in enumerate(topology.stages):
        stage_lat = np.zeros(n)
        for group in stage.groups:
            if classes is not None:
                p_req = classes.group_participation[class_of, gi]
                gi += 1
                if np.all(p_req >= 1.0):
                    out = kernel.route_group_outcome(
                        arrivals, group, service_dists, rng,
                        sojourns, services, scale,
                    )
                    duplicates += out.duplicates
                    if n:
                        np.maximum(stage_lat, out.latencies, out=stage_lat)
                    continue
                # Class-conditional branch: each request joins with its
                # *class's* effective participation (0 drops the group
                # from that class's DAG without any draw noise — the
                # comparison is still made, keeping draw counts fixed).
                take = rng.random(n) < p_req
                out = kernel.route_group_outcome(
                    arrivals[take], group, service_dists, rng,
                    sojourns, services,
                    scale[take] if scale is not None else None,
                )
                duplicates += out.duplicates
                if n:
                    stage_lat[take] = np.maximum(stage_lat[take], out.latencies)
                continue
            if group.optional:
                # Probabilistic branch: each request joins this group's
                # fan-out with probability `participation`; skipped
                # requests contribute nothing to the stage max.
                take = rng.random(n) < group.participation
                out = kernel.route_group_outcome(
                    arrivals[take], group, service_dists, rng,
                    sojourns, services,
                )
                duplicates += out.duplicates
                if n:
                    stage_lat[take] = np.maximum(stage_lat[take], out.latencies)
                continue
            out = kernel.route_group_outcome(
                arrivals, group, service_dists, rng, sojourns, services
            )
            duplicates += out.duplicates
            if n:
                np.maximum(stage_lat, out.latencies, out=stage_lat)  # Eq. 3
        completions.append(
            _stage_completions(predecessors[si], completions, stage_lat)
        )
    overall = _compose_overall(topology, completions)
    return IntervalOutcome(
        request_latencies=overall,
        component_sojourns={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in sojourns.items()
        },
        component_service_samples={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in services.items()
        },
        duration_s=float(duration_s),
        arrival_rate=float(arrival_rate),
        class_of=class_of,
        class_names=None if classes is None else classes.names,
        duplicates=duplicates,
    )


def _simulate_chunked_exact(
    topology: ServiceTopology,
    kernel,
    arrival_rate: float,
    duration_s: float,
    service_dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    classes: Optional[ResolvedClassMix],
    chunk: int,
) -> IntervalOutcome:
    """Chunked pass, bit-identical to :func:`_simulate_monolithic`.

    All randomness is drawn up front in exactly the legacy call order
    (arrivals, class draws, then per stage/group: participation draws
    and the kernel's pre-draw); the chunk loop only *slices* those
    buffers, and the Lindley carry replays the monolithic float
    operations exactly, so every output array matches bit for bit.
    """
    arrivals = poisson_arrivals(arrival_rate, duration_s, rng)
    n = arrivals.size
    class_of, scale = _class_draws(classes, rng, n)
    # Phase 1: pre-draw per-(stage, group) randomness in legacy order.
    plans: List[Tuple[Optional[np.ndarray], object]] = []
    gi = 0
    for stage in topology.stages:
        for group in stage.groups:
            take: Optional[np.ndarray] = None
            if classes is not None:
                p_req = classes.group_participation[class_of, gi]
                gi += 1
                if not np.all(p_req >= 1.0):
                    take = rng.random(n) < p_req
            elif group.optional:
                take = rng.random(n) < group.participation
            m = n if take is None else int(np.count_nonzero(take))
            plans.append(
                (take, kernel.predraw_group(m, group, service_dists, rng))
            )
    # Phase 2: slice per chunk, carrying queue state per component.
    sojourns: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    services: Dict[str, List[np.ndarray]] = {
        c.name: [] for c in topology.components
    }
    carries: Dict[str, LindleyCarry] = {}
    overall_parts: List[np.ndarray] = []
    predecessors = topology.predecessor_indices
    for a in range(0, n, chunk):
        b = min(a + chunk, n)
        t_chunk = arrivals[a:b]
        scale_chunk = None if scale is None else scale[a:b]
        completions: List[np.ndarray] = []
        pi = 0
        for si, stage in enumerate(topology.stages):
            stage_lat = np.zeros(b - a)
            for group in stage.groups:
                take, draws = plans[pi]
                pi += 1
                if take is None:
                    group_lat = kernel.route_chunk(
                        t_chunk, group, draws, scale_chunk,
                        sojourns, services, carries,
                    )
                    np.maximum(stage_lat, group_lat, out=stage_lat)
                else:
                    tk = take[a:b]
                    sub_lat = kernel.route_chunk(
                        t_chunk[tk], group, draws,
                        None if scale_chunk is None else scale_chunk[tk],
                        sojourns, services, carries,
                    )
                    stage_lat[tk] = np.maximum(stage_lat[tk], sub_lat)
            completions.append(
                _stage_completions(predecessors[si], completions, stage_lat)
            )
        overall_parts.append(_compose_overall(topology, completions))
    return IntervalOutcome(
        request_latencies=(
            np.concatenate(overall_parts) if overall_parts else np.empty(0)
        ),
        component_sojourns={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in sojourns.items()
        },
        component_service_samples={
            name: (np.concatenate(parts) if parts else np.empty(0))
            for name, parts in services.items()
        },
        duration_s=float(duration_s),
        arrival_rate=float(arrival_rate),
        class_of=class_of,
        class_names=None if classes is None else classes.names,
    )


def _simulate_chunked_streaming(
    topology: ServiceTopology,
    kernel,
    arrival_rate: float,
    duration_s: float,
    service_dists: Mapping[str, Distribution],
    rng: np.random.Generator,
    classes: Optional[ResolvedClassMix],
    chunk: int,
    stream: IntervalAccumulatorSet,
) -> IntervalOutcome:
    """True single-pass streaming: O(chunk) peak memory.

    Arrivals are generated one time window at a time (window length ≈
    ``chunk / rate``): a Poisson count for the window plus sorted
    uniforms within it is an exact Poisson process, so no O(requests)
    arrivals array ever exists.  Per-chunk draws necessarily follow a
    different (fully seeded, deterministic given chunk size) stream
    than the monolithic pass — the exact-vs-streamed contract is
    distributional, enforced by the estimator property tests, not
    bit-identity.
    """
    if arrival_rate < 0 or duration_s <= 0:
        raise SimulationError(
            f"need rate >= 0 and duration > 0, got {arrival_rate}, {duration_s}"
        )
    names = None if classes is None else classes.names
    window = (
        duration_s if arrival_rate <= 0 else min(chunk / arrival_rate, duration_s)
    )
    n_windows = max(1, int(np.ceil(duration_s / window)))
    carries: Dict[str, LindleyCarry] = {}
    predecessors = topology.predecessor_indices
    for wi in range(n_windows):
        w_start = wi * window
        w_end = min(duration_s, (wi + 1) * window)
        if w_end <= w_start:
            break
        cnt = int(rng.poisson(arrival_rate * (w_end - w_start)))
        t_chunk = np.sort(rng.uniform(0.0, w_end - w_start, cnt)) + w_start
        class_chunk, scale_chunk = _class_draws(classes, rng, cnt)
        if class_chunk is not None:
            # Index narrowing: class rows fit comfortably in int16 and
            # this is a per-request array we hold per chunk.
            class_chunk = class_chunk.astype(np.int16)
        chunk_soj: Dict[str, List[np.ndarray]] = {
            c.name: [] for c in topology.components
        }
        chunk_svc: Dict[str, List[np.ndarray]] = {
            c.name: [] for c in topology.components
        }
        completions: List[np.ndarray] = []
        gi = 0
        for si, stage in enumerate(topology.stages):
            stage_lat = np.zeros(cnt)
            for group in stage.groups:
                take: Optional[np.ndarray] = None
                sub_scale = scale_chunk
                if classes is not None:
                    p_req = classes.group_participation[class_chunk, gi]
                    gi += 1
                    if not np.all(p_req >= 1.0):
                        take = rng.random(cnt) < p_req
                elif group.optional:
                    take = rng.random(cnt) < group.participation
                if take is None:
                    group_lat = kernel.route_group(
                        t_chunk, group, service_dists, rng,
                        chunk_soj, chunk_svc, sub_scale, carries=carries,
                    )
                    np.maximum(stage_lat, group_lat, out=stage_lat)
                else:
                    sub_lat = kernel.route_group(
                        t_chunk[take], group, service_dists, rng,
                        chunk_soj, chunk_svc,
                        None if sub_scale is None else sub_scale[take],
                        carries=carries,
                    )
                    stage_lat[take] = np.maximum(stage_lat[take], sub_lat)
            completions.append(
                _stage_completions(predecessors[si], completions, stage_lat)
            )
        overall = _compose_overall(topology, completions)
        stream.add_chunk(overall, chunk_soj, class_chunk, names)
    return IntervalOutcome(
        request_latencies=np.empty(0),
        component_sojourns={c.name: np.empty(0) for c in topology.components},
        component_service_samples={
            c.name: np.empty(0) for c in topology.components
        },
        duration_s=float(duration_s),
        arrival_rate=float(arrival_rate),
        class_of=None,
        class_names=names,
        streaming=stream,
    )
