"""Seed-level statistics over sweep results (the shared reduction).

PR 1's sweep subsystem executes policies × arrival-rates × seeds grids,
but every consumer used to hand-roll its own per-seed reduction, so the
headline tables carried no notion of run-to-run variance.  This module
is the **one** reduction they all share:

- :func:`flatten_metrics` turns a
  :meth:`~repro.sim.runner.PolicyResult.metrics_dict` into a flat
  ``{"component_latency.p99": ..., "n_migrations": ...}`` mapping of
  scalar metrics (nested summaries are dotted; per-interval series and
  string fields are not statistics material and are dropped);
- :class:`MetricStats` holds one metric's statistics across seeds:
  mean/std/min/max, the nearest-rank median, a Student-t confidence
  interval on the mean, and a bootstrap percentile interval;
- :class:`SeedAggregate` groups one (policy, arrival rate) cell's
  per-seed results and computes a :class:`MetricStats` per metric;
- :class:`SweepSummary` is the whole grid reduced: one
  :class:`SeedAggregate` per (policy, rate), buildable from an
  in-memory :class:`~repro.sim.sweep.SweepResult` *or* straight from a
  cache directory's ``manifest.json`` (:meth:`SweepSummary.from_cache`),
  with ``to_dict``/``from_dict`` round-tripping and a
  :meth:`~SweepSummary.render_table` for the Fig. 6 headline tables.

Statistical conventions
-----------------------
*Percentile bounds are nearest-rank.*  Both the bootstrap interval and
the per-seed median go through :func:`repro.sim.metrics.percentile`
(``numpy``'s ``method="higher"``), so every reported bound is an
actually observed value (a real resample mean, a real seed's metric) —
the same convention as every other percentile in the package.

*The Student-t interval* is ``mean ± t_{(1+c)/2, n-1} · s/√n`` with the
sample standard deviation (``ddof=1``).  The t quantile is computed by
a self-contained inversion of the t CDF (regularised incomplete beta
via a Lentz continued fraction), so the numbers do not depend on
whether SciPy happens to be importable.

*Everything is deterministic.*  Per-seed values are reduced in sorted
seed order (so summation order — and therefore the float result — is
independent of completion order), and the bootstrap draws from a
:class:`~repro.rng.RngRegistry` stream named by the (policy, rate,
metric) cell, so two summaries of the same results are bit-identical
whatever the worker count, process layout or dict ordering that
produced them.

A single seed degenerates gracefully: ``std = 0`` and both intervals
collapse to ``(mean, mean)`` without touching the RNG, so single-seed
sweeps stay exactly as cheap (and as reproducible) as before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    CacheCorruptionError,
    ConfigurationError,
    ExperimentError,
    SweepCacheError,
    WorkerTaskError,
)
from repro.rng import RngRegistry
from repro.sim.metrics import percentile
from repro.sim.runner import PolicyResult
from repro.stats import norm_cdf, norm_ppf

__all__ = [
    "AggregateConfig",
    "MetricStats",
    "SeedAggregate",
    "SweepSummary",
    "flatten_metrics",
    "student_t_ppf",
    "DEFAULT_TABLE_METRICS",
]

#: The two paper report currencies, as flattened metric names.
DEFAULT_TABLE_METRICS = ("component_latency.p99", "overall_latency.mean")


# ----------------------------------------------------------------------
# Student-t quantiles (dependency-free, deterministic everywhere)
# ----------------------------------------------------------------------
def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-16:
            break
    return h


def _reg_inc_beta(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        a * math.log(x)
        + b * math.log1p(-x)
        - (math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b))
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _t_cdf(t: float, df: float) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    if t == 0.0:
        return 0.5
    tail = 0.5 * _reg_inc_beta(df / 2.0, 0.5, df / (df + t * t))
    return 1.0 - tail if t > 0 else tail


def student_t_ppf(p: float, df: int) -> float:
    """Quantile of Student's t distribution (inverse CDF).

    Self-contained (no SciPy) so confidence bounds are identical in
    every environment; bisection on the closed-form CDF is plenty fast
    for the handful of calls per summary.
    """
    if not 0.0 < p < 1.0:
        raise ExperimentError(f"t quantile needs p in (0, 1), got {p}")
    if df < 1:
        raise ExperimentError(f"t quantile needs df >= 1, got {df}")
    if p == 0.5:
        return 0.0
    # Symmetric: solve for the upper tail and mirror.
    if p < 0.5:
        return -student_t_ppf(1.0 - p, df)
    lo, hi = 0.0, 2.0
    while _t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-14 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


# ----------------------------------------------------------------------
# BCa bootstrap quantile adjustment
# ----------------------------------------------------------------------
def _bca_quantiles(
    arr: np.ndarray,
    resample_means: np.ndarray,
    observed_mean: float,
    lo_q: float,
    hi_q: float,
) -> Tuple[float, float]:
    """Efron's bias-corrected-and-accelerated percentile adjustment.

    Returns the *adjusted* (lo, hi) percentile ranks (in [0, 100]) to
    read off the resample-mean distribution in place of the plain
    ``lo_q``/``hi_q``:

    - the bias correction ``z0`` is the normal quantile of the fraction
      of resample means below the observed mean (0 bias → z0 = 0 → the
      plain percentile interval);
    - the acceleration ``a`` comes from the jackknife means' skewness
      and rescales the interval for a statistic whose variance moves
      with its value.

    Degenerate inputs — every resample mean on one side of the
    observed mean (z0 would be ±∞), or zero jackknife variance —
    fall back to the unadjusted ranks, matching the plain percentile
    interval instead of emitting an unbounded one.
    """
    frac_below = float(np.mean(resample_means < observed_mean))
    if frac_below <= 0.0 or frac_below >= 1.0:
        return lo_q, hi_q
    z0 = norm_ppf(frac_below)
    n = arr.size
    # Leave-one-out means in one vectorised pass.
    jack = (arr.sum() - arr) / (n - 1)
    centred = jack.mean() - jack
    denom = float(np.sum(centred**2)) ** 1.5
    accel = float(np.sum(centred**3)) / (6.0 * denom) if denom > 0 else 0.0

    def adjust(q: float) -> float:
        z = norm_ppf(q / 100.0)
        zt = z0 + (z0 + z) / (1.0 - accel * (z0 + z))
        return 100.0 * norm_cdf(zt)

    return adjust(lo_q), adjust(hi_q)


# ----------------------------------------------------------------------
# flattening metrics_dict
# ----------------------------------------------------------------------
def flatten_metrics(metrics: Mapping) -> Dict[str, float]:
    """Flatten a ``metrics_dict()`` into dotted scalar metrics.

    Nested mappings (the latency summaries) contribute
    ``"<field>.<subfield>"`` entries; ``bool``/``int``/``float`` leaves
    are kept (as floats); strings and per-interval lists are dropped —
    they identify or trace the run rather than measure it.
    """
    out: Dict[str, float] = {}

    def walk(prefix: str, value) -> None:
        if isinstance(value, Mapping):
            for key in value:
                walk(prefix + str(key) + ".", value[key])
        elif isinstance(value, bool):
            out[prefix[:-1]] = float(value)
        elif isinstance(value, (int, float, np.integer, np.floating)):
            out[prefix[:-1]] = float(value)
        # strings, lists, None: not statistics material

    for key in metrics:
        walk(str(key) + ".", metrics[key])
    return out


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateConfig:
    """Knobs of the statistics layer.

    ``bootstrap_seed`` is the root of a :class:`~repro.rng.RngRegistry`
    whose streams are named per (policy, rate, metric) cell, so the
    bootstrap is deterministic and independent of the order in which
    cells are aggregated.
    """

    confidence: float = 0.95
    bootstrap_resamples: int = 1000
    bootstrap_seed: int = 0
    #: Bootstrap interval construction: ``"percentile"`` (the plain
    #: interval — the historical default, bit-identical to pre-BCa
    #: summaries) or ``"bca"`` (bias-corrected and accelerated:
    #: Efron's z0 bias correction from the fraction of resample means
    #: below the observed mean plus a jackknife acceleration term —
    #: second-order accurate on skewed seed distributions).  Both read
    #: their bounds off the *same* resample-mean draw, so switching
    #: method never changes the RNG stream.
    ci_method: str = "percentile"

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ExperimentError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.bootstrap_resamples < 1:
            raise ExperimentError(
                f"bootstrap_resamples must be >= 1, got {self.bootstrap_resamples}"
            )
        if self.ci_method not in ("percentile", "bca"):
            raise ExperimentError(
                f"ci_method must be 'percentile' or 'bca', got "
                f"{self.ci_method!r}"
            )

    def to_dict(self) -> dict:
        return {
            "confidence": self.confidence,
            "bootstrap_resamples": self.bootstrap_resamples,
            "bootstrap_seed": self.bootstrap_seed,
            "ci_method": self.ci_method,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "AggregateConfig":
        return cls(
            confidence=float(d["confidence"]),
            bootstrap_resamples=int(d["bootstrap_resamples"]),
            bootstrap_seed=int(d["bootstrap_seed"]),
            # .get: summaries serialised before the BCa option existed
            # read back under the method they were computed with.
            ci_method=str(d.get("ci_method", "percentile")),
        )


# ----------------------------------------------------------------------
# one metric across seeds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricStats:
    """One metric's statistics across the seeds of a grid cell.

    ``values`` are kept (in sorted-seed order) so the object is a exact
    record: ``to_dict``/``from_dict`` round-trip bit-for-bit, and the
    intervals can always be re-derived.
    """

    n: int
    mean: float
    std: float
    min: float
    max: float
    p50: float
    t_lo: float
    t_hi: float
    boot_lo: float
    boot_hi: float
    values: Tuple[float, ...]

    @classmethod
    def compute(
        cls,
        values: Sequence[float],
        rng: Optional[np.random.Generator],
        config: AggregateConfig,
    ) -> "MetricStats":
        """Reduce one metric's per-seed values.

        ``values`` must already be in a canonical (sorted-seed) order;
        ``rng`` is only drawn from when ``len(values) > 1``.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ExperimentError("cannot aggregate an empty value list")
        n = int(arr.size)
        mean = float(arr.mean())
        if n == 1:
            v = float(arr[0])
            return cls(
                n=1, mean=v, std=0.0, min=v, max=v, p50=v,
                t_lo=v, t_hi=v, boot_lo=v, boot_hi=v,
                values=(v,),
            )
        std = float(arr.std(ddof=1))
        half = student_t_ppf(
            0.5 * (1.0 + config.confidence), n - 1
        ) * std / math.sqrt(n)
        lo_q = 100.0 * 0.5 * (1.0 - config.confidence)
        hi_q = 100.0 * 0.5 * (1.0 + config.confidence)
        if rng is None:
            raise ExperimentError(
                "multi-seed aggregation needs an RNG for the bootstrap"
            )
        idx = rng.integers(0, n, size=(config.bootstrap_resamples, n))
        resample_means = arr[idx].mean(axis=1)
        if config.ci_method == "bca":
            lo_q, hi_q = _bca_quantiles(
                arr, resample_means, mean, lo_q, hi_q
            )
        return cls(
            n=n,
            mean=mean,
            std=std,
            min=float(arr.min()),
            max=float(arr.max()),
            p50=percentile(arr, 50, label="seed-level median"),
            t_lo=mean - half,
            t_hi=mean + half,
            boot_lo=percentile(resample_means, lo_q, label="bootstrap lower bound"),
            boot_hi=percentile(resample_means, hi_q, label="bootstrap upper bound"),
            values=tuple(float(x) for x in arr),
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (floats round-trip exactly)."""
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "t_lo": self.t_lo,
            "t_hi": self.t_hi,
            "boot_lo": self.boot_lo,
            "boot_hi": self.boot_hi,
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "MetricStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            n=int(d["n"]),
            mean=float(d["mean"]),
            std=float(d["std"]),
            min=float(d["min"]),
            max=float(d["max"]),
            p50=float(d["p50"]),
            t_lo=float(d["t_lo"]),
            t_hi=float(d["t_hi"]),
            boot_lo=float(d["boot_lo"]),
            boot_hi=float(d["boot_hi"]),
            values=tuple(float(x) for x in d["values"]),
        )


# ----------------------------------------------------------------------
# one (policy, rate) cell across seeds
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeedAggregate:
    """All metrics of one (policy, arrival rate) cell, across seeds."""

    policy_name: str
    arrival_rate: float
    seeds: Tuple[int, ...]
    stats: Mapping[str, MetricStats]

    @classmethod
    def from_results(
        cls,
        policy_name: str,
        arrival_rate: float,
        per_seed: Mapping[int, Union[PolicyResult, Mapping]],
        config: AggregateConfig = AggregateConfig(),
        rngs: Optional[RngRegistry] = None,
    ) -> "SeedAggregate":
        """Reduce one cell's per-seed results.

        ``per_seed`` maps seed → :class:`PolicyResult` (or an
        already-flattened / ``metrics_dict()`` mapping).  Seeds are
        sorted before reduction so the result is independent of the
        mapping's insertion (i.e. completion) order.
        """
        if not per_seed:
            raise ExperimentError(
                f"no per-seed results for {policy_name} @ {arrival_rate:g}"
            )
        # One cell must not blend exact and estimated percentiles: the
        # summary_mode provenance string is dropped by flattening (it is
        # not a statistic), so a mixed cell would silently average
        # reservoir estimates with exact nearest-rank values.
        modes = {
            (
                result.summary_mode
                if isinstance(result, PolicyResult)
                else result.get("summary_mode")
            )
            for result in per_seed.values()
        }
        if len(modes) > 1:
            shown = sorted("exact" if m is None else str(m) for m in modes)
            raise ExperimentError(
                f"{policy_name} @ {arrival_rate:g} mixes summary modes "
                f"{shown} across seeds; aggregate exact and streamed "
                "runs separately"
            )
        return cls.from_records(
            policy_name,
            arrival_rate,
            {
                seed: (
                    flatten_metrics(result.metrics_dict())
                    if isinstance(result, PolicyResult)
                    else flatten_metrics(result)
                )
                for seed, result in per_seed.items()
            },
            config=config,
            rngs=rngs,
        )

    @classmethod
    def from_records(
        cls,
        policy_name: str,
        arrival_rate: float,
        per_seed: Mapping[int, Mapping[str, float]],
        config: AggregateConfig = AggregateConfig(),
        rngs: Optional[RngRegistry] = None,
    ) -> "SeedAggregate":
        """Reduce already-flat ``{seed: {metric: value}}`` records.

        This is the generic entry point: anything that repeats a
        measurement under several seeds (Fig. 6 seeds, Fig. 7 timing
        repetitions) reduces through here instead of a private loop.
        """
        if not per_seed:
            raise ExperimentError(
                f"no per-seed records for {policy_name} @ {arrival_rate:g}"
            )
        seeds = tuple(sorted(per_seed))
        flat = {seed: dict(per_seed[seed]) for seed in seeds}
        names = set(flat[seeds[0]])
        for seed in seeds[1:]:
            if set(flat[seed]) != names:
                raise ExperimentError(
                    f"seed {seed} of {policy_name} @ {arrival_rate:g} reports "
                    f"different metrics than seed {seeds[0]}"
                )
        if rngs is None:
            rngs = RngRegistry(config.bootstrap_seed)
        stats: Dict[str, MetricStats] = {}
        for name in sorted(names):
            rng = (
                rngs.get(
                    f"aggregate.bootstrap.{policy_name}@{arrival_rate!r}.{name}"
                )
                if len(seeds) > 1
                else None
            )
            stats[name] = MetricStats.compute(
                [flat[seed][name] for seed in seeds], rng, config
            )
        return cls(
            policy_name=policy_name,
            arrival_rate=arrival_rate,
            seeds=seeds,
            stats=stats,
        )

    def __getitem__(self, metric: str) -> MetricStats:
        try:
            return self.stats[metric]
        except KeyError:
            raise ExperimentError(
                f"{self.policy_name} @ {self.arrival_rate:g} has no metric "
                f"{metric!r} (have: {', '.join(sorted(self.stats))})"
            ) from None

    def mean(self, metric: str) -> float:
        """Seed-mean of one metric (the headline reduction)."""
        return self[metric].mean

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "policy_name": self.policy_name,
            "arrival_rate": self.arrival_rate,
            "seeds": list(self.seeds),
            "stats": {k: v.to_dict() for k, v in self.stats.items()},
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "SeedAggregate":
        """Inverse of :meth:`to_dict`."""
        return cls(
            policy_name=str(d["policy_name"]),
            arrival_rate=float(d["arrival_rate"]),
            seeds=tuple(int(s) for s in d["seeds"]),
            stats={k: MetricStats.from_dict(v) for k, v in d["stats"].items()},
        )


# ----------------------------------------------------------------------
# the whole grid
# ----------------------------------------------------------------------
@dataclass
class SweepSummary:
    """A sweep reduced across seeds: one :class:`SeedAggregate` per
    (policy, arrival rate), in rate-major grid order."""

    groups: Dict[Tuple[str, float], SeedAggregate]
    seeds: Tuple[int, ...]
    config: AggregateConfig = field(default_factory=AggregateConfig)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_grouped(
        cls,
        grouped: Mapping[Tuple[str, float], Mapping[int, PolicyResult]],
        config: AggregateConfig = AggregateConfig(),
    ) -> "SweepSummary":
        """Build from ``{(policy, rate): {seed: PolicyResult}}``."""
        if not grouped:
            raise ExperimentError("nothing to summarise: no grid cells")
        rngs = RngRegistry(config.bootstrap_seed)
        groups = {
            key: SeedAggregate.from_results(
                key[0], key[1], per_seed, config=config, rngs=rngs
            )
            for key, per_seed in grouped.items()
        }
        seeds = sorted({s for agg in groups.values() for s in agg.seeds})
        return cls(groups=groups, seeds=tuple(seeds), config=config)

    @classmethod
    def from_sweep(
        cls, result, config: AggregateConfig = AggregateConfig()
    ) -> "SweepSummary":
        """Reduce a :class:`~repro.sim.sweep.SweepResult` across seeds."""
        grouped: Dict[Tuple[str, float], Dict[int, PolicyResult]] = {}
        for rate in result.spec.arrival_rates:
            for policy in result.spec.policies:
                grouped[(policy.name, rate)] = {}
        for point, point_result in result.results.items():
            grouped[(point.policy.name, point.arrival_rate)][
                point.seed
            ] = point_result
        return cls.from_grouped(grouped, config=config)

    @classmethod
    def from_cache(
        cls,
        cache,
        config: AggregateConfig = AggregateConfig(),
        backend=None,
    ) -> "SweepSummary":
        """Reduce a cache directory using its ``manifest.json``.

        ``cache`` is a :class:`~repro.sim.sweep.SweepCache` (or a path
        accepted by its constructor).  Every point named by the
        manifest must be present and loadable; a missing point means
        the sweep never completed and aggregation would silently
        under-count seeds, so it fails loudly instead.

        ``backend`` optionally fans the point-file loads out over an
        :class:`~repro.sim.backends.ExecutionBackend` (the thread
        backend overlaps the JSON reads of a large cache); ``None``
        loads inline.  The summary is identical either way — loads are
        reassembled in manifest order before reduction.
        """
        from repro.sim.sweep import SweepCache

        # The distributed backend ships *sweep tasks* to remote workers;
        # it cannot run arbitrary callables like ``cache.load``, and
        # shipping local point-file reads through a spool would be
        # nonsense anyway.  Reject it here with the real reason instead
        # of letting its callable-identity guard produce a confusing
        # message mid-load.
        if getattr(backend, "name", None) == "distributed":
            raise ConfigurationError(
                "the distributed backend executes sweep tasks, not cache "
                "loads; aggregate with the serial or thread backend"
            )
        if not isinstance(cache, SweepCache):
            cache = SweepCache(cache)
        manifest = cache.manifest()
        if manifest is None:
            raise ExperimentError(
                f"no manifest.json in {cache.root}; run the sweep with a "
                "cache (or rebuild it) before aggregating"
            )
        # Pre-seed the cells in grid (rate-major, legend) order: the
        # on-disk points map is sorted by hash key, and the summary's
        # group order must not depend on that accident.
        grouped: Dict[Tuple[str, float], Dict[int, PolicyResult]] = {
            (policy["name"], float(rate)): {}
            for rate in manifest["spec"]["arrival_rates"]
            for policy in manifest["spec"]["policies"]
        }
        keys = list(manifest["points"])
        if backend is None:
            loaded = [cache.load(key) for key in keys]
        else:
            try:
                loaded = backend.map(cache.load, keys)
            except WorkerTaskError as err:
                # Keep this method's error contract backend-independent:
                # a corrupt entry must surface as the named cache error,
                # not as the backend's task wrapper.  The thread/serial
                # backends chain the original; the process backend loses
                # the chain to pickling, so recognise cache errors from
                # the wrapper's "raised <Type>" message and rebuild the
                # path from the failing index.  Anything else (e.g. a
                # PermissionError on a point file) is *not* corruption
                # and keeps the wrapper rather than being mislabelled.
                cause = err.__cause__
                if isinstance(cause, SweepCacheError):
                    raise cause
                # The process backend never chains the original (the
                # executor substitutes a remote-traceback object), so
                # recognise cache errors from the wrapper's own
                # "raised <Type>" message.
                names_cache_error = any(
                    f"raised {name}" in str(err)
                    for name in (
                        "CacheCorruptionError",
                        "StaleManifestError",
                        "SweepCacheError",
                    )
                )
                if not names_cache_error:
                    raise
                path = (
                    cache.path_for(keys[err.index])
                    if err.index is not None and 0 <= err.index < len(keys)
                    else None
                )
                raise CacheCorruptionError(
                    f"failed to load sweep cache entry "
                    f"{path if path is not None else '<unknown>'}: {err}",
                    path=path,
                ) from err
        missing: List[str] = []
        for key, result in zip(keys, loaded):
            coords = manifest["points"][key]
            if result is None:
                missing.append(
                    f"{coords['policy']} @ {coords['arrival_rate']:g} "
                    f"seed {coords['seed']} ({key})"
                )
                continue
            cell = (coords["policy"], float(coords["arrival_rate"]))
            grouped.setdefault(cell, {})[int(coords["seed"])] = result
        if missing:
            shown = "; ".join(missing[:4]) + ("; ..." if len(missing) > 4 else "")
            raise ExperimentError(
                f"{len(missing)} of {len(manifest['points'])} manifest "
                f"points missing from {cache.root}: {shown} — finish the "
                "sweep before aggregating"
            )
        return cls.from_grouped(grouped, config=config)

    # -- access ---------------------------------------------------------
    def policies(self) -> List[str]:
        """Policy names, in first-appearance (grid) order."""
        seen: Dict[str, None] = {}
        for name, _ in self.groups:
            seen.setdefault(name)
        return list(seen)

    def rates(self) -> List[float]:
        """Arrival rates, ascending."""
        return sorted({rate for _, rate in self.groups})

    def get(self, policy_name: str, arrival_rate: float) -> SeedAggregate:
        """One cell's aggregate."""
        try:
            return self.groups[(policy_name, arrival_rate)]
        except KeyError:
            raise ExperimentError(
                f"no aggregated cell ({policy_name}, {arrival_rate:g}); "
                f"have policies {self.policies()} at rates {self.rates()}"
            ) from None

    def seed_mean(self, policy_name: str, arrival_rate: float, metric: str) -> float:
        """Shorthand for the seed-mean of one cell's metric."""
        return self.get(policy_name, arrival_rate).mean(metric)

    # -- paired differences ---------------------------------------------
    def paired_diff(
        self,
        policy_a: str,
        policy_b: str,
        arrival_rate: float,
        metrics: Optional[Sequence[str]] = None,
    ) -> Dict[str, MetricStats]:
        """Per-seed difference statistics ``policy_a − policy_b``.

        Policies in one grid share seeds (the runner derives all
        randomness from the cell's seed), so the per-seed deltas cancel
        the common seed-to-seed variation and their Student-t/bootstrap
        intervals are much tighter than the difference of two marginal
        intervals — the right uncertainty for "PCS − baseline" claims.

        ``metrics`` defaults to every metric the two cells share.
        Raises when the cells were run under different seed sets (the
        pairing would be fiction).  Deterministic: the bootstrap draws
        from streams named per (policy pair, rate, metric), independent
        of call order.
        """
        a = self.get(policy_a, arrival_rate)
        b = self.get(policy_b, arrival_rate)
        if a.seeds != b.seeds:
            raise ExperimentError(
                f"cannot pair {policy_a} (seeds {list(a.seeds)}) with "
                f"{policy_b} (seeds {list(b.seeds)}) at {arrival_rate:g} "
                "req/s: per-seed differences need identical seed sets"
            )
        names = (
            list(metrics)
            if metrics is not None
            else sorted(set(a.stats) & set(b.stats))
        )
        rngs = RngRegistry(self.config.bootstrap_seed)
        out: Dict[str, MetricStats] = {}
        for name in names:
            deltas = [
                va - vb for va, vb in zip(a[name].values, b[name].values)
            ]
            rng = (
                rngs.get(
                    "aggregate.paired."
                    f"{policy_a}-{policy_b}@{arrival_rate!r}.{name}"
                )
                if len(deltas) > 1
                else None
            )
            out[name] = MetricStats.compute(deltas, rng, self.config)
        return out

    # -- cross-run comparison --------------------------------------------
    def compare(
        self,
        other: "SweepSummary",
        metrics: Optional[Sequence[str]] = None,
    ) -> Dict[Tuple[str, float], Dict[str, MetricStats]]:
        """Paired per-seed differences ``self − other`` per shared cell.

        The cross-run sibling of :meth:`paired_diff` (``aggregate
        --compare DIR``): both runs evaluated the same (policy, rate)
        cells under shared seeds, so the per-seed deltas cancel the
        common seed-to-seed variation exactly as within-run pairing
        does — the right uncertainty for "did this code/config change
        move the metric?".  Cells present in only one run are skipped
        (:meth:`unmatched_cells` lists them; the manifest-level
        ``SweepCache.diff`` explains *why* they differ).  A shared
        cell whose seed sets differ raises a clear
        :class:`~repro.errors.ExperimentError` — a paired difference
        over different seeds would be fiction.  Deterministic: the
        bootstrap draws from streams named per (cell, metric).
        """
        shared = [cell for cell in self.groups if cell in other.groups]
        if not shared:
            raise ExperimentError(
                "the two runs share no (policy, arrival rate) cells: "
                f"mine has {sorted(self.groups)}, "
                f"theirs {sorted(other.groups)}"
            )
        mismatched = [
            (cell, self.groups[cell].seeds, other.groups[cell].seeds)
            for cell in shared
            if self.groups[cell].seeds != other.groups[cell].seeds
        ]
        if mismatched:
            shown = "; ".join(
                f"{policy} @ {rate:g} (mine seeds {list(sa)}, "
                f"theirs {list(sb)})"
                for (policy, rate), sa, sb in mismatched[:4]
            )
            raise ExperimentError(
                f"{len(mismatched)} shared cell(s) were run under "
                f"different seed sets — paired differences need identical "
                f"seeds: {shown}"
                + ("; ..." if len(mismatched) > 4 else "")
            )
        rngs = RngRegistry(self.config.bootstrap_seed)
        out: Dict[Tuple[str, float], Dict[str, MetricStats]] = {}
        for cell in shared:
            a, b = self.groups[cell], other.groups[cell]
            names = (
                list(metrics)
                if metrics is not None
                else sorted(set(a.stats) & set(b.stats))
            )
            per_metric: Dict[str, MetricStats] = {}
            for name in names:
                deltas = [
                    va - vb for va, vb in zip(a[name].values, b[name].values)
                ]
                rng = (
                    rngs.get(
                        f"aggregate.compare.{cell[0]}@{cell[1]!r}.{name}"
                    )
                    if len(deltas) > 1
                    else None
                )
                per_metric[name] = MetricStats.compute(
                    deltas, rng, self.config
                )
            out[cell] = per_metric
        return out

    def unmatched_cells(
        self, other: "SweepSummary"
    ) -> Tuple[List[Tuple[str, float]], List[Tuple[str, float]]]:
        """Cells only in ``self`` and cells only in ``other``."""
        mine = [cell for cell in self.groups if cell not in other.groups]
        theirs = [cell for cell in other.groups if cell not in self.groups]
        return mine, theirs

    def render_compare_table(
        self,
        other: "SweepSummary",
        metrics: Sequence[str] = DEFAULT_TABLE_METRICS,
        unit_ms: bool = True,
    ) -> str:
        """``aggregate --compare``'s joint table: per shared cell, the
        paired ``this − other`` delta (mean ± t-CI and bootstrap CI)
        per metric, with unmatched cells footnoted."""
        from repro.experiments.report import format_ci, render_table

        diffs = self.compare(other, metrics=metrics)
        f = 1e3 if unit_ms else 1.0
        unit = "ms" if unit_ms else ""
        headers = ["rate (req/s)", "policy"]
        for metric in metrics:
            headers.append(
                f"Δ {metric} ({unit}, mean±{self.config.confidence:.0%})"
            )
            headers.append("boot CI")
        rows = []
        for rate in sorted({rate for _, rate in diffs}):
            for name in self.policies():
                if (name, rate) not in diffs:
                    continue
                row = [f"{rate:g}", name]
                for metric in metrics:
                    s = diffs[(name, rate)][metric]
                    half = 0.5 * (s.t_hi - s.t_lo)
                    row.append(f"{s.mean * f:+.2f} ± {half * f:.2f}")
                    row.append(format_ci(s.boot_lo * f, s.boot_hi * f))
                rows.append(row)
        title = (
            "Paired per-seed differences, this run − other run "
            f"(seeds {list(self.seeds)}; {self.config.confidence:.0%} CIs)"
        )
        table = render_table(headers, rows, title=title)
        only_mine, only_theirs = self.unmatched_cells(other)
        notes = []
        if only_mine:
            notes.append(
                "cells only in this run (skipped): "
                + ", ".join(f"{p}@{r:g}" for p, r in only_mine)
            )
        if only_theirs:
            notes.append(
                "cells only in the other run (skipped): "
                + ", ".join(f"{p}@{r:g}" for p, r in only_theirs)
            )
        return "\n".join([table] + notes)

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable form (groups keyed ``"policy@rate"``)."""
        return {
            "seeds": list(self.seeds),
            "config": self.config.to_dict(),
            "groups": [g.to_dict() for g in self.groups.values()],
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "SweepSummary":
        """Inverse of :meth:`to_dict`."""
        groups = {}
        for payload in d["groups"]:
            agg = SeedAggregate.from_dict(payload)
            groups[(agg.policy_name, agg.arrival_rate)] = agg
        return cls(
            groups=groups,
            seeds=tuple(int(s) for s in d["seeds"]),
            config=AggregateConfig.from_dict(d["config"]),
        )

    # -- presentation ---------------------------------------------------
    def render_table(
        self,
        metrics: Sequence[str] = DEFAULT_TABLE_METRICS,
        unit_ms: bool = True,
    ) -> str:
        """The headline table: one row per (rate, policy), mean ± t-CI
        and the bootstrap interval per requested metric."""
        from repro.experiments.report import format_ci, render_table

        f = 1e3 if unit_ms else 1.0
        unit = "ms" if unit_ms else ""
        headers = ["rate (req/s)", "policy"]
        for metric in metrics:
            headers.append(f"{metric} ({unit}, mean±{self.config.confidence:.0%})")
            headers.append("boot CI")
        rows = []
        for rate in self.rates():
            for name in self.policies():
                agg = self.get(name, rate)
                row = [f"{rate:g}", name]
                for metric in metrics:
                    s = agg[metric]
                    half = 0.5 * (s.t_hi - s.t_lo)
                    row.append(f"{s.mean * f:.2f} ± {half * f:.2f}")
                    row.append(format_ci(s.boot_lo * f, s.boot_hi * f))
                rows.append(row)
        title = (
            f"Seed-level aggregate over seeds {list(self.seeds)} "
            f"({self.config.confidence:.0%} CIs; nearest-rank bootstrap, "
            f"{self.config.bootstrap_resamples} resamples)"
        )
        return render_table(headers, rows, title=title)
