"""Distributed sweep execution over a shared spool directory.

:class:`DistributedBackend` is the fourth implementation of the
:class:`~repro.sim.backends.ExecutionBackend` seam: instead of threads
or spawned processes, sweep points run on **worker processes that may
live on other hosts**, coordinated through nothing but a shared
filesystem (NFS mount, bind-mounted volume, or a local directory for
same-host workers).  No broker, no sockets — every protocol step is an
atomic filesystem operation, the same primitive
:class:`~repro.sim.sweep.SweepCache` already builds on.

Spool layout (``SPOOL_SCHEMA_VERSION`` = 1)
-------------------------------------------
::

    <spool>/spool.json        # schema stamp; version-checked on open
    <spool>/jobs/<id>.json    # dispatched, unclaimed job files
    <spool>/claims/<id>.json  # claimed jobs: payload + claim block
    <spool>/results/<id>.json # completed jobs: results or an error
    <spool>/workers/<host>-<pid>.json   # worker presence + heartbeat
    <spool>/stop              # sentinel: workers drain and exit

A *job* carries a chunk of sweep tasks, each serialised with the same
:func:`~repro.sim.sweep._canonical` encoding the cache keys use —
schema-versioned JSON, written via temp-file + ``os.replace`` so a
reader never sees a half-written file.

Claim protocol
--------------
Workers claim a job by **renaming** ``jobs/<id>.json`` to
``claims/<id>.json``.  ``os.rename`` is atomic: exactly one claimant
wins, every loser gets ``FileNotFoundError`` and moves on.  The winner
rewrites the claim file with a claim block (pid, host, timestamps) and
refreshes its ``heartbeat`` field from a daemon thread while the job
computes.  A claim is **stale** when its worker is provably dead (same
host, pid gone) or its heartbeat is older than the lease
(:data:`DEFAULT_LEASE_S`); the coordinator reclaims stale claims by
atomically re-writing the job file and dropping the claim — so a
SIGKILL'd worker costs one lease interval, not the sweep.  A worker
that was merely paused past its lease may still finish; the duplicate
execution is harmless because every task is deterministic and result
writes are atomic and idempotent (last writer rewrites identical
bytes).

Determinism and failure contract
--------------------------------
Workers run the exact :func:`~repro.sim.sweep._execute_task` the other
backends run — per-point :class:`~repro.rng.RngRegistry` seeding, the
per-process predictor memo — and results round-trip through the same
exact-float JSON the cache uses, so a distributed sweep is
**bit-identical** to serial on every ``metrics_dict()`` field.  A task
that raises in a worker comes back as an error result; the coordinator
yields every already-finished success, deletes the run's unclaimed job
files (cancel), and raises :class:`~repro.errors.WorkerTaskError` with
the failing index — the same contract as every other backend, so
:class:`~repro.sim.sweep.ParallelSweepRunner` resumes from cached
peers unchanged.  ``SweepCache`` writes stay coordinator-side only:
workers touch nothing but the spool.
"""

from __future__ import annotations

import dataclasses
import json
import os
import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, SpoolError, WorkerTaskError
from repro.sim.backends import ExecutionBackend, chunked

__all__ = [
    "DistributedBackend",
    "SweepSpool",
    "run_worker",
    "request_stop",
    "clear_stop",
    "register_codec_class",
    "encode_task",
    "decode_task",
    "SPOOL_SCHEMA_VERSION",
    "DEFAULT_LEASE_S",
]

#: Bump when the spool layout or job/result payload schema changes; a
#: spool stamped with a different version refuses to open (never a
#: silent cross-version misread).
SPOOL_SCHEMA_VERSION = 1

#: Seconds without a heartbeat after which a claim (or a worker
#: presence file) is considered abandoned and may be reclaimed.
DEFAULT_LEASE_S = 30.0

#: The spool's metadata stamp filename.
SPOOL_META_NAME = "spool.json"

#: The drain-and-exit sentinel filename.
STOP_NAME = "stop"


# ----------------------------------------------------------------------
# task codec: _canonical trees back into frozen dataclasses
# ----------------------------------------------------------------------
#: Class registry for decoding ``{"__class__": name, ...}`` trees.
#: Populated below with every dataclass a (config, policy) task can
#: contain; tests (or downstream policy packages) extend it via
#: :func:`register_codec_class`.
_CODEC_CLASSES: Dict[str, type] = {}


def register_codec_class(cls: type) -> type:
    """Register a dataclass for spool-task decoding; returns ``cls``.

    The encoder (:func:`~repro.sim.sweep._canonical`) stamps each
    dataclass with its class *name*; decoding needs the name → class
    map.  Built-in config and policy classes are pre-registered; a
    custom :class:`~repro.baselines.policies.Policy` subclass swept
    over the spool must be registered in the **worker's** process too
    (workers re-import only :mod:`repro` modules).
    """
    if not (dataclasses.is_dataclass(cls) and isinstance(cls, type)):
        raise ConfigurationError(
            f"codec classes must be dataclasses, got {cls!r}"
        )
    _CODEC_CLASSES[cls.__name__] = cls
    return cls


def _register_builtin_codec_classes() -> None:
    """Everything a built-in (config, policy) task tree can contain."""
    from repro.baselines.policies import (
        AdaptiveHedgePolicy,
        AdaptiveReissuePolicy,
        BasicPolicy,
        HedgedPolicy,
        PCSPolicy,
        Policy,
        REDPolicy,
        ReissuePolicy,
    )
    from repro.monitoring.monitor import MonitorConfig
    from repro.scheduler.migration import MigrationCostModel
    from repro.scheduler.pcs import SchedulerConfig
    from repro.scheduler.threshold import AdaptiveThreshold, StaticThreshold
    from repro.service.nutch import NutchConfig
    from repro.sim.profiling import ProfilingConfig
    from repro.sim.runner import RunnerConfig
    from repro.workloads.generator import GeneratorConfig

    for cls in (
        RunnerConfig,
        NutchConfig,
        GeneratorConfig,
        MonitorConfig,
        ProfilingConfig,
        MigrationCostModel,
        SchedulerConfig,
        StaticThreshold,
        AdaptiveThreshold,
        Policy,
        BasicPolicy,
        REDPolicy,
        ReissuePolicy,
        HedgedPolicy,
        AdaptiveReissuePolicy,
        AdaptiveHedgePolicy,
        PCSPolicy,
    ):
        register_codec_class(cls)


def _decode_canonical(obj, *, where: str):
    """Inverse of :func:`~repro.sim.sweep._canonical`.

    JSON lists become tuples (every sequence field in the frozen
    configs is a tuple; ``_canonical`` flattened them to lists), plain
    dicts stay dicts (e.g. ``GeneratorConfig.mix``), and
    ``{"__class__": ...}`` nodes rebuild the registered dataclass from
    its init fields — re-running ``__post_init__`` validation, so a
    tampered payload fails loudly instead of simulating garbage.
    """
    if isinstance(obj, list):
        return tuple(_decode_canonical(x, where=where) for x in obj)
    if isinstance(obj, dict):
        if "__class__" not in obj:
            return {
                k: _decode_canonical(v, where=where) for k, v in obj.items()
            }
        name = obj["__class__"]
        cls = _CODEC_CLASSES.get(name)
        if cls is None:
            raise SpoolError(
                f"{where}: unknown task class {name!r} — the worker does "
                "not have it registered (see register_codec_class); "
                f"registered: {', '.join(sorted(_CODEC_CLASSES))}"
            )
        kwargs = {
            f.name: _decode_canonical(obj[f.name], where=where)
            for f in dataclasses.fields(cls)
            if f.init and f.name in obj
        }
        try:
            return cls(**kwargs)
        except Exception as exc:
            raise SpoolError(
                f"{where}: cannot rebuild {name} from job payload "
                f"({type(exc).__name__}: {exc})"
            ) from exc
    return obj


def encode_task(index: int, task: tuple) -> dict:
    """One ``(config, policy)`` task as a JSON-able job entry."""
    from repro.sim.sweep import _canonical

    config, policy = task
    return {
        "index": int(index),
        "config": _canonical(config),
        "policy": _canonical(policy),
    }


def decode_task(entry: dict, *, where: str = "spool job") -> tuple:
    """Inverse of :func:`encode_task`: ``(config, policy)``."""
    try:
        config_tree = entry["config"]
        policy_tree = entry["policy"]
    except (KeyError, TypeError) as exc:
        raise SpoolError(
            f"{where}: task entry is missing its config/policy payload"
        ) from exc
    return (
        _decode_canonical(config_tree, where=where),
        _decode_canonical(policy_tree, where=where),
    )


# ----------------------------------------------------------------------
# the spool: every protocol step is one atomic filesystem operation
# ----------------------------------------------------------------------
def _hostname() -> str:
    return socket.gethostname() or "unknown-host"


def _new_run_id() -> str:
    """Coordinator-unique token prefixed onto this run's job ids."""
    return uuid.uuid4().hex[:12]


class SweepSpool:
    """Filesystem job queue shared by one coordinator and N workers.

    All methods are safe under concurrent use from any number of
    processes on any number of hosts sharing the directory: writes go
    through temp-file + ``os.replace``, claims through ``os.rename``
    (first renamer wins), and reads treat a missing file as the
    ordinary *someone was faster* case.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.workers_dir = self.root / "workers"

    @property
    def meta_path(self) -> Path:
        return self.root / SPOOL_META_NAME

    @property
    def stop_path(self) -> Path:
        return self.root / STOP_NAME

    def ensure(self) -> "SweepSpool":
        """Create the layout (idempotent) and check the schema stamp."""
        for d in (
            self.root,
            self.jobs_dir,
            self.claims_dir,
            self.results_dir,
            self.workers_dir,
        ):
            d.mkdir(parents=True, exist_ok=True)
        meta = self._read_json(self.meta_path)
        if meta is None:
            # Concurrent first-ensures both write the stamp; the temp
            # names are collision-free, so last-writer-wins with
            # identical schema content.
            self._atomic_write(
                self.meta_path,
                {"schema_version": SPOOL_SCHEMA_VERSION, "created": time.time()},
            )
        elif meta.get("schema_version") != SPOOL_SCHEMA_VERSION:
            raise SpoolError(
                f"{self.meta_path} was written under spool schema "
                f"{meta.get('schema_version')!r}; this build speaks "
                f"{SPOOL_SCHEMA_VERSION} — use a fresh spool directory",
                path=self.meta_path,
            )
        return self

    # -- low-level IO ---------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, payload: dict) -> None:
        """Temp-file + ``os.replace``, like the sweep cache's writer,
        but with a per-call nonce in the temp name: spool files (the
        schema stamp, a claim under heartbeat) can be written
        concurrently by two actors *in the same process*, and a purely
        pid-based temp name would make them fight over one temp file.
        The ``tmp-<pid>`` tail is preserved so :meth:`gc`'s
        live-pid-spared reaping still applies.
        """
        tmp = path.with_name(
            f"{path.stem}-{uuid.uuid4().hex[:8]}.tmp-{os.getpid()}"
        )
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> Optional[dict]:
        """Parse one spool file; gone → ``None``; partial reads cannot
        happen (writes are atomic), so garbage is a real protocol error."""
        try:
            with path.open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SpoolError(
                f"spool file {path} is not valid JSON "
                f"({type(exc).__name__}: {exc}); the spool directory must "
                "be on a filesystem with atomic rename",
                path=path,
            ) from exc

    # -- coordinator side -----------------------------------------------
    def submit_job(self, job_id: str, run_id: str, tasks: List[dict]) -> Path:
        """Dispatch one job (a chunk of encoded tasks) for claiming."""
        path = self.jobs_dir / f"{job_id}.json"
        self._atomic_write(
            path,
            {
                "schema_version": SPOOL_SCHEMA_VERSION,
                "run_id": run_id,
                "job_id": job_id,
                "tasks": tasks,
            },
        )
        return path

    def read_result(self, job_id: str) -> Optional[dict]:
        """The completed result payload for ``job_id``, or ``None``."""
        return self._read_json(self.results_dir / f"{job_id}.json")

    def consume_result(self, job_id: str) -> None:
        (self.results_dir / f"{job_id}.json").unlink(missing_ok=True)

    def reclaim_stale(self, run_id: str, lease_s: float) -> int:
        """Re-dispatch this run's jobs whose claimant is gone.

        A claim is stale when its worker is provably dead (same host,
        pid no longer exists) or its heartbeat exceeded the lease.
        Re-dispatch order (job file first, claim unlink second) is
        crash-safe: dying between the two leaves a job file *and* a
        stale claim, and the next reclaim pass simply drops the claim.
        Returns how many claims were reclaimed.
        """
        from repro.sim.sweep import _pid_alive

        reclaimed = 0
        now = time.time()
        for path in self.claims_dir.glob(f"{run_id}-*.json"):
            try:
                payload = self._read_json(path)
            except SpoolError:
                continue  # mid-replace blip on a non-atomic FS; retry later
            if payload is None:
                continue
            claim = payload.get("claim") or {}
            dead = (
                claim.get("host") == _hostname()
                and isinstance(claim.get("pid"), int)
                and not _pid_alive(claim["pid"])
            )
            heartbeat = claim.get("heartbeat")
            expired = (
                not isinstance(heartbeat, (int, float))
                or now - heartbeat > lease_s
            )
            if not (dead or expired):
                continue
            job_id = payload.get("job_id") or path.stem
            if (self.results_dir / f"{job_id}.json").exists():
                path.unlink(missing_ok=True)  # finished before it died
                continue
            job = {
                k: payload[k]
                for k in ("schema_version", "run_id", "job_id", "tasks")
                if k in payload
            }
            self._atomic_write(self.jobs_dir / f"{job_id}.json", job)
            path.unlink(missing_ok=True)
            reclaimed += 1
        return reclaimed

    def cancel_run(self, run_id: str) -> None:
        """Withdraw a run: unclaimed jobs and already-present results.

        Claimed jobs cannot be revoked mid-compute; their (discarded)
        results land later and are reaped by
        :meth:`~repro.sim.sweep.SweepCache.gc` or the next
        coordinator's :meth:`cleanup_run`.
        """
        for d in (self.jobs_dir, self.results_dir):
            for path in d.glob(f"{run_id}-*.json"):
                path.unlink(missing_ok=True)

    cleanup_run = cancel_run

    # -- worker side ----------------------------------------------------
    def pending_jobs(self) -> List[str]:
        """Claimable job ids, oldest submission order first."""
        return sorted(p.stem for p in self.jobs_dir.glob("*.json"))

    def claim(self, job_id: str) -> Optional[dict]:
        """Atomically claim one job; ``None`` when someone else won.

        The claim *is* the rename — after it, no other worker can
        claim the job.  The claim block (pid/host/heartbeat) is written
        in a second, non-racing step; a crash between the two leaves a
        claim with no block, which reads as expired and is reclaimed.
        """
        src = self.jobs_dir / f"{job_id}.json"
        dst = self.claims_dir / f"{job_id}.json"
        try:
            os.rename(src, dst)
        except FileNotFoundError:
            return None
        payload = self._read_json(dst)
        if payload is None:  # pragma: no cover - reclaimed instantly
            return None
        now = time.time()
        payload["claim"] = {
            "pid": os.getpid(),
            "host": _hostname(),
            "claimed_at": now,
            "heartbeat": now,
        }
        self._atomic_write(dst, payload)
        return payload

    def refresh_claim(self, payload: dict) -> None:
        """Heartbeat: atomically rewrite the claim with a fresh stamp."""
        payload["claim"]["heartbeat"] = time.time()
        self._atomic_write(
            self.claims_dir / f"{payload['job_id']}.json", payload
        )

    def release_claim(self, job_id: str) -> None:
        (self.claims_dir / f"{job_id}.json").unlink(missing_ok=True)

    def write_result(self, job_id: str, payload: dict) -> None:
        self._atomic_write(self.results_dir / f"{job_id}.json", payload)

    # -- worker presence -------------------------------------------------
    def worker_path(self, pid: Optional[int] = None) -> Path:
        pid = os.getpid() if pid is None else pid
        return self.workers_dir / f"{_hostname()}-{pid}.json"

    def register_worker(self) -> Path:
        path = self.worker_path()
        now = time.time()
        self._atomic_write(
            path,
            {
                "pid": os.getpid(),
                "host": _hostname(),
                "started": now,
                "heartbeat": now,
            },
        )
        return path

    def touch_worker(self) -> None:
        self.register_worker()

    def unregister_worker(self) -> None:
        self.worker_path().unlink(missing_ok=True)

    def live_workers(self, lease_s: float = DEFAULT_LEASE_S) -> int:
        """How many registered workers are currently believed alive.

        Same-host workers are checked by pid (exact); remote ones by
        heartbeat freshness against the lease.
        """
        from repro.sim.sweep import _pid_alive

        now = time.time()
        alive = 0
        for path in self.workers_dir.glob("*.json"):
            try:
                info = self._read_json(path)
            except SpoolError:
                continue
            if info is None:
                continue
            if info.get("host") == _hostname() and isinstance(
                info.get("pid"), int
            ):
                alive += 1 if _pid_alive(info["pid"]) else 0
            elif (
                isinstance(info.get("heartbeat"), (int, float))
                and now - info["heartbeat"] <= lease_s
            ):
                alive += 1
        return alive

    # -- hygiene ---------------------------------------------------------
    def gc(self, lease_s: float = DEFAULT_LEASE_S) -> List[Path]:
        """Reap abandoned spool artifacts; returns the removed paths.

        Removes expired claim files (worker provably dead, or heartbeat
        beyond the lease), presence files of dead workers, and
        ``*.tmp-<pid>`` files abandoned by dead writers — the same
        live-pid-spared rule as :meth:`~repro.sim.sweep.SweepCache.gc`,
        whose ``spool=`` argument delegates here.  Run it on idle
        spools: an *active* coordinator re-dispatches its own stale
        claims, and gc'ing a claim out from under it orphans that job
        until the coordinator's no-worker watchdog fires.
        """
        from repro.sim.sweep import _pid_alive

        removed: List[Path] = []
        now = time.time()
        for path in self.claims_dir.glob("*.json"):
            try:
                payload = self._read_json(path)
            except SpoolError:
                continue
            if payload is None:
                continue
            claim = payload.get("claim") or {}
            dead = (
                claim.get("host") == _hostname()
                and isinstance(claim.get("pid"), int)
                and not _pid_alive(claim["pid"])
            )
            heartbeat = claim.get("heartbeat")
            expired = (
                not isinstance(heartbeat, (int, float))
                or now - heartbeat > lease_s
            )
            if dead or expired:
                path.unlink(missing_ok=True)
                removed.append(path)
        for path in self.workers_dir.glob("*.json"):
            try:
                info = self._read_json(path)
            except SpoolError:
                continue
            if info is None:
                continue
            if info.get("host") == _hostname() and isinstance(
                info.get("pid"), int
            ):
                dead = not _pid_alive(info["pid"])
            else:
                heartbeat = info.get("heartbeat")
                dead = (
                    not isinstance(heartbeat, (int, float))
                    or now - heartbeat > lease_s
                )
            if dead:
                path.unlink(missing_ok=True)
                removed.append(path)
        for directory in (
            self.root,
            self.jobs_dir,
            self.claims_dir,
            self.results_dir,
            self.workers_dir,
        ):
            for path in directory.glob("*.tmp-*"):
                pid_str = path.name.rpartition("tmp-")[2]
                if pid_str.isdigit() and _pid_alive(int(pid_str)):
                    continue
                path.unlink(missing_ok=True)
                removed.append(path)
        return removed

    # -- stop sentinel ---------------------------------------------------
    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    def request_stop(self) -> None:
        self.stop_path.touch()

    def clear_stop(self) -> None:
        self.stop_path.unlink(missing_ok=True)


def request_stop(spool: Union[str, Path, SweepSpool]) -> None:
    """Write the stop sentinel: workers finish their job and exit."""
    (spool if isinstance(spool, SweepSpool) else SweepSpool(spool)).ensure().request_stop()


def clear_stop(spool: Union[str, Path, SweepSpool]) -> None:
    """Remove the stop sentinel so new workers can be started."""
    (spool if isinstance(spool, SweepSpool) else SweepSpool(spool)).ensure().clear_stop()


# ----------------------------------------------------------------------
# worker loop (python -m repro.worker SPOOL)
# ----------------------------------------------------------------------
def _execute_job(
    spool: SweepSpool, payload: dict, lease_s: float
) -> None:
    """Run one claimed job's tasks and write the result file.

    The claim heartbeat is refreshed from a daemon thread while tasks
    compute, so a long point does not look abandoned.  The first
    failing task aborts the rest of its job and reports that task's
    index — the same chunk semantics as
    :func:`~repro.sim.backends._run_chunk`.
    """
    from repro.sim.sweep import _execute_task

    job_id = payload["job_id"]
    done = threading.Event()
    interval = max(0.05, min(lease_s / 4.0, 5.0))

    def _beat() -> None:
        while not done.wait(interval):
            spool.refresh_claim(payload)
            spool.touch_worker()

    beater = threading.Thread(
        target=_beat, name=f"spool-heartbeat-{job_id}", daemon=True
    )
    beater.start()
    results: List[dict] = []
    failure: Optional[Tuple[Optional[int], str]] = None
    try:
        for entry in payload.get("tasks", []):
            index = entry.get("index")
            try:
                task = decode_task(entry, where=f"job {job_id}")
                result = _execute_task(task)
                results.append(
                    {"index": int(index), "result": result.to_dict()}
                )
            except Exception as exc:
                failure = (
                    int(index) if isinstance(index, int) else None,
                    f"{type(exc).__name__}: {exc}",
                )
                break
    finally:
        done.set()
        beater.join()
    out: dict = {
        "schema_version": SPOOL_SCHEMA_VERSION,
        "run_id": payload.get("run_id"),
        "job_id": job_id,
        "worker": {"pid": os.getpid(), "host": _hostname()},
    }
    if failure is None:
        out["status"] = "ok"
        out["results"] = results
    else:
        out["status"] = "error"
        out["index"] = failure[0]
        out["error"] = failure[1]
    spool.write_result(job_id, out)
    spool.release_claim(job_id)


def run_worker(
    spool: Union[str, Path, SweepSpool],
    poll_interval_s: float = 0.2,
    lease_s: float = DEFAULT_LEASE_S,
    max_jobs: Optional[int] = None,
    stop_when_idle: bool = False,
) -> int:
    """Pull-and-execute loop: the body of ``python -m repro.worker``.

    Claims pending jobs oldest-first, executes them with the shared
    per-process predictor memo (many jobs sharing a profiling
    signature train once per worker), and loops until the spool's
    ``stop`` sentinel appears, ``max_jobs`` jobs have run, or —
    with ``stop_when_idle`` — the queue drains.  Returns the number
    of jobs executed.
    """
    if poll_interval_s <= 0:
        raise ConfigurationError(
            f"poll_interval_s must be positive, got {poll_interval_s}"
        )
    if lease_s <= 0:
        raise ConfigurationError(f"lease_s must be positive, got {lease_s}")
    spool = (
        spool if isinstance(spool, SweepSpool) else SweepSpool(spool)
    ).ensure()
    spool.register_worker()
    executed = 0
    last_presence = time.monotonic()
    try:
        while not spool.stop_requested():
            if max_jobs is not None and executed >= max_jobs:
                break
            claimed = None
            for job_id in spool.pending_jobs():
                claimed = spool.claim(job_id)
                if claimed is not None:
                    break
            if claimed is None:
                if stop_when_idle:
                    break
                if time.monotonic() - last_presence > lease_s / 4.0:
                    spool.touch_worker()
                    last_presence = time.monotonic()
                time.sleep(poll_interval_s)
                continue
            _execute_job(spool, claimed, lease_s)
            executed += 1
    finally:
        spool.unregister_worker()
    return executed


# ----------------------------------------------------------------------
# the coordinator-side backend
# ----------------------------------------------------------------------
class DistributedBackend(ExecutionBackend):
    """Sweep execution over spool workers (see the module docstring).

    Parameters
    ----------
    spool:
        The shared spool directory (created if missing).
    chunk_size:
        Sweep points per job file; amortises the per-job dispatch tax
        (:data:`~repro.sim.backends.NETWORK_DISPATCH_TAX_S`) the way
        process chunking amortises spawn.
    wait_workers:
        Block until this many live workers are registered before
        dispatching (0 = dispatch immediately).  Waiting longer than
        ``wait_timeout_s`` raises :class:`~repro.errors.SpoolError` —
        better than queueing a sweep nobody will run.
    lease_s:
        Heartbeat lease; a claim silent for longer is reclaimed.
    poll_interval_s:
        Coordinator/result-tail poll cadence.
    wait_timeout_s:
        Also the no-live-worker watchdog while tailing: with zero live
        workers and no progress for this long, the coordinator raises
        instead of waiting forever.
    """

    name = "distributed"

    def __init__(
        self,
        spool: Union[str, Path, SweepSpool],
        chunk_size: int = 1,
        wait_workers: int = 0,
        lease_s: float = DEFAULT_LEASE_S,
        poll_interval_s: float = 0.1,
        wait_timeout_s: float = 120.0,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk size must be >= 1, got {chunk_size}"
            )
        if wait_workers < 0:
            raise ConfigurationError(
                f"wait_workers must be >= 0, got {wait_workers}"
            )
        if lease_s <= 0 or poll_interval_s <= 0 or wait_timeout_s <= 0:
            raise ConfigurationError(
                "lease_s, poll_interval_s and wait_timeout_s must be positive"
            )
        self.spool = (
            spool if isinstance(spool, SweepSpool) else SweepSpool(spool)
        )
        self.chunk_size = chunk_size
        self.wait_workers = wait_workers
        self.lease_s = lease_s
        self.poll_interval_s = poll_interval_s
        self.wait_timeout_s = wait_timeout_s
        #: Stale claims reclaimed during the last run (observability).
        self.reclaimed = 0

    def __repr__(self) -> str:
        return (
            f"DistributedBackend(spool={str(self.spool.root)!r}, "
            f"chunk_size={self.chunk_size})"
        )

    def _wait_for_workers(self) -> None:
        deadline = time.monotonic() + self.wait_timeout_s
        while self.spool.live_workers(self.lease_s) < self.wait_workers:
            if time.monotonic() >= deadline:
                raise SpoolError(
                    f"waited {self.wait_timeout_s:g}s for "
                    f"{self.wait_workers} live worker(s) on spool "
                    f"{self.spool.root}, found "
                    f"{self.spool.live_workers(self.lease_s)} — start "
                    "workers with: python -m repro.worker "
                    f"{self.spool.root}",
                    path=self.spool.root,
                )
            time.sleep(self.poll_interval_s)

    def imap_unordered(
        self, fn: Callable, items: Sequence
    ) -> Iterator[Tuple[int, Any]]:
        from repro.sim.runner import PolicyResult
        from repro.sim.sweep import _execute_task

        if fn is not _execute_task:
            raise ConfigurationError(
                "the distributed backend ships (config, policy) sweep "
                "tasks as JSON job files; it cannot run arbitrary "
                f"callables (got {getattr(fn, '__name__', fn)!r}) — use "
                "the serial/thread/process backends for generic maps"
            )
        items = list(items)
        if not items:
            return
        spool = self.spool.ensure()
        if self.wait_workers:
            self._wait_for_workers()
        run_id = _new_run_id()
        self.reclaimed = 0
        outstanding: set = set()
        for chunk_no, chunk in enumerate(
            chunked(list(enumerate(items)), self.chunk_size)
        ):
            job_id = f"{run_id}-{chunk_no:06d}"
            spool.submit_job(
                job_id,
                run_id,
                [encode_task(index, task) for index, task in chunk],
            )
            outstanding.add(job_id)

        failure: Optional[WorkerTaskError] = None
        last_progress = time.monotonic()
        try:
            while outstanding and failure is None:
                progressed = False
                for job_id in sorted(outstanding):
                    payload = spool.read_result(job_id)
                    if payload is None:
                        continue
                    outstanding.discard(job_id)
                    spool.consume_result(job_id)
                    progressed = True
                    if payload.get("status") == "ok":
                        for entry in payload.get("results", []):
                            yield (
                                int(entry["index"]),
                                PolicyResult.from_dict(entry["result"]),
                            )
                    else:
                        index = payload.get("index")
                        worker = payload.get("worker") or {}
                        failure = WorkerTaskError(
                            f"task {index} raised in spool worker "
                            f"{worker.get('host')}:{worker.get('pid')}: "
                            f"{payload.get('error', 'unknown error')}",
                            index=index if isinstance(index, int) else None,
                        )
                        break
                if failure is not None or not outstanding:
                    break
                if progressed:
                    last_progress = time.monotonic()
                    continue
                if spool.reclaim_stale(run_id, self.lease_s):
                    self.reclaimed += 1
                    last_progress = time.monotonic()
                    continue
                if (
                    spool.live_workers(self.lease_s) == 0
                    and time.monotonic() - last_progress > self.wait_timeout_s
                ):
                    raise SpoolError(
                        f"no live workers on spool {spool.root} and no "
                        f"progress for {self.wait_timeout_s:g}s "
                        f"({len(outstanding)} job(s) outstanding) — start "
                        f"workers with: python -m repro.worker {spool.root}",
                        path=spool.root,
                    )
                time.sleep(self.poll_interval_s)
        finally:
            # Success leaves nothing behind; failure (or the caller
            # abandoning the generator) withdraws unclaimed jobs so
            # workers stop picking up a cancelled run.
            spool.cleanup_run(run_id)
        if failure is not None:
            raise failure


_register_builtin_codec_classes()
