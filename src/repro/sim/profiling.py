"""Profiling runs that train the performance model (paper §VI-B).

The paper's setup: "we ran each searching component of the service on a
VM with 1 core and 1 GB memory, and used another VM with 4 core and 4 GB
memory co-located on the same node to run a Hadoop or Spark job of
different input sizes.  In each test, we trained the regression models
based on the historical running information."

:func:`profile_component` reproduces one such campaign for a
representative component: for each *condition* (a set of co-located
batch jobs), it measures — through the noisy monitor — the contention
vector and the mean observed service time over a window of simulated
requests, and accumulates (U, x̄) training pairs plus per-window SCV
estimates.  §VI-D's homogeneity argument means one campaign per
component class suffices for the whole service.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.cluster.node import Node, NodeCapacity
from repro.errors import ExperimentError
from repro.interference.ground_truth import InterferenceModel
from repro.model.predictor import TrainedPredictor
from repro.model.training import TrainingSet, train_combined_model
from repro.monitoring.monitor import MonitorConfig, OnlineMonitor
from repro.service.component import Component, ComponentClass
from repro.service.service import OnlineService
from repro.units import gb, mb
from repro.workloads.batch import BatchJob, BatchJobSpec

__all__ = [
    "ProfilingConfig",
    "ProfilingResult",
    "observe_condition",
    "paper_fig5_conditions",
    "mixed_conditions",
    "profile_component",
    "train_predictor_for_service",
]


@dataclass(frozen=True)
class ProfilingConfig:
    """How each profiling condition is observed."""

    window_s: float = 60.0
    request_rate: float = 50.0
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    repetitions: int = 3

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.request_rate <= 0:
            raise ExperimentError("window_s and request_rate must be positive")
        if self.repetitions < 1:
            raise ExperimentError("repetitions must be >= 1")


@dataclass
class ProfilingResult:
    """Training data for one component class."""

    training: TrainingSet
    scv_estimate: float
    conditions_observed: int


def paper_fig5_conditions(
    n_hadoop_sizes: int = 20,
    n_spark_sizes: int = 10,
) -> List[List[BatchJobSpec]]:
    """The Fig. 5 grid: Hadoop jobs at 20 sizes from 50 MB to 4 GB and
    Spark jobs at 10 sizes from 200 MB to 7 GB, one co-runner each."""
    if n_hadoop_sizes < 1 or n_spark_sizes < 1:
        raise ExperimentError("size counts must be >= 1")
    conditions: List[List[BatchJobSpec]] = []
    hadoop_sizes = np.geomspace(mb(50), gb(4), n_hadoop_sizes)
    spark_sizes = np.geomspace(mb(200), gb(7), n_spark_sizes)
    for name in ("hadoop.bayes", "hadoop.wordcount", "hadoop.pageindex"):
        for size in hadoop_sizes:
            conditions.append([BatchJobSpec.of(name, float(size))])
    for name in ("spark.bayes", "spark.wordcount", "spark.sort"):
        for size in spark_sizes:
            conditions.append([BatchJobSpec.of(name, float(size))])
    return conditions


def mixed_conditions(
    n_conditions: int,
    rng: np.random.Generator,
    max_jobs: int = 3,
    size_range_mb: tuple = (mb(10), gb(8)),
) -> List[List[BatchJobSpec]]:
    """Random multi-job conditions covering the contention space the
    scheduler will actually encounter (0 to ``max_jobs`` co-runners)."""
    from repro.workloads.profiles import ALL_PROFILES

    if n_conditions < 1:
        raise ExperimentError("n_conditions must be >= 1")
    names = sorted(ALL_PROFILES)
    lo, hi = size_range_mb
    conditions = []
    for _ in range(n_conditions):
        n_jobs = int(rng.integers(0, max_jobs + 1))
        condition = [
            BatchJobSpec.of(
                names[int(rng.integers(len(names)))],
                float(np.exp(rng.uniform(np.log(lo), np.log(hi)))),
            )
            for _ in range(n_jobs)
        ]
        conditions.append(condition)
    return conditions


def observe_condition(
    representative: Component,
    specs: Sequence[BatchJobSpec],
    interference: InterferenceModel,
    config: ProfilingConfig,
    rng: np.random.Generator,
    condition_tag: str = "cond",
) -> List[tuple]:
    """Observe one co-location condition for ``repetitions`` windows.

    Builds a fresh single-node testbed (the paper's §VI-B setup: the
    component's VM plus the co-runner job's VM on one node), and for
    each window returns ``(observed contention, observed mean service
    time, observed SCV)`` — everything measured through the noisy
    monitor and a finite number of simulated requests, never from
    ground truth directly.
    """
    node = Node(
        f"prof-{representative.cls.value}-{condition_tag}",
        capacity=NodeCapacity(machine_slots=2 + len(specs)),
    )
    cluster = Cluster([node])
    cluster.place(representative, node, MachineKind.SERVICE)
    for s_idx, spec in enumerate(specs):
        job = BatchJob(
            spec=spec,
            arrival_time=0.0,
            duration=max(1.0, config.repetitions * config.window_s),
            name=f"prof-job-{condition_tag}-{s_idx}",
        )
        cluster.place(job, node, MachineKind.BATCH)
    monitor = OnlineMonitor(config.monitor, cluster, [representative], rng)
    truth_u = cluster.contention_for(representative)
    n_requests = max(2, int(config.request_rate * config.window_s))
    windows = []
    for _ in range(config.repetitions):
        observed_u = monitor.observe_window(representative, config.window_s)
        # True service distribution with one per-window drift draw of
        # the interference model's irreducible noise.
        infl = interference.noisy_inflation(representative.cls, truth_u, rng)
        dist = representative.base_service.scaled(infl)
        samples = dist.sample(rng, n_requests)
        x_bar = float(np.mean(samples))
        scv = float(np.var(samples)) / (x_bar * x_bar)
        windows.append((observed_u, x_bar, scv))
    cluster.remove(representative)
    return windows


def profile_component(
    representative: Component,
    conditions: Sequence[Sequence[BatchJobSpec]],
    interference: InterferenceModel,
    config: ProfilingConfig,
    rng: np.random.Generator,
) -> ProfilingResult:
    """Run one profiling campaign; returns training data + SCV estimate.

    Each condition builds a fresh single-node testbed, co-locates the
    representative with the condition's batch jobs, and observes
    (monitored contention, mean observed service time) over
    ``repetitions`` windows.
    """
    if not conditions:
        raise ExperimentError("need at least one profiling condition")
    training = TrainingSet()
    scv_estimates: List[float] = []
    for cond_idx, specs in enumerate(conditions):
        for observed_u, x_bar, scv in observe_condition(
            representative,
            specs,
            interference,
            config,
            rng,
            condition_tag=str(cond_idx),
        ):
            training.add(observed_u, x_bar)
            scv_estimates.append(scv)
    return ProfilingResult(
        training=training,
        scv_estimate=float(np.mean(scv_estimates)),
        conditions_observed=len(conditions),
    )


def train_predictor_for_service(
    service: OnlineService,
    interference: InterferenceModel,
    rng: np.random.Generator,
    config: Optional[ProfilingConfig] = None,
    conditions: Optional[Sequence[Sequence[BatchJobSpec]]] = None,
    n_mixed_conditions: int = 60,
) -> TrainedPredictor:
    """Profile one representative per class (§VI-D) and fit Eq. 1 models."""
    cfg = config or ProfilingConfig()
    conds = (
        list(conditions)
        if conditions is not None
        else mixed_conditions(n_mixed_conditions, rng)
    )
    models: Dict[ComponentClass, object] = {}
    scvs: Dict[ComponentClass, float] = {}
    for cls in service.classes():
        rep = service.representative(cls)
        # Profile a detached clone so the live component's placement is
        # untouched.
        clone = Component(
            name=f"{rep.name}-profiling-clone",
            cls=rep.cls,
            base_service=rep.base_service,
            demand=rep.demand,
        )
        result = profile_component(clone, conds, interference, cfg, rng)
        model, _ = train_combined_model(result.training)
        models[cls] = model
        scvs[cls] = result.scv_estimate
    return TrainedPredictor(models, scvs)
