"""Execution backends: one seam, three ways to run independent tasks.

The sweep subsystem (:mod:`repro.sim.sweep`) evaluates grids of
mutually independent points.  *How* those points execute — inline,
on in-process threads, or on spawned worker processes — is a
deployment decision, not a correctness one (every point is
deterministic given its config), so it lives behind one interface:

:class:`SerialBackend`
    Runs tasks inline, in submission order.  Zero overhead, exact
    ground truth; what ``workers=1`` always meant.

:class:`ThreadBackend`
    A :class:`~concurrent.futures.ThreadPoolExecutor` inside the
    calling process.  Threads share the interpreter, every imported
    module and — crucially for sweeps — the per-process predictor
    memo, so a grid whose points share a profiling signature trains
    once *total* instead of once per worker.  The GIL serialises the
    pure-Python simulation work, so threads buy little parallel
    compute — what they buy is *zero start-up cost*: no interpreter
    spawn, no numpy re-import, no cold memo.  On small grids that
    start-up tax dominates, which is why the auto rule below prefers
    threads there.

:class:`ProcessBackend`
    A spawn-context :class:`~concurrent.futures.ProcessPoolExecutor`
    (spawn is fork-safety: no inherited locks or numpy state).  Every
    worker pays an interpreter + numpy import and trains its own
    predictor memo, but workers then compute in true parallel — the
    right trade on grids with many expensive points.  Optional
    *chunking* ships batches of tasks per submission so the per-task
    pickling/dispatch overhead is amortised across each chunk.

:class:`~repro.sim.distributed.DistributedBackend`
    Sweep points run on worker processes on *other hosts*, coordinated
    through a shared spool directory of atomically written job files
    (claim-rename + heartbeat-lease protocol; see
    :mod:`repro.sim.distributed`).  Each job pays a per-dispatch tax —
    serialise, write, poll, read back — budgeted at
    :data:`NETWORK_DISPATCH_TAX_S` (sized for NFS-style spools;
    milliseconds on a local disk), so it beats processes
    exactly when the fleet's extra cores outweigh that tax: expensive
    points (≥ :data:`DISTRIBUTED_POINT_CUTOFF_S`) and more workers
    than the coordinator has cores.  Only sweep tasks travel (the job
    codec ships frozen configs, not pickled closures); generic maps
    stay on the local backends.

Failure contract (all backends)
-------------------------------
A task that raises does not poison its peers: the backend wraps the
exception in :class:`~repro.errors.WorkerTaskError` carrying the
task's index, cancels all not-yet-started work, and re-raises after
yielding every already-finished success — so a caller persisting
results as they arrive (the sweep cache) keeps everything that
completed before the failure.  Tasks already running when a peer
fails are allowed to finish but their results are discarded.

Choosing a backend
------------------
- ``serial`` — debugging, tiny grids, and anything timing-sensitive.
- ``thread`` — small pending sets (≲ :data:`THREAD_AUTO_THRESHOLD`
  points) of *cheap* points, resumed sweeps with a handful of missing
  cells, and grids dominated by predictor training (the memo is
  shared).
- ``process`` — grids of expensive points on multi-core hosts (the
  GIL serialises threads regardless of batch size, so point cost —
  not count — is what matters); raise ``chunk_size`` above 1 when
  single points are cheap relative to dispatch.

:func:`auto_backend` encodes exactly that rule — **cost-aware** when
the caller supplies an expected per-point cost (``est_cost_s``): a
point expected to outlast the ~:data:`PROCESS_SPAWN_TAX_S` per-worker
spawn tax routes to processes even on a tiny pending set, because
GIL-serialised threads would run the batch at serial speed while
spawn's start-up cost is amortised by the very first point.  Without
an estimate the rule falls back to the pending-point count.  The same
estimate derives an automatic ``chunk_size`` (enough points per chunk
to amortise the spawn tax).  The sweep runner estimates cost from its
spec — or from measured cached timings — and the CLI uses it unless a
backend is named explicitly.
"""

from __future__ import annotations

import multiprocessing
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterator, List, Sequence, Tuple

from repro.errors import ConfigurationError, WorkerTaskError

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKEND_NAMES",
    "THREAD_AUTO_THRESHOLD",
    "PROCESS_SPAWN_TAX_S",
    "EXPENSIVE_POINT_CUTOFF_S",
    "NETWORK_DISPATCH_TAX_S",
    "DISTRIBUTED_POINT_CUTOFF_S",
    "auto_chunk_size",
    "auto_backend",
    "backend_from_name",
    "resolve_backend",
    "cpu_bound_backend",
    "io_bound_backend",
]

#: The names :func:`backend_from_name` accepts (the CLI adds ``auto``).
#: ``distributed`` additionally needs a spool directory.
BACKEND_NAMES = ("serial", "thread", "process", "distributed")

#: Pending sets at or below this size auto-route to :class:`ThreadBackend`
#: *when no cost estimate says otherwise*: a spawn worker pays roughly an
#: interpreter + numpy import per process, which on a small grid of cheap
#: points costs more than it saves.
THREAD_AUTO_THRESHOLD = 8

#: Approximate per-worker start-up cost of the spawn process pool
#: (interpreter + numpy import + cold predictor memo), in seconds —
#: the tax the cost-aware auto rule weighs point cost against.
PROCESS_SPAWN_TAX_S = 1.5

#: Expected per-point cost above which ``auto`` routes to processes
#: regardless of the pending-point count: one such point already
#: outlasts its worker's spawn tax, and the GIL would serialise
#: threads on pure-compute points anyway.
EXPENSIVE_POINT_CUTOFF_S = 2.0

#: Approximate per-*job* dispatch cost of the spool protocol (encode
#: the tasks, atomic job write, worker claim-rename, result write,
#: coordinator poll + decode), in seconds.  Calibrated the way
#: :data:`PROCESS_SPAWN_TAX_S` was — measured by
#: ``benchmarks/bench_sweep_distributed.py`` and persisted to
#: ``BENCH_sweep_distributed.json``: the raw round-trip on a local
#: filesystem measures ~0.002 s per job, but the constant is sized for
#: the deployment the backend exists for — spools on *network*
#: filesystems, where each step is an NFS round-trip and the
#: coordinator's poll cadence rides on top.  Feeds the distributed
#: ``auto_chunk_size``.
NETWORK_DISPATCH_TAX_S = 0.05

#: Expected per-point cost above which ``auto`` routes to the spool
#: when one is configured.  Deliberately the same bar as
#: :data:`EXPENSIVE_POINT_CUTOFF_S`: a point expensive enough that
#: spawn processes beat threads is also expensive enough to dwarf the
#: (much smaller) per-job dispatch tax, and cheap points are better
#: served locally than shipped across a filesystem.
DISTRIBUTED_POINT_CUTOFF_S = EXPENSIVE_POINT_CUTOFF_S


def _wrap_failure(index: int, exc: BaseException) -> WorkerTaskError:
    """One uniform wrapper so every backend reports failures alike."""
    return WorkerTaskError(
        f"task {index} raised {type(exc).__name__}: {exc}", index=index
    )


def _run_unit(fn: Callable, index: int, item: Any) -> List[Tuple[int, Any]]:
    """Run one task; uniform ``[(index, result)]`` / wrapped-failure shape."""
    try:
        return [(index, fn(item))]
    except WorkerTaskError:
        raise
    except Exception as exc:
        raise _wrap_failure(index, exc) from exc


def _run_chunk(payload: Tuple[Callable, List[Tuple[int, Any]]]) -> List[Tuple[int, Any]]:
    """Run one chunk of tasks in a worker (module-level: spawn pickles it).

    Results accumulate per item; the first failing item aborts the rest
    of its chunk and raises with that item's index (the earlier items'
    results are recomputed on retry — chunking trades that slack for
    dispatch amortisation).
    """
    fn, chunk = payload
    out: List[Tuple[int, Any]] = []
    for index, item in chunk:
        try:
            out.append((index, fn(item)))
        except Exception as exc:
            raise _wrap_failure(index, exc) from exc
    return out


def chunked(items: Sequence, size: int) -> List[list]:
    """Split ``items`` into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ConfigurationError(f"chunk size must be >= 1, got {size}")
    items = list(items)
    return [items[i : i + size] for i in range(0, len(items), size)]


class ExecutionBackend(ABC):
    """How a batch of independent tasks runs.

    Implementations provide :meth:`imap_unordered`; :meth:`map` is
    derived.  Backends are cheap, stateless handles — each call builds
    (and tears down) its own executor, so one backend instance may be
    reused across sweeps.
    """

    #: Short name used by factories, CLIs and benchmark records.
    name: str = "?"

    @abstractmethod
    def imap_unordered(
        self, fn: Callable, items: Sequence
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(index, fn(item))`` pairs in completion order.

        On a task failure: every already-finished success is yielded
        first, outstanding tasks are cancelled, and a
        :class:`~repro.errors.WorkerTaskError` carrying the failing
        index is raised.
        """

    def map(self, fn: Callable, items: Sequence) -> list:
        """Order-preserving map over ``items`` (results in input order)."""
        items = list(items)
        out = [None] * len(items)
        for index, result in self.imap_unordered(fn, items):
            out[index] = result
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Inline execution in the calling thread — the ground-truth path."""

    name = "serial"

    def imap_unordered(self, fn, items):
        for index, item in enumerate(items):
            yield from _run_unit(fn, index, item)


class _PoolBackend(ExecutionBackend):
    """Shared submit/consume loop for the executor-based backends."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def _executor(self, n_tasks: int):
        raise NotImplementedError

    def _submit(self, pool, fn, items) -> list:
        """Submit every task; returns the list of futures."""
        raise NotImplementedError

    def imap_unordered(self, fn, items):
        items = list(items)
        if not items:
            return
        with self._executor(len(items)) as pool:
            outstanding = set(self._submit(pool, fn, items))
            while outstanding:
                finished, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                failure = None
                for future in finished:
                    try:
                        pairs = future.result()
                    except WorkerTaskError as exc:
                        failure = failure or exc
                    except Exception as exc:  # pragma: no cover - belt
                        failure = failure or _wrap_failure(-1, exc)
                    else:
                        yield from pairs
                if failure is not None:
                    # Cancel everything not yet running; peers already
                    # running finish (their results are discarded) when
                    # the executor's context exits.
                    for future in outstanding:
                        future.cancel()
                    raise failure

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadBackend(_PoolBackend):
    """In-process :class:`~concurrent.futures.ThreadPoolExecutor` workers.

    Shares the interpreter (and the sweep's predictor memo) with the
    caller: no spawn cost, no re-imports, training once per profiling
    signature.  The GIL means little parallel *compute* — use it where
    start-up cost dominates (small or mostly-cached grids).
    """

    name = "thread"

    def _executor(self, n_tasks: int):
        return ThreadPoolExecutor(
            max_workers=min(self.workers, n_tasks),
            thread_name_prefix="sweep-worker",
        )

    def _submit(self, pool, fn, items):
        return [
            pool.submit(_run_unit, fn, index, item)
            for index, item in enumerate(items)
        ]


class ProcessBackend(_PoolBackend):
    """Spawn-context :class:`~concurrent.futures.ProcessPoolExecutor` workers.

    ``fn`` and every item must be picklable (spawn re-imports the
    defining module in each worker).  ``chunk_size`` ships batches of
    tasks per submission: each worker process amortises its interpreter
    + numpy import (and its cold predictor memo) across a whole chunk
    instead of a single point.
    """

    name = "process"

    def __init__(
        self, workers: int, mp_context: str = "spawn", chunk_size: int = 1
    ) -> None:
        super().__init__(workers)
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk size must be >= 1, got {chunk_size}"
            )
        self.mp_context = mp_context
        self.chunk_size = chunk_size

    def _executor(self, n_tasks: int):
        n_chunks = -(-n_tasks // self.chunk_size)  # ceil division
        return ProcessPoolExecutor(
            max_workers=min(self.workers, n_chunks),
            mp_context=multiprocessing.get_context(self.mp_context),
        )

    def _submit(self, pool, fn, items):
        return [
            pool.submit(_run_chunk, (fn, chunk))
            for chunk in chunked(list(enumerate(items)), self.chunk_size)
        ]

    def __repr__(self) -> str:
        return (
            f"ProcessBackend(workers={self.workers}, "
            f"chunk_size={self.chunk_size})"
        )


def backend_from_name(
    name: str,
    workers: int = 1,
    mp_context: str = "spawn",
    chunk_size: int | None = None,
    spool=None,
    wait_workers: int = 0,
) -> ExecutionBackend:
    """Build a backend from its CLI name.

    ``chunk_size`` shapes :class:`ProcessBackend` and the distributed
    backend (serial and thread execution have no per-dispatch cost to
    amortise); ``spool``/``wait_workers`` configure ``distributed``
    (a spool is required for it) and are ignored by the local names —
    one CLI flag set covers every backend choice.
    """
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers)
    if name == "process":
        return ProcessBackend(
            workers, mp_context=mp_context, chunk_size=chunk_size or 1
        )
    if name == "distributed":
        if spool is None:
            raise ConfigurationError(
                "the distributed backend needs a spool directory "
                "(--spool DIR / spool=) shared with its workers"
            )
        # Late import: distributed layers on sweep, which imports this
        # module — resolving it at call time keeps the layering acyclic.
        from repro.sim.distributed import DistributedBackend

        return DistributedBackend(
            spool, chunk_size=chunk_size or 1, wait_workers=wait_workers
        )
    raise ConfigurationError(
        f"unknown execution backend {name!r} "
        f"(expected one of {', '.join(BACKEND_NAMES)})"
    )


def cpu_bound_backend(
    workers: int,
    mp_context: str = "spawn",
    chunk_size: int | None = None,
) -> ExecutionBackend:
    """Explicit rule for batches known to be expensive pure-Python compute.

    Spawn processes when parallel, inline otherwise.  Mostly superseded
    by the cost-aware :func:`auto_backend` (fig5/fig7 now pass their
    cost estimates through ``auto`` instead of special-casing this);
    kept for callers that *know* their batch is CPU-bound and have no
    estimate to offer.
    """
    if workers > 1:
        return ProcessBackend(
            workers, mp_context=mp_context, chunk_size=chunk_size or 1
        )
    return SerialBackend()


def io_bound_backend(workers: int) -> ExecutionBackend:
    """Default rule for batches of small I/O-bound tasks.

    Threads overlap the waiting without any spawn cost; a process pool
    would pay an interpreter + numpy import per worker to read small
    files.  The ``aggregate`` CLI uses this for cache point loads.
    """
    if workers > 1:
        return ThreadBackend(workers)
    return SerialBackend()


def resolve_backend(
    backend,
    workers: int,
    n_tasks: int,
    mp_context: str = "spawn",
    chunk_size: int | None = None,
    est_cost_s: float | None = None,
    spool=None,
    wait_workers: int = 0,
) -> ExecutionBackend:
    """Normalise a backend argument into an :class:`ExecutionBackend`.

    ``backend`` may be a ready instance (returned as-is), a name
    accepted by :func:`backend_from_name`, or ``None``/``"auto"`` for
    the :func:`auto_backend` rule (``est_cost_s`` — the expected
    per-task cost — makes that rule cost-aware; it is ignored for
    explicitly named backends).  A ``spool`` makes ``auto`` consider
    the distributed backend and is required for the explicit
    ``"distributed"`` name.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None or backend == "auto":
        return auto_backend(
            workers,
            n_tasks,
            mp_context=mp_context,
            chunk_size=chunk_size,
            est_cost_s=est_cost_s,
            spool=spool,
            wait_workers=wait_workers,
        )
    return backend_from_name(
        backend,
        workers=workers,
        mp_context=mp_context,
        chunk_size=chunk_size,
        spool=spool,
        wait_workers=wait_workers,
    )


def auto_chunk_size(
    n_tasks: int,
    workers: int,
    est_cost_s: float,
    tax_s: float = PROCESS_SPAWN_TAX_S,
) -> int:
    """Points per task that amortise a per-dispatch tax.

    Cheap points are batched until one chunk's expected compute is at
    least ``tax_s`` (the spawn tax for process chunks, the much smaller
    :data:`NETWORK_DISPATCH_TAX_S` for spool jobs); chunks never exceed
    an even ``n_tasks / workers`` split (bigger chunks would idle
    workers), and expensive points keep one-point tasks for the
    finest-grained failure/caching behaviour.
    """
    if n_tasks < 1 or workers < 1:
        raise ConfigurationError("n_tasks and workers must be >= 1")
    if est_cost_s <= 0:
        return 1
    amortising = int(-(-tax_s // est_cost_s))  # ceil
    even_split = int(-(-n_tasks // workers))
    return max(1, min(amortising, even_split))


def auto_backend(
    workers: int,
    n_tasks: int,
    mp_context: str = "spawn",
    chunk_size: int | None = None,
    est_cost_s: float | None = None,
    spool=None,
    wait_workers: int = 0,
) -> ExecutionBackend:
    """The default backend rule (see the module docstring's guidance).

    ``workers == 1`` or at most one task → :class:`SerialBackend`.
    Otherwise the rule is **cost-aware** when ``est_cost_s`` (expected
    per-task compute, seconds — from the sweep spec or measured cached
    timings) is given: tasks expected to outlast the
    :data:`EXPENSIVE_POINT_CUTOFF_S` ≈ spawn-tax threshold route to
    spawn processes *whatever the count* — the GIL would serialise
    threads on expensive pure-compute points, which is exactly the
    small-expensive-grid trap the count-only rule used to fall into —
    with ``chunk_size`` derived via :func:`auto_chunk_size` when not
    set explicitly.  Cheap or unestimated tasks keep the count rule:
    small sets (≤ :data:`THREAD_AUTO_THRESHOLD`) on in-process threads,
    whose zero start-up cost beats spawn there; bigger sets on spawn
    processes.

    With a ``spool`` configured, points expensive enough to amortise
    the per-job dispatch tax (≥ :data:`DISTRIBUTED_POINT_CUTOFF_S`)
    route to the spool's worker fleet instead of local processes —
    the fleet's core count is unbounded where the local host's is not
    — with a ``chunk_size`` amortising
    :data:`NETWORK_DISPATCH_TAX_S` per job.  Cheap points never
    travel: their dispatch tax would rival their compute, so they keep
    the local thread/process rule even when a spool is offered.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if est_cost_s is not None and est_cost_s < 0:
        raise ConfigurationError(
            f"est_cost_s must be >= 0, got {est_cost_s}"
        )
    if spool is not None and (
        n_tasks > 1
        and est_cost_s is not None
        and est_cost_s >= DISTRIBUTED_POINT_CUTOFF_S
    ):
        from repro.sim.distributed import DistributedBackend

        fleet = max(workers, wait_workers, 1)
        return DistributedBackend(
            spool,
            chunk_size=chunk_size
            or auto_chunk_size(
                n_tasks, fleet, est_cost_s, tax_s=NETWORK_DISPATCH_TAX_S
            ),
            wait_workers=wait_workers,
        )
    if workers == 1 or n_tasks <= 1:
        return SerialBackend()
    if est_cost_s is not None and est_cost_s >= EXPENSIVE_POINT_CUTOFF_S:
        return ProcessBackend(
            workers,
            mp_context=mp_context,
            chunk_size=chunk_size or auto_chunk_size(n_tasks, workers, est_cost_s),
        )
    if n_tasks <= THREAD_AUTO_THRESHOLD:
        return ThreadBackend(workers)
    if chunk_size is None and est_cost_s is not None:
        chunk_size = auto_chunk_size(n_tasks, workers, est_cost_s)
    return ProcessBackend(
        workers, mp_context=mp_context, chunk_size=chunk_size or 1
    )
