"""Latency metrics (paper §VI-A "Metrics").

Two currencies:

1. the 99th-percentile latency of individual components over all
   requests (sub-request sojourns pooled across components);
2. the average overall service latency over all requests.

Percentiles use the *nearest-rank on the empirical sample* convention
(``numpy``'s ``'higher'`` interpolation) so a reported p99 is always an
actually observed latency — the convention tail-latency papers use.

This module is the **shared metric kernel**: every reported percentile
in the package must go through :func:`percentile` (or
:func:`summarize`) so that all drivers, benchmarks and examples agree
on the convention.  The only sanctioned raw ``np.percentile`` calls
outside this module live in :mod:`repro.monitoring.streaming` (which
documents its own estimator) and in policy-internal mechanics that are
not reported metrics (e.g. the reissue timer in
:mod:`repro.sim.queue_sim`).

The streaming estimator layer (:mod:`repro.sim.estimators`) obeys the
same rule: its reservoir quantiles call :func:`percentile` on the kept
sample, so an estimated p99 is still an actually observed latency —
only *which* observations are retained is sampled, with the rank-error
contract documented (and property-tested) in that module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SimulationError

__all__ = ["percentile", "LatencySummary", "summarize", "pool"]


def _ctx(label: str) -> str:
    """Render an optional context label for error messages."""
    return f" ({label})" if label else ""


def percentile(values, q: float, *, label: str = "") -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample.

    ``label`` names the sample in error messages (e.g. ``"interval 3
    pooled component latencies"``) so an empty sample fails
    diagnosably instead of with a bare "empty sample".
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError(f"percentile of an empty sample{_ctx(label)}")
    if not 0 <= q <= 100:
        raise SimulationError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q, method="higher"))


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one latency sample (seconds)."""

    n: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def render(self, label: str = "", unit_ms: bool = True) -> str:
        """One-line human-readable summary."""
        f = 1e3 if unit_ms else 1.0
        u = "ms" if unit_ms else "s"
        head = f"{label}: " if label else ""
        return (
            f"{head}n={self.n} mean={self.mean * f:.2f}{u} "
            f"p50={self.p50 * f:.2f}{u} p95={self.p95 * f:.2f}{u} "
            f"p99={self.p99 * f:.2f}{u} max={self.max * f:.2f}{u}"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (exact float round-trip via ``repr``)."""
        return {
            "n": self.n,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "LatencySummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            n=int(d["n"]),
            mean=float(d["mean"]),
            p50=float(d["p50"]),
            p95=float(d["p95"]),
            p99=float(d["p99"]),
            max=float(d["max"]),
        )


def summarize(values, *, label: str = "") -> LatencySummary:
    """Build a :class:`LatencySummary` from raw latencies."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError(
            f"cannot summarise an empty latency sample{_ctx(label)}"
        )
    if np.any(arr < 0):
        raise SimulationError(f"latencies must be non-negative{_ctx(label)}")
    return LatencySummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        p50=percentile(arr, 50, label=label),
        p95=percentile(arr, 95, label=label),
        p99=percentile(arr, 99, label=label),
        max=float(arr.max()),
    )


def pool(
    samples: Mapping[str, np.ndarray] | Iterable[np.ndarray],
    *,
    label: str = "",
) -> np.ndarray:
    """Concatenate per-component latency arrays into one pooled sample.

    Empty per-component arrays are dropped (a component may simply not
    have been routed to this interval); if *every* array is empty the
    pool is meaningless and an error is raised that names the empty
    components (for mappings) and the caller's context, so an all-idle
    interval fails diagnosably rather than with a bare "nothing to
    pool".
    """
    if isinstance(samples, Mapping):
        named = [(name, np.asarray(a, dtype=np.float64)) for name, a in samples.items()]
    else:
        named = [
            (f"[{i}]", np.asarray(a, dtype=np.float64))
            for i, a in enumerate(samples)
        ]
    arrays = [a for _, a in named if a.size]
    if not arrays:
        if not named:
            raise SimulationError(f"nothing to pool{_ctx(label)}: no samples given")
        empties = [name for name, _ in named]
        shown = ", ".join(empties[:8]) + (", ..." if len(empties) > 8 else "")
        raise SimulationError(
            f"nothing to pool{_ctx(label)}: all {len(named)} samples are "
            f"empty ({shown})"
        )
    return np.concatenate(arrays)
