"""Latency metrics (paper §VI-A "Metrics").

Two currencies:

1. the 99th-percentile latency of individual components over all
   requests (sub-request sojourns pooled across components);
2. the average overall service latency over all requests.

Percentiles use the *nearest-rank on the empirical sample* convention
(``numpy``'s ``'higher'`` interpolation) so a reported p99 is always an
actually observed latency — the convention tail-latency papers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SimulationError

__all__ = ["percentile", "LatencySummary", "summarize", "pool"]


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sample."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise SimulationError(f"q must be in [0, 100], got {q}")
    return float(np.percentile(arr, q, method="higher"))


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one latency sample (seconds)."""

    n: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def render(self, label: str = "", unit_ms: bool = True) -> str:
        """One-line human-readable summary."""
        f = 1e3 if unit_ms else 1.0
        u = "ms" if unit_ms else "s"
        head = f"{label}: " if label else ""
        return (
            f"{head}n={self.n} mean={self.mean * f:.2f}{u} "
            f"p50={self.p50 * f:.2f}{u} p95={self.p95 * f:.2f}{u} "
            f"p99={self.p99 * f:.2f}{u} max={self.max * f:.2f}{u}"
        )


def summarize(values) -> LatencySummary:
    """Build a :class:`LatencySummary` from raw latencies."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise SimulationError("cannot summarise an empty latency sample")
    if np.any(arr < 0):
        raise SimulationError("latencies must be non-negative")
    return LatencySummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        p50=percentile(arr, 50),
        p95=percentile(arr, 95),
        p99=percentile(arr, 99),
        max=float(arr.max()),
    )


def pool(samples: Mapping[str, np.ndarray] | Iterable[np.ndarray]) -> np.ndarray:
    """Concatenate per-component latency arrays into one pooled sample."""
    if isinstance(samples, Mapping):
        arrays = list(samples.values())
    else:
        arrays = list(samples)
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays if np.size(a)]
    if not arrays:
        raise SimulationError("nothing to pool")
    return np.concatenate(arrays)
