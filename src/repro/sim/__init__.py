"""Full-system simulation harness.

- :mod:`repro.sim.metrics` — latency summaries (mean, tail percentiles)
  in the paper's two report currencies: pooled 99th-percentile
  *component* latency and mean *overall service* latency.
- :mod:`repro.sim.queue_sim` — the vectorised per-interval sample-path
  simulator: exact Lindley queues per component, with the Basic, RED-k
  (two-pass imperfect cancellation) and RI-p (conditional reissue)
  routing mechanics; Basic routing also runs chunked (bit-identical)
  or fully streamed for 10⁶–10⁷-request intervals in O(chunk) memory.
- :mod:`repro.sim.estimators` — the streaming latency-estimation layer
  behind those large runs: a mergeable seeded bottom-k reservoir plus
  Welford/Chan moments behind one ``LatencyAccumulator`` seam, with a
  documented rank-error contract.
- :mod:`repro.sim.des_service` — a fine-grained event-driven reference
  simulator used to bound the vectorised path's stage-alignment
  approximation in integration tests.
- :mod:`repro.sim.profiling` — the §VI-B profiling runs that produce
  predictor training data.
- :mod:`repro.sim.runner` — the interval loop tying everything
  together: batch churn → monitoring → prediction → scheduling →
  request simulation (the Fig. 6 engine).
- :mod:`repro.sim.sweep` — parallel sweep execution: policies × rates ×
  seeds grids fanned out over pluggable execution backends, with an
  on-disk JSON memo (plus a human-readable ``manifest.json``) so
  interrupted sweeps resume (bit-identical to the serial path for any
  backend or worker count).
- :mod:`repro.sim.backends` — the execution backends behind the sweep:
  serial (inline), thread (in-process pool sharing the predictor memo —
  no spawn import cost) and process (spawn workers, optionally shipping
  chunks of points per task).
- :mod:`repro.sim.aggregate` — the shared seed-level reduction:
  mean/std/min/max plus Student-t and nearest-rank bootstrap confidence
  intervals over every reported metric, grouped per (policy, rate).
"""

from repro.sim.aggregate import (
    AggregateConfig,
    MetricStats,
    SeedAggregate,
    SweepSummary,
    flatten_metrics,
)
from repro.sim.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.sim.estimators import (
    IntervalAccumulatorSet,
    LatencyAccumulator,
    ReservoirSampler,
)
from repro.sim.metrics import LatencySummary, percentile, pool, summarize
from repro.sim.queue_sim import IntervalOutcome, simulate_service_interval
from repro.sim.runner import PolicyResult, RunnerConfig, ExperimentRunner
from repro.sim.sweep import (
    ParallelSweepRunner,
    SweepCache,
    SweepResult,
    SweepSpec,
    parallel_map,
)

__all__ = [
    "LatencySummary",
    "percentile",
    "pool",
    "summarize",
    "IntervalOutcome",
    "simulate_service_interval",
    "LatencyAccumulator",
    "ReservoirSampler",
    "IntervalAccumulatorSet",
    "RunnerConfig",
    "PolicyResult",
    "ExperimentRunner",
    "SweepSpec",
    "SweepResult",
    "SweepCache",
    "ParallelSweepRunner",
    "parallel_map",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "AggregateConfig",
    "MetricStats",
    "SeedAggregate",
    "SweepSummary",
    "flatten_metrics",
]
