"""Fine-grained event-driven reference simulator (Basic routing).

The vectorised interval simulator feeds every stage the request's
*original* arrival stream (dropping inter-stage jitter).  This DES
models the true dynamics — a request reaches a stage exactly when its
slowest *predecessor stage* responds, following the topology's request
DAG (:attr:`~repro.service.topology.ServiceTopology.
predecessor_indices`), with optional groups drawn per request — at
per-event Python cost.  It exists to *bound the approximation*:
integration tests compare the two simulators' latency distributions on
identical configurations, chains and DAGs alike.

It is also a usable small-scale simulator in its own right (see
``examples/des_vs_vectorized.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.service.topology import ResolvedClassMix, ServiceTopology
from repro.sim.estimators import IntervalAccumulatorSet
from repro.simcore.distributions import Distribution
from repro.simcore.engine import SimulationEngine

__all__ = ["DESOutcome", "DESServiceSimulator"]

#: Streamed runs fold buffered observations into the accumulators once
#: this many have piled up, bounding the Python-list high-water mark.
_STREAM_FLUSH = 4096


@dataclass
class DESOutcome:
    """Latency sample from one DES run."""

    request_latencies: np.ndarray
    component_sojourns: Dict[str, np.ndarray]
    completed: int
    abandoned_in_flight: int
    #: Per-completed-request class index / names on mixed-class runs
    #: (None for the homogeneous population).
    class_of: Optional[np.ndarray] = None
    class_names: Optional[Tuple[str, ...]] = None
    #: Filled (and the sample arrays left empty) when the run streamed
    #: into an accumulator set instead of keeping every observation.
    streaming: Optional[IntervalAccumulatorSet] = None

    def pooled_component_latencies(self) -> np.ndarray:
        """All sub-request sojourns pooled (metric 1)."""
        if self.streaming is not None:
            raise SimulationError(
                "a streamed DES run keeps no sample arrays; read "
                "outcome.streaming.component_pool instead"
            )
        arrays = [a for a in self.component_sojourns.values() if a.size]
        if not arrays:
            return np.empty(0)
        return np.concatenate(arrays)

    def per_class_latencies(self) -> Dict[str, np.ndarray]:
        """Overall request latencies split by request class."""
        if self.streaming is not None:
            raise SimulationError(
                "a streamed DES run keeps no sample arrays; read "
                "outcome.streaming.per_class instead"
            )
        if self.class_of is None or self.class_names is None:
            raise SimulationError(
                "per-class latencies need a mixed-class DES run "
                "(DESServiceSimulator.run(..., classes=...))"
            )
        return {
            name: self.request_latencies[self.class_of == c]
            for c, name in enumerate(self.class_names)
        }


class _Server:
    """FIFO single-server queue for one component."""

    __slots__ = ("dist", "queue", "busy", "sojourns")

    def __init__(self, dist: Distribution) -> None:
        self.dist = dist
        self.queue: deque = deque()
        self.busy = False
        self.sojourns: List[float] = []


class _InFlight:
    """Book-keeping for one request traversing the stage DAG."""

    __slots__ = (
        "arrival", "pending", "preds_remaining", "exits_remaining",
        "class_idx",
    )

    def __init__(
        self,
        arrival: float,
        in_degrees: List[int],
        n_exits: int,
        class_idx: int = 0,
    ) -> None:
        self.arrival = arrival
        #: Outstanding sub-requests per in-flight stage index.
        self.pending: Dict[int, int] = {}
        #: Predecessor stages still running, per stage index.
        self.preds_remaining = list(in_degrees)
        self.exits_remaining = n_exits
        #: Request-class row in the resolved mix (0 when single-class).
        self.class_idx = class_idx


class DESServiceSimulator:
    """Event-driven Basic-routing service simulator over the stage DAG."""

    def __init__(
        self,
        topology: ServiceTopology,
        service_dists: Mapping[str, Distribution],
        rng: np.random.Generator,
    ) -> None:
        missing = [
            c.name for c in topology.components if c.name not in service_dists
        ]
        if missing:
            raise SimulationError(f"missing service distributions for {missing}")
        self.topology = topology
        self.rng = rng
        self._servers: Dict[str, _Server] = {
            c.name: _Server(service_dists[c.name]) for c in topology.components
        }
        self._in_degrees = [
            len(ps) for ps in topology.predecessor_indices
        ]
        self._exits = topology.exit_indices
        self._rr: Dict[str, int] = {}
        self._latencies: List[float] = []
        self._latency_classes: List[int] = []
        self._in_flight = 0
        self._classes: Optional[ResolvedClassMix] = None
        self._stream: Optional[IntervalAccumulatorSet] = None
        self._stream_pending = 0
        self._stream_flushed = 0
        #: Stage-major global group index per group name (the resolved
        #: mix's matrix column), filled lazily on a classed run.
        self._group_col: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(
        self,
        arrival_rate: float,
        duration_s: float,
        classes: Optional[ResolvedClassMix] = None,
        *,
        stream_into: Optional[IntervalAccumulatorSet] = None,
    ) -> DESOutcome:
        """Simulate arrivals over [0, duration); drain in-flight work.

        ``classes`` enables mixed-class mode: each arriving request
        draws its class by mix weight, participates per its class's
        group probabilities and has its service times multiplied by the
        class's ``service_scale`` — event-level mirrors of the
        vectorised simulator's per-class arrays, so the cross-check
        extends to heterogeneous populations.

        ``stream_into`` bounds memory: completed observations are
        buffered in chunks of ``_STREAM_FLUSH`` and folded into the
        given accumulator set instead of being kept, and the returned
        outcome carries the set (empty sample arrays,
        :attr:`DESOutcome.streaming` set).  The event path is
        unchanged — only where finished samples land differs.
        """
        if arrival_rate <= 0 or duration_s <= 0:
            raise SimulationError("arrival_rate and duration_s must be positive")
        self._classes = classes
        if classes is not None:
            self._group_col = {
                name: col for col, name in enumerate(classes.group_names)
            }
        self._stream = stream_into
        self._stream_pending = 0
        self._stream_flushed = 0
        engine = SimulationEngine()
        n = int(self.rng.poisson(arrival_rate * duration_s))
        arrivals = np.sort(self.rng.uniform(0.0, duration_s, n))
        for t in arrivals:
            engine.schedule_at(
                float(t), lambda t=float(t): self._start_request(engine, t)
            )
        engine.run()  # drains all queues; every request completes
        if self._stream is not None:
            self._flush_stream()
            return DESOutcome(
                request_latencies=np.empty(0),
                component_sojourns={name: np.empty(0) for name in self._servers},
                completed=self._stream_flushed,
                abandoned_in_flight=self._in_flight,
                class_of=None,
                class_names=None if classes is None else classes.names,
                streaming=self._stream,
            )
        return DESOutcome(
            request_latencies=np.asarray(self._latencies),
            component_sojourns={
                name: np.asarray(server.sojourns)
                for name, server in self._servers.items()
            },
            completed=len(self._latencies),
            abandoned_in_flight=self._in_flight,
            class_of=(
                np.asarray(self._latency_classes, dtype=np.int64)
                if classes is not None
                else None
            ),
            class_names=None if classes is None else classes.names,
        )

    def _flush_stream(self) -> None:
        """Drain buffered samples into the accumulator set."""
        assert self._stream is not None
        overall = np.asarray(self._latencies, dtype=np.float64)
        sojourns = {
            name: [np.asarray(server.sojourns, dtype=np.float64)]
            for name, server in self._servers.items()
            if server.sojourns
        }
        self._stream.add_chunk(
            overall,
            sojourns,
            (
                np.asarray(self._latency_classes, dtype=np.int64)
                if self._classes is not None
                else None
            ),
            None if self._classes is None else self._classes.names,
        )
        self._stream_flushed += overall.size
        self._latencies.clear()
        self._latency_classes.clear()
        for server in self._servers.values():
            server.sojourns.clear()
        self._stream_pending = 0

    def _note_stream_sample(self) -> None:
        """Count one buffered observation; flush at the high-water mark."""
        if self._stream is None:
            return
        self._stream_pending += 1
        if self._stream_pending >= _STREAM_FLUSH:
            self._flush_stream()

    # ------------------------------------------------------------------
    def _start_request(self, engine: SimulationEngine, now: float) -> None:
        class_idx = 0
        if self._classes is not None and self._classes.multi_class:
            class_idx = int(
                self._classes.class_of(np.array([self.rng.random()]))[0]
            )
        req = _InFlight(
            now, self._in_degrees, len(self._exits), class_idx=class_idx
        )
        self._in_flight += 1
        for si, ps in enumerate(self.topology.predecessor_indices):
            if not ps:
                self._enter_stage(engine, req, si, now)

    def _participates(self, req: _InFlight, group) -> bool:
        """Whether this request's fan-out includes ``group``."""
        if self._classes is None:
            return not group.optional or self.rng.random() < group.participation
        p = float(
            self._classes.group_participation[
                req.class_idx, self._group_col[group.name]
            ]
        )
        return p >= 1.0 or self.rng.random() < p

    def _enter_stage(
        self, engine: SimulationEngine, req: _InFlight, si: int, now: float
    ) -> None:
        stage = self.topology.stages[si]
        fanout = [
            group for group in stage.groups if self._participates(req, group)
        ]
        if not fanout:
            # Every group skipped: the stage passes the request through
            # with zero added latency.
            self._complete_stage(engine, req, si, now)
            return
        req.pending[si] = len(fanout)
        for group in fanout:
            counter = self._rr.get(group.name, 0)
            self._rr[group.name] = counter + 1
            replica = group.components[counter % group.n_replicas]
            self._submit(engine, replica.name, req, si, now)

    def _submit(
        self,
        engine: SimulationEngine,
        server_name: str,
        req: _InFlight,
        si: int,
        now: float,
    ) -> None:
        server = self._servers[server_name]
        server.queue.append((req, si, now))
        if not server.busy:
            self._begin_service(engine, server_name)

    def _begin_service(self, engine: SimulationEngine, server_name: str) -> None:
        server = self._servers[server_name]
        if not server.queue:
            server.busy = False
            return
        server.busy = True
        req, si, enqueued_at = server.queue.popleft()
        service = float(server.dist.sample(self.rng))
        if self._classes is not None:
            service *= float(self._classes.service_scales[req.class_idx])
        engine.schedule(
            service,
            lambda: self._complete(
                engine, server_name, req, si, enqueued_at
            ),
        )

    def _complete(
        self,
        engine: SimulationEngine,
        server_name: str,
        req: _InFlight,
        si: int,
        enqueued_at: float,
    ) -> None:
        now = engine.now
        server = self._servers[server_name]
        server.sojourns.append(now - enqueued_at)
        self._note_stream_sample()
        self._begin_service(engine, server_name)
        req.pending[si] -= 1
        if req.pending[si] > 0:
            return
        del req.pending[si]
        # Stage complete (Eq. 3's max realised event-by-event).
        self._complete_stage(engine, req, si, now)

    def _complete_stage(
        self, engine: SimulationEngine, req: _InFlight, si: int, now: float
    ) -> None:
        for succ in self.topology.successor_indices[si]:
            req.preds_remaining[succ] -= 1
            if req.preds_remaining[succ] == 0:
                # The last predecessor just finished: `now` is the max
                # over predecessor completions (events run in time
                # order), i.e. the DAG's critical-path join.
                self._enter_stage(engine, req, succ, now)
        if si in self._exits:
            req.exits_remaining -= 1
            if req.exits_remaining == 0:
                self._latencies.append(now - req.arrival)
                self._latency_classes.append(req.class_idx)
                self._in_flight -= 1
                self._note_stream_sample()
