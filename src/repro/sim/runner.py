"""The interval loop: batch churn → monitor → predict → schedule → serve.

One :class:`ExperimentRunner` evaluates one policy on one arrival rate
for one *scenario* (:mod:`repro.scenarios` — the Nutch-like search
service by default, selected by ``RunnerConfig.scenario``).

Since the control-plane refactor the loop body lives in
:class:`repro.controlplane.loop.ControlLoop` — four named phases
(monitor → predict → decide → act) driven by a clock seam — and this
module's phase methods *delegate* to it:

:meth:`ExperimentRunner.setup`
    build the cluster, deploy the scenario's service, start the Poisson
    batch-job churn (the interference source), create the monitor and —
    for scheduling policies — the predictor/scheduler/executor stack;
    pre-warm the churn to its M/G/∞ equilibrium.  Returns the
    :class:`RunState` the other phases thread through.

:meth:`ExperimentRunner.run_interval`
    one scheduling interval, delegated to the state's control loop on a
    virtual clock: advance the event engine, derive every component's
    *true* current service distribution, simulate the interval's
    requests with the policy's routing kernel
    (:mod:`repro.sim.queue_sim`), record latencies, and — for PCS —
    run the monitor/predict/decide/actuate phases.

:meth:`ExperimentRunner.collect`
    reduce the recorded intervals into a :class:`PolicyResult` (the
    control loop's reduction).

The batch replay is the control loop's virtual-clock degenerate case
and stays **bit-identical** on :meth:`PolicyResult.metrics_dict` to
the pre-refactor inline loop (golden-pinned).  Identical seeds produce
identical churn and arrival patterns across policies, so Fig. 6's
comparisons are paired.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.baselines.policies import PCSPolicy, Policy, routing_kernel_for
from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeCapacity
from repro.errors import ConfigurationError, ExperimentError
from repro.interference.ground_truth import InterferenceModel, default_interference_model
from repro.model.predictor import LatencyPredictor, OraclePredictor
from repro.monitoring.monitor import MonitorConfig, OnlineMonitor
from repro.monitoring.streaming import ReissueThresholdFeed
from repro.rng import RngRegistry
from repro.scheduler.hierarchical import HierarchicalScheduler
from repro.scheduler.migration import MigrationCostModel, MigrationExecutor
from repro.scheduler.pcs import PCSScheduler
from repro.scenarios import ScenarioSpec, get_scenario
from repro.service.nutch import NutchConfig
from repro.service.topology import ResolvedClassMix
from repro.sim.estimators import IntervalAccumulatorSet, LatencyAccumulator
from repro.sim.metrics import LatencySummary
from repro.sim.profiling import ProfilingConfig, train_predictor_for_service

# simulate_service_interval must stay a *module attribute*: the control
# loop invokes it as `runner_mod.simulate_service_interval`, preserving
# the seam tests monkeypatch here.
from repro.sim.queue_sim import IntervalOutcome, simulate_service_interval
from repro.simcore.engine import SimulationEngine
from repro.workloads.generator import BatchJobGenerator, GeneratorConfig
from repro.workloads.traces import arrival_profile_names, arrival_rate_multipliers

__all__ = ["RunnerConfig", "PolicyResult", "RunState", "ExperimentRunner"]


@dataclass(frozen=True)
class RunnerConfig:
    """Shape of one Fig. 6-style experiment."""

    n_nodes: int = 30
    machine_slots: int = 16
    arrival_rate: float = 100.0
    interval_s: float = 60.0
    n_intervals: int = 8
    warmup_intervals: int = 2
    seed: int = 0
    #: Which registered workload scenario to run (:mod:`repro.scenarios`).
    scenario: str = "nutch-search"
    #: Generic shape multiplier consumed by scenario builders that
    #: define scaled shapes; the ``nutch-search`` scenario's shape
    #: comes from :attr:`nutch` instead and ignores this.
    scale: float = 1.0
    #: Shape of the ``nutch-search`` scenario's service (ignored by the
    #: other built-in scenarios).
    nutch: NutchConfig = field(default_factory=NutchConfig)
    generator: GeneratorConfig = field(
        default_factory=lambda: GeneratorConfig(
            jobs_per_node_per_s=0.01, max_batch_jobs_per_node=3
        )
    )
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    interference_noise: float = 0.02
    churn_prewarm_s: float = 300.0
    deployment: str = "random"
    profiling: ProfilingConfig = field(default_factory=ProfilingConfig)
    n_profiling_conditions: int = 60
    migration_cost: MigrationCostModel = field(default_factory=MigrationCostModel)
    #: Arrival-rate trace profile (:mod:`repro.workloads.traces`):
    #: every interval's rate is ``arrival_rate`` times the profile's
    #: per-interval multiplier.  ``"stationary"`` multiplies by exactly
    #: 1.0 — bit-identical to the pre-profile runner.
    trace_profile: str = "stationary"
    #: Optional ``((name, weight), ...)`` re-weighting of the
    #: scenario's declared request classes (the CLI's ``--classes``).
    #: ``None`` keeps the scenario's own mix weights; a weight of 0
    #: drops that class from the run.  Stored canonically as a tuple of
    #: ``(str, float)`` pairs so sweep manifests hash it stably.
    class_mix: Optional[Tuple[Tuple[str, float], ...]] = None
    #: Process each interval's requests in chunks of this size,
    #: threading queue backlog across chunk boundaries
    #: (:mod:`repro.sim.queue_sim`).  ``None`` — the default — is the
    #: exact legacy single pass; with a value and the default exact
    #: summaries the results are still **bit-identical** (identity-
    #: tested), chunking only bounds the working set.
    chunk_requests: Optional[int] = None
    #: How latency samples are reduced to summaries: ``"exact"`` stores
    #: every sample (nearest-rank percentiles, the golden-pinned path),
    #: ``"streaming"`` uses O(reservoir)-memory estimators
    #: (:mod:`repro.sim.estimators`), and ``"auto"`` — the default —
    #: picks streaming only above :attr:`streaming_threshold` expected
    #: requests per interval, so every existing configuration stays on
    #: the exact path.
    summary_mode: str = "auto"
    #: ``auto`` switches to streaming summaries when the expected
    #: per-interval request count (rate × interval × peak trace
    #: multiplier) exceeds this.
    streaming_threshold: int = 1_000_000
    #: Record the realized duplicate load (extra executed copies per
    #: request, per measured interval) on the result
    #: (:attr:`PolicyResult.per_interval_duplicate_load`).  Off by
    #: default and omitted from sweep digests while off
    #: (``__digest_default_omit__``), so every pre-existing cache
    #: entry, golden pin and spool payload is byte-identical.
    record_induced_load: bool = False

    #: See :func:`repro.sim.sweep._canonical`: fields held at these
    #: values are left out of cache digests and spool payloads.
    __digest_default_omit__ = {"record_induced_load": False}

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ExperimentError("n_nodes must be >= 1")
        if self.arrival_rate <= 0:
            raise ExperimentError("arrival_rate must be positive")
        # interval_s / n_intervals get the named ConfigurationError
        # (a ValueError, still catchable as ReproError): a nonpositive
        # window would otherwise surface as a deep numpy empty-array
        # failure inside the loop.
        if not math.isfinite(self.interval_s) or self.interval_s <= 0:
            raise ConfigurationError(
                f"RunnerConfig.interval_s must be a positive finite "
                f"number of seconds, got {self.interval_s!r}"
            )
        if self.n_intervals < 1:
            raise ConfigurationError(
                f"RunnerConfig.n_intervals must be >= 1, got "
                f"{self.n_intervals!r}"
            )
        if not 0 <= self.warmup_intervals < self.n_intervals:
            raise ExperimentError(
                "need 0 <= warmup_intervals < n_intervals "
                f"(got {self.warmup_intervals} vs {self.n_intervals})"
            )
        if self.interference_noise < 0:
            raise ExperimentError("interference_noise must be >= 0")
        if self.churn_prewarm_s < 0:
            raise ExperimentError("churn_prewarm_s must be >= 0")
        if not self.scenario:
            raise ExperimentError("scenario name must be non-empty")
        if self.scale <= 0:
            raise ExperimentError("scale must be positive")
        if self.trace_profile not in arrival_profile_names():
            raise ExperimentError(
                f"unknown trace profile {self.trace_profile!r} "
                f"(registered: {', '.join(arrival_profile_names())})"
            )
        if self.chunk_requests is not None and self.chunk_requests < 1:
            raise ExperimentError(
                f"chunk_requests must be >= 1, got {self.chunk_requests}"
            )
        if self.summary_mode not in ("auto", "exact", "streaming"):
            raise ExperimentError(
                f"summary_mode must be 'auto', 'exact' or 'streaming', "
                f"got {self.summary_mode!r}"
            )
        if self.streaming_threshold < 1:
            raise ExperimentError(
                f"streaming_threshold must be >= 1, got "
                f"{self.streaming_threshold}"
            )
        if self.class_mix is not None:
            try:
                canon = tuple(
                    (str(name), float(weight))
                    for name, weight in self.class_mix
                )
            except (TypeError, ValueError) as exc:
                raise ExperimentError(
                    f"class_mix must be (name, weight) pairs, got "
                    f"{self.class_mix!r}"
                ) from exc
            if not canon:
                raise ExperimentError(
                    "class_mix must name at least one class (or be None)"
                )
            seen = set()
            for name, weight in canon:
                if not name:
                    raise ExperimentError("class_mix names must be non-empty")
                if name in seen:
                    raise ExperimentError(
                        f"class_mix names class {name!r} twice"
                    )
                seen.add(name)
                if weight < 0:
                    raise ExperimentError(
                        f"class_mix weight for {name!r} must be >= 0"
                    )
            object.__setattr__(self, "class_mix", canon)


@dataclass
class PolicyResult:
    """Aggregated outcome of one (policy, arrival rate) run."""

    policy_name: str
    arrival_rate: float
    component_latency: LatencySummary
    overall_latency: LatencySummary
    per_interval_component_p99: List[float]
    per_interval_overall_mean: List[float]
    n_requests: int
    n_migrations: int
    scheduling_time_s: float
    wall_time_s: float
    #: Per-request-class overall-latency summaries, in class order —
    #: present only on mixed-class runs.  ``None`` on single-class runs
    #: keeps :meth:`metrics_dict` byte-identical to pre-class results
    #: (the golden pins).
    per_class: Optional[Dict[str, LatencySummary]] = None
    #: Estimator provenance: ``"streaming"`` when the summaries came
    #: from the O(reservoir) estimator layer, ``None`` on the exact
    #: path.  Serialised (and hence digested) only when set, so every
    #: exact-mode cache entry and golden pin is byte-identical to
    #: before this field existed — and a streamed result can never be
    #: mistaken for an exact one.
    summary_mode: Optional[str] = None
    #: Chunking provenance: ``True`` when ``chunk_requests`` was set
    #: but this policy's routing kernel cannot chunk (redundancy /
    #: reissue / hedging carry cross-request duplicate state), so the
    #: run silently took the monolithic pass.  Serialised only when
    #: set — same digest-stability pattern as :attr:`summary_mode` —
    #: and surfaced by :meth:`render` so the fallback is visible in
    #: sweep/quick output instead of saying nothing.
    chunk_fallback: bool = False
    #: Realized duplicate load per measured interval — extra executed
    #: copies per request (redundancy copies that escaped cancellation,
    #: reissued/hedged secondaries), the measured counterpart of the
    #: policy's :class:`~repro.baselines.policies.InducedLoad`
    #: prediction.  Recorded only under
    #: ``RunnerConfig.record_induced_load`` and serialised only when
    #: present — same digest-stability pattern as :attr:`summary_mode`.
    per_interval_duplicate_load: Optional[List[float]] = None

    @property
    def component_p99_s(self) -> float:
        """Metric 1: pooled 99th-percentile component latency."""
        return self.component_latency.p99

    @property
    def overall_mean_s(self) -> float:
        """Metric 2: mean overall service latency."""
        return self.overall_latency.mean

    @property
    def duplicate_load(self) -> Optional[float]:
        """Mean realized duplicates per request over measured intervals
        (``None`` unless the run recorded induced load)."""
        if self.per_interval_duplicate_load is None:
            return None
        vals = self.per_interval_duplicate_load
        return sum(vals) / len(vals) if vals else 0.0

    def render(self) -> str:
        """One line in a Fig. 6-style table."""
        line = (
            f"{self.policy_name:>7s} @ {self.arrival_rate:7.1f} req/s | "
            f"component p99 = {self.component_p99_s * 1e3:8.2f} ms | "
            f"overall mean = {self.overall_mean_s * 1e3:8.2f} ms | "
            f"migrations = {self.n_migrations}"
        )
        if self.chunk_fallback:
            line += " | chunking: monolithic fallback"
        if self.duplicate_load is not None:
            line += f" | dup load = {self.duplicate_load:.3f}/req"
        return line

    def metrics_dict(self) -> dict:
        """Every *deterministic* field — :meth:`to_dict` minus the
        measured wall-clock timings.  Two runs of the same (config,
        policy) point must agree on this exactly, whatever the worker
        count or host; it is the byte-identity the sweep tests pin.
        """
        d = self.to_dict()
        del d["scheduling_time_s"], d["wall_time_s"]
        return d

    def to_dict(self) -> dict:
        """JSON-serialisable form used by the on-disk sweep cache.

        Floats round-trip exactly (``json`` serialises them via
        ``repr``, the shortest exact representation), so a cache hit
        reproduces the original result byte-for-byte.
        """
        d = {
            "policy_name": self.policy_name,
            "arrival_rate": self.arrival_rate,
            "component_latency": self.component_latency.to_dict(),
            "overall_latency": self.overall_latency.to_dict(),
            "per_interval_component_p99": list(self.per_interval_component_p99),
            "per_interval_overall_mean": list(self.per_interval_overall_mean),
            "n_requests": self.n_requests,
            "n_migrations": self.n_migrations,
            "scheduling_time_s": self.scheduling_time_s,
            "wall_time_s": self.wall_time_s,
        }
        if self.per_class is not None:
            # Only serialised for mixed-class runs, so single-class
            # cache entries (and their digests) are unchanged.
            d["per_class"] = {
                name: summary.to_dict()
                for name, summary in self.per_class.items()
            }
        if self.summary_mode is not None:
            # Only serialised for streamed runs — same pattern as
            # per_class, for the same digest-stability reason.
            d["summary_mode"] = self.summary_mode
        if self.chunk_fallback:
            # Only serialised when the fallback actually engaged, so
            # every pre-existing cache entry and golden pin is
            # byte-identical to before this field existed.
            d["chunk_fallback"] = True
        if self.per_interval_duplicate_load is not None:
            # Only serialised when induced-load recording was on —
            # same digest-stability reason as the fields above.
            d["per_interval_duplicate_load"] = list(
                self.per_interval_duplicate_load
            )
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "PolicyResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            policy_name=str(d["policy_name"]),
            arrival_rate=float(d["arrival_rate"]),
            component_latency=LatencySummary.from_dict(d["component_latency"]),
            overall_latency=LatencySummary.from_dict(d["overall_latency"]),
            per_interval_component_p99=[
                float(x) for x in d["per_interval_component_p99"]
            ],
            per_interval_overall_mean=[
                float(x) for x in d["per_interval_overall_mean"]
            ],
            n_requests=int(d["n_requests"]),
            n_migrations=int(d["n_migrations"]),
            scheduling_time_s=float(d["scheduling_time_s"]),
            wall_time_s=float(d["wall_time_s"]),
            per_class=(
                None
                if d.get("per_class") is None
                else {
                    str(name): LatencySummary.from_dict(summary)
                    for name, summary in d["per_class"].items()
                }
            ),
            summary_mode=(
                None
                if d.get("summary_mode") is None
                else str(d["summary_mode"])
            ),
            chunk_fallback=bool(d.get("chunk_fallback", False)),
            per_interval_duplicate_load=(
                None
                if d.get("per_interval_duplicate_load") is None
                else [float(x) for x in d["per_interval_duplicate_load"]]
            ),
        )


@dataclass
class RunState:
    """Everything one policy evaluation threads between phases.

    Built by :meth:`ExperimentRunner.setup`, advanced interval by
    interval by :meth:`ExperimentRunner.run_interval`, reduced by
    :meth:`ExperimentRunner.collect`.
    """

    policy: Policy
    rngs: RngRegistry
    engine: SimulationEngine
    cluster: Cluster
    service: object  # OnlineService (duck-typed to avoid a layering import)
    monitor: OnlineMonitor
    scheduler: Optional[object]
    executor: Optional[MigrationExecutor]
    drift_rng: np.random.Generator
    request_rng: np.random.Generator
    t_wall: float
    #: Resolved request-class mix (None on single-class runs — the
    #: exact pre-class code path).
    classes: Optional[ResolvedClassMix] = None
    #: Per-interval arrival-rate multipliers from the trace profile
    #: (all exactly 1.0 under "stationary").
    rate_multipliers: Optional[np.ndarray] = None
    warmup_set: Set[str] = field(default_factory=set)
    #: Resolved latency-reduction mode for this run ("exact" or
    #: "streaming" — the config's "auto" is resolved in setup from the
    #: expected per-interval request count).
    summary_mode: str = "exact"
    #: ``chunk_requests`` was requested but this policy's routing
    #: kernel cannot chunk, so intervals run the monolithic pass
    #: (recorded on the result as provenance).
    chunk_fallback: bool = False
    #: Exact mode: every sample flows through these store-everything
    #: accumulators (bit-identical to the historical pool+summarize).
    component_acc: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    overall_acc: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    #: name -> per-class overall-latency accumulator (mixed-class only).
    per_class_accs: Dict[str, LatencyAccumulator] = field(default_factory=dict)
    #: Streaming mode: the run-level accumulator set (the first measured
    #: interval's set, with later intervals merged in).
    run_stream: Optional[IntervalAccumulatorSet] = None
    per_interval_p99: List[float] = field(default_factory=list)
    per_interval_mean: List[float] = field(default_factory=list)
    #: Realized duplicate load of each measured interval (recorded only
    #: under ``RunnerConfig.record_induced_load``; ``None`` otherwise —
    #: the exact pre-feature reduction).
    per_interval_duplicate_load: Optional[List[float]] = None
    #: The streaming-quantile feed behind an adaptive policy's kernel
    #: (:class:`repro.monitoring.streaming.ReissueThresholdFeed`),
    #: created in setup only when ``policy.adapts_threshold`` and
    #: threaded into every interval by the control loop.  It *is* the
    #: adaptive state — persisting it here is what makes the timer
    #: learn across windows.
    threshold_feed: Optional[object] = None
    n_requests: int = 0
    n_migrations: int = 0
    scheduling_time_s: float = 0.0
    #: The state's :class:`~repro.controlplane.loop.ControlLoop`,
    #: created lazily on first use so the phase objects (and their
    #: decision counters) persist across ``run_interval`` calls.
    control_loop: Optional[object] = None


class ExperimentRunner:
    """Evaluates policies under one :class:`RunnerConfig`.

    The (expensive) predictor training is shared across ``run`` calls:
    train once, evaluate all six policies against the same model, as
    the paper does.
    """

    def __init__(
        self,
        config: RunnerConfig,
        trained: Optional[LatencyPredictor] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> None:
        self.config = config
        self.scenario = scenario or get_scenario(config.scenario)
        self.interference = default_interference_model(config.interference_noise)
        # Training is deterministic given the config seed, so a caller
        # that already holds the trained predictor for this seed (e.g. a
        # sweep worker evaluating several policies) may inject it to
        # skip retraining without changing any result.
        self._trained: Optional[LatencyPredictor] = trained

    @property
    def trained(self) -> Optional[LatencyPredictor]:
        """The trained predictor, if training has happened (or was injected)."""
        return self._trained

    def _build_service(self):
        """A fresh instance of the scenario's service for this config."""
        return self.scenario.build_service(self.config)

    # ------------------------------------------------------------------
    # predictor
    # ------------------------------------------------------------------
    def trained_predictor(self) -> LatencyPredictor:
        """Train (once) the Eq. 1 per-class models from profiling runs."""
        if self._trained is None:
            cfg = self.config
            rng = RngRegistry(cfg.seed).get("profiling")
            service = self._build_service()
            self._trained = train_predictor_for_service(
                service,
                self.interference,
                rng,
                config=cfg.profiling,
                n_mixed_conditions=cfg.n_profiling_conditions,
            )
        return self._trained

    def oracle_predictor(self) -> OraclePredictor:
        """Ground-truth predictor for the oracle ablation."""
        service = self._build_service()
        reps = {cls: service.representative(cls) for cls in service.classes()}
        return OraclePredictor(self.interference, reps)

    # ------------------------------------------------------------------
    # phase 1: setup
    # ------------------------------------------------------------------
    def setup(self, policy: Policy) -> RunState:
        """Deploy the scenario, start the churn, build the PCS stack."""
        cfg = self.config
        t_wall = time.perf_counter()
        rngs = RngRegistry(cfg.seed)
        engine = SimulationEngine()
        cluster = Cluster.homogeneous(
            cfg.n_nodes, NodeCapacity(machine_slots=cfg.machine_slots)
        )
        service = self._build_service()
        service.deploy(cluster, cfg.deployment, rng=rngs.get("deploy"))
        components = service.components

        # Resolve the scenario's request classes (optionally re-weighted
        # by the config's class_mix).  None — no classes, or the exact
        # degenerate single class — keeps every downstream consumer on
        # the pre-class code path.
        classes = service.topology.resolve_classes(
            self.scenario.request_classes,
            None if cfg.class_mix is None else dict(cfg.class_mix),
        )
        expected_part = None
        if classes is not None:
            expected_part = {
                name: float(p)
                for name, p in zip(
                    classes.group_names,
                    classes.expected_group_participation(),
                )
            }

        # Serving requests consumes resources: set every component's
        # effective demand from the policy's executed-copy load.  This
        # is what makes redundancy expensive cluster-wide.
        self._apply_induced_load(service, policy, expected_part)

        generator = BatchJobGenerator(cfg.generator, rngs.get("batch-churn"))
        generator.start(engine, cluster)

        monitor = OnlineMonitor(
            cfg.monitor, cluster, components, rngs.get("monitor")
        )
        scheduler = None
        executor = None
        if policy.schedules:
            assert isinstance(policy, PCSPolicy)
            predictor = (
                self.oracle_predictor()
                if policy.use_oracle
                else self.trained_predictor()
            )
            if policy.hierarchical_group_size:
                scheduler = HierarchicalScheduler(
                    predictor,
                    policy.scheduler_config,
                    group_size=policy.hierarchical_group_size,
                )
            else:
                scheduler = PCSScheduler(predictor, policy.scheduler_config)
            executor = MigrationExecutor(cluster, components, cfg.migration_cost)

        # Let the batch churn reach its M/G/infinity equilibrium before
        # the first measured interval — otherwise early intervals see an
        # artificially empty cluster.
        engine.run_until(cfg.churn_prewarm_s)

        multipliers = arrival_rate_multipliers(cfg.trace_profile, cfg.n_intervals)
        # Resolve "auto": stream only when an interval is expected to
        # produce more requests than the threshold — every historical
        # configuration sits far below it and stays exact.
        summary_mode = cfg.summary_mode
        if summary_mode == "auto":
            expected_peak = (
                cfg.arrival_rate * cfg.interval_s * float(np.max(multipliers))
            )
            summary_mode = (
                "streaming"
                if expected_peak > cfg.streaming_threshold
                else "exact"
            )

        return RunState(
            policy=policy,
            rngs=rngs,
            engine=engine,
            cluster=cluster,
            service=service,
            monitor=monitor,
            scheduler=scheduler,
            executor=executor,
            drift_rng=rngs.get("interference-drift"),
            request_rng=rngs.get("requests"),
            t_wall=t_wall,
            classes=classes,
            rate_multipliers=multipliers,
            summary_mode=summary_mode,
            # Chunking was asked for but this policy's kernel cannot
            # honour it (queue_sim takes the monolithic pass); record
            # the fallback so results say so instead of nothing.
            chunk_fallback=(
                cfg.chunk_requests is not None
                and not routing_kernel_for(policy).supports_chunking
            ),
            per_interval_duplicate_load=(
                [] if cfg.record_induced_load else None
            ),
            threshold_feed=(
                ReissueThresholdFeed() if policy.adapts_threshold else None
            ),
        )

    def _apply_induced_load(
        self,
        service,
        policy: Policy,
        expected_part: Optional[Dict[str, float]],
    ) -> None:
        """Set every component's demand from the policy's induced load.

        Per group: the (class-weighted) participation share of the
        request stream, split over the group's replicas, times the
        policy's *group-capped* executed-copy multiplier
        (:meth:`~repro.baselines.policies.InducedLoad.group_multiplier`
        — a RED-5 sub-request on a 2-replica group executes at most
        twice, and a 1-replica group sees no duplication at all,
        matching the kernels' fallbacks).  On groups with at least
        ``copies`` replicas the multiplier equals the legacy scalar
        exactly, so pre-existing scenario × policy sample paths are
        bit-identical.  Shared by :meth:`setup` and live policy
        switching (:meth:`~repro.controlplane.loop.ControlLoop
        .switch_policy`).
        """
        cfg = self.config
        induced = policy.induced_load()
        for comp in service.components:
            group = service.topology.stages[comp.stage_index].groups[
                comp.group_index
            ]
            participation = (
                group.participation
                if expected_part is None
                else expected_part[group.name]
            )
            comp.set_load(
                participation
                * induced.group_multiplier(group.n_replicas)
                * cfg.arrival_rate
                / group.n_replicas
            )

    # ------------------------------------------------------------------
    # the control loop (phases 2 and 3 delegate to it)
    # ------------------------------------------------------------------
    def control_loop(self, state: RunState, **kwargs):
        """The state's :class:`~repro.controlplane.loop.ControlLoop`.

        Created lazily (and cached on the state) so repeated
        ``run_interval`` calls drive the *same* phase objects; the
        default is the virtual-clock batch replay.  Keyword arguments
        (``clock``, ``live``, ...) are honoured only on first creation.
        """
        if state.control_loop is None:
            # Imported lazily: the control plane sits *above* this
            # module in the layering (it imports the runner, not the
            # other way around at import time).
            from repro.controlplane.loop import ControlLoop

            state.control_loop = ControlLoop(self, state, **kwargs)
        return state.control_loop

    def run_interval(self, state: RunState, interval: int) -> IntervalOutcome:
        """Advance churn, serve one interval, record, maybe reschedule.

        Delegates to the control loop's virtual-clock window — the
        statement-for-statement equivalent of the historical inline
        body (bit-identical on ``metrics_dict()``).
        """
        return self.control_loop(state).run_window(interval)

    def collect(self, state: RunState) -> PolicyResult:
        """Reduce the recorded intervals into a :class:`PolicyResult`.

        Delegates to the control loop's reduction.  Both summary modes
        flow through the same
        :class:`~repro.sim.estimators.LatencyAccumulator` seam; the
        exact mode's reduction is bit-identical to the historical
        pool-then-summarise code, and a streamed run records its
        provenance in :attr:`PolicyResult.summary_mode`.
        """
        return self.control_loop(state).collect()

    # ------------------------------------------------------------------
    # the composed loop
    # ------------------------------------------------------------------
    def run(self, policy: Policy) -> PolicyResult:
        """Evaluate one policy; deterministic given the config seed."""
        state = self.setup(policy)
        return self.control_loop(state).run()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _service_distributions(
        self, cluster, components, drift_rng, warmup_set: Set[str]
    ) -> Dict[str, object]:
        """True per-component service distributions for this interval."""
        cfg = self.config
        dists = {}
        warm_frac = min(
            1.0, cfg.migration_cost.warmup_duration_s / cfg.interval_s
        )
        for comp in components:
            truth_u = cluster.contention_for(comp)
            infl = self.interference.noisy_inflation(comp.cls, truth_u, drift_rng)
            if comp.name in warmup_set:
                infl *= 1.0 + (cfg.migration_cost.warmup_penalty - 1.0) * warm_frac
            dists[comp.name] = comp.base_service.scaled(infl)
        return dists

    @staticmethod
    def _global_group_ids(service) -> np.ndarray:
        """Non-decreasing global replica-group id per component."""
        ids = []
        next_id = 0
        for stage in service.topology.stages:
            for group in stage.groups:
                ids.extend([next_id] * group.n_replicas)
                next_id += 1
        return np.asarray(ids, dtype=np.int64)

    def _schedule_interval(
        self,
        cluster,
        service,
        monitor,
        scheduler,
        executor,
        outcome,
        classes: Optional[ResolvedClassMix] = None,
    ) -> Set[str]:
        """Monitor → matrix inputs → Algorithm 1 → enforcement.

        Compatibility wrapper over the control-plane phases for callers
        holding the pieces but no :class:`RunState`; the in-loop path
        drives the same phases through the state's control loop.
        """
        from repro.controlplane.phases import (
            ActuatePhase,
            DecidePhase,
            MonitorPhase,
            PredictPhase,
        )

        cfg = self.config
        service_slots = max(
            1, cfg.machine_slots - cfg.generator.max_batch_jobs_per_node
        )
        snapshot = MonitorPhase(monitor, cluster, cfg.interval_s).observe(
            0, outcome
        )
        inputs = PredictPhase(
            service,
            cluster,
            classes,
            cfg.interval_s,
            service_slots,
            self._global_group_ids(service),
        ).inputs(snapshot)
        decision = DecidePhase(scheduler).decide(inputs)
        return ActuatePhase(executor).apply(decision)
