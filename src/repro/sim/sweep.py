"""Parallel sweep execution: policies × arrival rates × seeds grids.

The paper's headline artifacts (Figs. 5–7) are sweeps, and every point
of a sweep is independent of every other point: one
:class:`~repro.sim.runner.ExperimentRunner` evaluating one policy at
one arrival rate under one seed.  This module turns that independence
into wall-clock speed and resumability:

- :class:`SweepSpec` names a grid (a base :class:`RunnerConfig` plus
  the policies, arrival rates and seeds to cross);
- :class:`ParallelSweepRunner` fans the grid points out over
  ``multiprocessing`` workers (spawn-safe: the worker function is a
  module-level callable and every argument is a picklable frozen
  dataclass), with per-point deterministic seeding via
  :class:`~repro.rng.RngRegistry` — **results are bit-identical to the
  serial path regardless of worker count or completion order**;
- :class:`SweepCache` memoizes completed points in an on-disk JSON
  store keyed by a stable hash of (runner config, policy) — which
  embeds the arrival rate and seed — so an interrupted sweep resumes
  instead of recomputing, and repeated figure regenerations are free.

Determinism contract
--------------------
A sweep point's result depends only on its :class:`RunnerConfig` and
policy: the runner builds all of its random streams from
``RngRegistry(config.seed)``, and predictor training draws from the
dedicated ``"profiling"`` stream, so training in one process and
evaluating in another (or retraining per point) cannot change any
number.  Workers additionally memoize the trained predictor per
profiling signature, so evaluating six policies at one seed trains
once — exactly like the serial :class:`ExperimentRunner` sharing.

JSON float round-trips are exact (``repr`` is the shortest exact
representation), so cache hits are byte-identical to fresh runs.

Manifest schema (``manifest.json``, version 2)
----------------------------------------------
Alongside the opaque ``<key>.json`` point files, a cached sweep keeps a
human-readable ``manifest.json`` describing *what* the hashes are:

``schema_version``
    Integer, currently ``2``.  A manifest written under a different
    schema raises :class:`repro.errors.StaleManifestError` naming the
    file (never a silent misread).  Version 2 added the top-level
    ``spec.scenario`` name (version-1 manifests predate the scenario
    registry and must be rebuilt by rerunning the sweep).
``cache_version``
    The point-payload :data:`CACHE_VERSION` the sweep wrote under.
``created`` / ``completed``
    UTC ISO-8601 timestamps; ``completed`` is ``null`` until the sweep
    finishes, so an interrupted run is recognisable at a glance.
``spec``
    The grid in canonical form: ``scenario`` (the registered
    :mod:`repro.scenarios` name the whole grid ran under), ``base``
    (the full :class:`~repro.sim.runner.RunnerConfig`), ``policies``,
    ``arrival_rates`` and ``seeds``.
``base_config_diff``
    The base config's deviations from a default
    :class:`~repro.sim.runner.RunnerConfig` as ``{dotted.field:
    [default, actual]}`` — provenance you can read without diffing
    JSON blobs (the per-point ``arrival_rate``/``seed`` placeholders
    are excluded).
``points``
    The point → key map: ``{cache_key: {policy, arrival_rate, seed}}``
    for every grid cell, so any ``<key>.json`` can be traced back to
    its coordinates (and orphaned keys can be garbage-collected with
    :meth:`SweepCache.gc`).

:meth:`SweepCache.manifest` reads and validates it;
:meth:`SweepCache.diff` compares two cache directories' specs field by
field (cross-run provenance: *which knob changed between these runs?*).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines.policies import (
    BasicPolicy,
    HedgedPolicy,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
)
from repro.errors import (
    CacheCorruptionError,
    ConfigurationError,
    ExperimentError,
    StaleManifestError,
    SweepCacheError,
)
from repro.sim.runner import ExperimentRunner, PolicyResult, RunnerConfig

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "SweepProgress",
    "SweepResult",
    "SweepCache",
    "ParallelSweepRunner",
    "parallel_map",
    "point_cache_key",
    "policy_from_name",
    "CACHE_VERSION",
    "MANIFEST_VERSION",
]

#: Bump when the cached payload layout (or anything that invalidates
#: old results, e.g. a metric-convention fix) changes.
CACHE_VERSION = 1

#: Bump when the ``manifest.json`` layout changes (see the module
#: docstring for the schema).
MANIFEST_VERSION = 2

#: The manifest's filename inside a cache directory.
MANIFEST_NAME = "manifest.json"


# ----------------------------------------------------------------------
# grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One cell of the grid: (policy, arrival rate, seed)."""

    policy: Policy
    arrival_rate: float
    seed: int

    def describe(self) -> str:
        """Short human-readable cell name."""
        return f"{self.policy.name} @ {self.arrival_rate:g} req/s, seed {self.seed}"


@dataclass(frozen=True)
class SweepSpec:
    """A policies × arrival rates × seeds grid over one base config.

    The base config's own ``arrival_rate`` and ``seed`` are placeholders
    — each point replaces them with its grid coordinates.
    """

    base: RunnerConfig
    policies: Tuple[Policy, ...]
    arrival_rates: Tuple[float, ...]
    seeds: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not self.policies:
            raise ExperimentError("sweep needs at least one policy")
        if not self.arrival_rates:
            raise ExperimentError("sweep needs at least one arrival rate")
        if not self.seeds:
            raise ExperimentError("sweep needs at least one seed")
        if any(r <= 0 for r in self.arrival_rates):
            raise ExperimentError("arrival rates must be positive")
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise ExperimentError(f"duplicate policy names in sweep: {names}")
        if len(set(self.arrival_rates)) != len(self.arrival_rates):
            raise ExperimentError(
                f"duplicate arrival rates in sweep: {self.arrival_rates}"
            )
        if len(set(self.seeds)) != len(self.seeds):
            raise ExperimentError(f"duplicate seeds in sweep: {self.seeds}")

    @property
    def scenario(self) -> str:
        """The registered scenario name the whole grid runs under."""
        return self.base.scenario

    @property
    def n_points(self) -> int:
        """Grid size."""
        return len(self.policies) * len(self.arrival_rates) * len(self.seeds)

    def points(self) -> List[SweepPoint]:
        """All grid cells, rate-major (the Fig. 6 presentation order)."""
        return [
            SweepPoint(policy=p, arrival_rate=r, seed=s)
            for r in self.arrival_rates
            for p in self.policies
            for s in self.seeds
        ]

    def runner_config(self, point: SweepPoint) -> RunnerConfig:
        """The fully resolved :class:`RunnerConfig` for one cell."""
        return replace(
            self.base, arrival_rate=point.arrival_rate, seed=point.seed
        )

    def point_keys(self) -> Dict[str, dict]:
        """The manifest's point → key map, in grid order.

        ``{cache_key: {"policy": ..., "arrival_rate": ..., "seed": ...}}``
        for every cell — the readable inverse of the opaque filenames.
        """
        return {
            point_cache_key(self.runner_config(p), p.policy): {
                "policy": p.policy.name,
                "arrival_rate": p.arrival_rate,
                "seed": p.seed,
            }
            for p in self.points()
        }


# ----------------------------------------------------------------------
# stable hashing of configs and policies
# ----------------------------------------------------------------------
def _canonical(obj):
    """Recursively convert configs/policies to canonical JSON-able form.

    Dataclass instances carry their class name so that, e.g., a
    ``StaticThreshold`` and an ``AdaptiveThreshold`` with coincidentally
    equal field values hash differently.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__class__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            out[f.name] = _canonical(getattr(obj, f.name))
        return out
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, (int, float)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    # numpy scalars and anything else with .item()
    item = getattr(obj, "item", None)
    if callable(item):
        return _canonical(item())
    raise ConfigurationError(
        f"cannot canonicalise {type(obj).__name__!r} for sweep hashing"
    )


def point_cache_key(config: RunnerConfig, policy: Policy) -> str:
    """Stable cache key for one sweep point.

    Hashes the *full* runner config (which embeds the point's arrival
    rate and seed) together with the policy descriptor — i.e. the
    (config hash, policy, rate, seed) identity of the point.  Any knob
    change produces a different key, so stale results are never served.
    """
    payload = {
        "version": CACHE_VERSION,
        "config": _canonical(config),
        "policy": _canonical(policy),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# on-disk results cache
# ----------------------------------------------------------------------
def _utc_now() -> str:
    """UTC ISO-8601 timestamp for manifest provenance."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _atomic_write_json(path: Path, payload: dict, indent=None) -> None:
    """Write JSON via temp-file-then-rename so readers never see a
    half-written file.

    The temp file lives in the target directory (``os.replace`` must
    not cross filesystems) and is flushed + fsynced before the rename,
    so even a hard kill mid-write leaves either the old content or the
    new — never a truncated hybrid.
    """
    tmp = path.with_name(f"{path.stem}.tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=indent)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but is not ours
    except OverflowError:
        return False  # not a representable pid on this system
    return True


def _config_diff(a, b, prefix: str = "") -> Dict[str, tuple]:
    """Recursive diff of two canonical config trees.

    Returns ``{dotted.path: (a_value, b_value)}`` for every leaf where
    the trees disagree (including paths present on only one side).
    """
    if isinstance(a, dict) and isinstance(b, dict):
        out: Dict[str, tuple] = {}
        for key in sorted(set(a) | set(b)):
            sub_prefix = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            if key not in a:
                out[sub_prefix] = (None, b[key])
            elif key not in b:
                out[sub_prefix] = (a[key], None)
            else:
                out.update(_config_diff(a[key], b[key], sub_prefix))
        return out
    if a != b:
        return {prefix or "<root>": (a, b)}
    return {}


class SweepCache:
    """On-disk JSON memo of completed sweep points, plus provenance.

    One file per point (``<key>.json``), written atomically (temp file
    + rename + fsync) so a crash mid-write can never leave a
    half-written entry, and concurrent sweeps over overlapping grids
    are safe.  A *stale-version* entry (valid JSON, older
    :data:`CACHE_VERSION`) reads as a miss and is recomputed; a
    *corrupt* entry (truncated/garbage content) raises
    :class:`~repro.errors.CacheCorruptionError` naming the file —
    atomic writes make corruption impossible to self-inflict, so it is
    never silently papered over.

    A ``manifest.json`` (see the module docstring for the schema)
    records what grid the keys belong to; :meth:`manifest`,
    :meth:`diff` and :meth:`gc` are the provenance APIs over it.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Location of one entry."""
        return self.root / f"{key}.json"

    @property
    def manifest_path(self) -> Path:
        """Location of the manifest."""
        return self.root / MANIFEST_NAME

    def _point_paths(self):
        """Point-entry files (the manifest is not a point)."""
        return (
            p for p in self.root.glob("*.json") if p.name != MANIFEST_NAME
        )

    def _read_json(self, path: Path) -> Optional[dict]:
        """Parse one cache file; missing → ``None``, garbage → raise."""
        try:
            with path.open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CacheCorruptionError(
                f"sweep cache file {path} is corrupt ({exc.__class__.__name__}: "
                f"{exc}); delete that file (the sweep will recompute the "
                "point, or rebuild the manifest) to recover",
                path=path,
            ) from exc

    def load(self, key: str) -> Optional[PolicyResult]:
        """Return the memoized result for ``key``, or ``None`` on miss.

        Raises :class:`~repro.errors.CacheCorruptionError` (naming the
        file) if the entry exists but is not valid JSON or its result
        payload cannot be decoded; a version mismatch is a plain miss.
        """
        path = self.path_for(key)
        payload = self._read_json(path)
        if payload is None:
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return None
        try:
            return PolicyResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheCorruptionError(
                f"sweep cache file {path} has an undecodable result payload "
                f"({exc.__class__.__name__}: {exc})",
                path=path,
            ) from exc

    def store(
        self, key: str, point: SweepPoint, result: PolicyResult
    ) -> Path:
        """Atomically persist one completed point."""
        path = self.path_for(key)
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "policy": point.policy.name,
            "arrival_rate": point.arrival_rate,
            "seed": point.seed,
            "result": result.to_dict(),
        }
        _atomic_write_json(path, payload)
        return path

    # -- manifest / provenance -----------------------------------------
    @staticmethod
    def _spec_payload(spec: SweepSpec) -> dict:
        """The manifest's canonical description of a grid."""
        return {
            "scenario": spec.scenario,
            "base": _canonical(spec.base),
            "policies": [_canonical(p) for p in spec.policies],
            "arrival_rates": list(spec.arrival_rates),
            "seeds": list(spec.seeds),
        }

    def begin_manifest(self, spec: SweepSpec) -> dict:
        """Write (or refresh) the manifest for ``spec`` at sweep start.

        Re-running the *same* grid keeps the original ``created``
        timestamp (the cache's age is real provenance); a different
        grid over the same directory rewrites the manifest from
        scratch.  ``completed`` is reset to ``null`` until
        :meth:`complete_manifest`.
        """
        spec_payload = self._spec_payload(spec)
        created = _utc_now()
        try:
            existing = self.manifest()
        except StaleManifestError:
            # An older-schema manifest is legitimately superseded here;
            # *corruption* still propagates — damage is never silently
            # overwritten.
            existing = None
        if existing is not None and existing.get("spec") == spec_payload:
            created = existing.get("created", created)
        manifest = {
            "schema_version": MANIFEST_VERSION,
            "cache_version": CACHE_VERSION,
            "created": created,
            "completed": None,
            "spec": spec_payload,
            "base_config_diff": {
                k: list(v)
                for k, v in _config_diff(
                    _canonical(RunnerConfig()), _canonical(spec.base)
                ).items()
                if k not in ("arrival_rate", "seed")  # per-point placeholders
            },
            "points": spec.point_keys(),
        }
        _atomic_write_json(self.manifest_path, manifest, indent=2)
        return manifest

    def complete_manifest(self, spec: Optional[SweepSpec] = None) -> dict:
        """Stamp ``completed`` on the manifest at sweep end.

        With ``spec`` given, the stamp only lands if the on-disk
        manifest still describes that grid: a concurrent sweep over a
        *different* grid may have rewritten the manifest since this
        sweep began, and stamping its (unfinished) grid as completed
        would poison downstream ``gc``/aggregation.
        """
        manifest = self.manifest()
        if manifest is None:
            raise SweepCacheError(
                f"no {MANIFEST_NAME} in {self.root} to complete",
                path=self.manifest_path,
            )
        if spec is not None and manifest.get("spec") != self._spec_payload(spec):
            return manifest  # another grid owns the manifest now
        manifest["completed"] = _utc_now()
        _atomic_write_json(self.manifest_path, manifest, indent=2)
        return manifest

    def manifest(self) -> Optional[dict]:
        """Read and validate the manifest; ``None`` when absent.

        Raises :class:`~repro.errors.CacheCorruptionError` on garbage
        content and :class:`~repro.errors.StaleManifestError` when the
        schema version does not match :data:`MANIFEST_VERSION` — both
        name the offending file.
        """
        payload = self._read_json(self.manifest_path)
        if payload is None:
            return None
        version = payload.get("schema_version") if isinstance(payload, dict) else None
        if version != MANIFEST_VERSION:
            raise StaleManifestError(
                f"{self.manifest_path} has manifest schema version "
                f"{version!r}; this build reads version {MANIFEST_VERSION} "
                "— rebuild the cache (rerun the sweep) or aggregate it "
                "with the matching build",
                path=self.manifest_path,
            )
        missing = [k for k in ("spec", "points", "created") if k not in payload]
        if missing:
            raise CacheCorruptionError(
                f"{self.manifest_path} is missing manifest field(s) "
                f"{', '.join(missing)}; delete it and rerun the sweep to "
                "rebuild provenance",
                path=self.manifest_path,
            )
        return payload

    def diff(self, other: Union["SweepCache", dict, str, Path]) -> Dict[str, tuple]:
        """Spec difference between this cache and another run.

        ``other`` may be another :class:`SweepCache`, a cache directory
        path, or an already-read manifest dict.  Returns ``{dotted.path:
        (mine, theirs)}`` over the manifests' ``spec`` trees — empty
        when the two runs swept the same grid.
        """
        mine = self.manifest()
        if mine is None:
            raise SweepCacheError(
                f"no {MANIFEST_NAME} in {self.root} to diff",
                path=self.manifest_path,
            )
        if isinstance(other, (str, Path)):
            other = SweepCache(other)
        if isinstance(other, SweepCache):
            theirs = other.manifest()
            if theirs is None:
                raise SweepCacheError(
                    f"no {MANIFEST_NAME} in {other.root} to diff against",
                    path=other.manifest_path,
                )
        else:
            theirs = other
        return _config_diff(mine["spec"], theirs["spec"])

    def gc(self) -> List[Path]:
        """Remove point files not named by the manifest, plus temp
        files abandoned by dead writers; returns the removed paths.

        This is how a cache directory shared across evolving grids is
        kept bounded: keys from abandoned configurations are orphans
        once the manifest describes the current grid.  Temp files are
        named ``*.tmp-<pid>``; one whose writer pid is still alive is
        an in-flight atomic write by a concurrent sweep and is left
        alone (deleting it would crash that writer's rename).
        """
        manifest = self.manifest()
        if manifest is None:
            raise SweepCacheError(
                f"no {MANIFEST_NAME} in {self.root}; gc needs a manifest to "
                "know which keys are live",
                path=self.manifest_path,
            )
        live = set(manifest["points"])
        removed: List[Path] = []
        for path in self._point_paths():
            if path.stem not in live:
                path.unlink(missing_ok=True)
                removed.append(path)
        for path in self.root.glob("*.tmp-*"):
            pid_str = path.name.rpartition("tmp-")[2]
            if pid_str.isdigit() and _pid_alive(int(pid_str)):
                continue
            path.unlink(missing_ok=True)
            removed.append(path)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._point_paths())

    def clear(self) -> int:
        """Delete all entries (and the manifest); returns how many
        point entries were removed."""
        n = 0
        for path in self._point_paths():
            path.unlink(missing_ok=True)
            n += 1
        self.manifest_path.unlink(missing_ok=True)
        return n


# ----------------------------------------------------------------------
# worker side (must be module-level and picklable for spawn)
# ----------------------------------------------------------------------
#: Per-process memo of trained predictors, keyed by profiling signature.
#: Lives in the worker process; evaluating many policies that share a
#: seed trains once per worker instead of once per point.  Bounded
#: (FIFO) because on the ``workers=1`` path it lives in the caller's
#: process for the interpreter's lifetime.
_PREDICTOR_MEMO: Dict[tuple, object] = {}
_PREDICTOR_MEMO_LIMIT = 8


def _profiling_signature(config: RunnerConfig) -> tuple:
    """The config fields predictor training depends on (not the rate)."""
    return (
        config.seed,
        config.scenario,
        config.scale,
        config.nutch,
        config.profiling,
        config.n_profiling_conditions,
        config.interference_noise,
    )


def _execute_point(config: RunnerConfig, policy: Policy) -> PolicyResult:
    """Run one sweep point (in a worker or inline for ``workers=1``)."""
    signature = _profiling_signature(config)
    runner = ExperimentRunner(config, trained=_PREDICTOR_MEMO.get(signature))
    result = runner.run(policy)
    if runner.trained is not None and signature not in _PREDICTOR_MEMO:
        while len(_PREDICTOR_MEMO) >= _PREDICTOR_MEMO_LIMIT:
            _PREDICTOR_MEMO.pop(next(iter(_PREDICTOR_MEMO)))
        _PREDICTOR_MEMO[signature] = runner.trained
    return result


def _call(fn_and_item):
    """Tiny trampoline so :func:`parallel_map` ships one picklable arg."""
    fn, item = fn_and_item
    return fn(item)


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int = 1,
    mp_context: str = "spawn",
) -> list:
    """Order-preserving map, fanned out over processes when asked.

    ``fn`` must be a module-level function and every item picklable
    (the spawn start method re-imports the module in each worker).
    ``workers=1`` runs inline — no processes, no pickling — which keeps
    the serial path exactly the serial path.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    items = list(items)
    if workers == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = multiprocessing.get_context(mp_context)
    with ProcessPoolExecutor(
        max_workers=min(workers, len(items)), mp_context=ctx
    ) as pool:
        return list(pool.map(_call, [(fn, item) for item in items]))


# ----------------------------------------------------------------------
# progress + results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepProgress:
    """One progress tick: a point finished (freshly or from cache)."""

    done: int
    total: int
    point: SweepPoint
    result: PolicyResult
    from_cache: bool
    elapsed_s: float

    def render(self) -> str:
        """One status line, e.g. for a verbose console."""
        source = "cache" if self.from_cache else "run"
        return (
            f"[{self.done:>{len(str(self.total))}d}/{self.total}] "
            f"({source:>5s}, {self.elapsed_s:6.1f}s) {self.result.render()}"
        )


@dataclass
class SweepResult:
    """Every grid cell's :class:`PolicyResult`, in grid order."""

    spec: SweepSpec
    results: Dict[SweepPoint, PolicyResult]
    wall_time_s: float
    cache_hits: int = 0

    def get(
        self, policy_name: str, arrival_rate: float, seed: Optional[int] = None
    ) -> PolicyResult:
        """Look one cell up by coordinates."""
        seeds = self.spec.seeds if seed is None else (seed,)
        for point, result in self.results.items():
            if (
                point.policy.name == policy_name
                and point.arrival_rate == arrival_rate
                and point.seed in seeds
            ):
                return result
        raise ExperimentError(
            f"no sweep cell ({policy_name}, {arrival_rate:g}, seed {seed})"
        )

    def by_rate(
        self, seed: Optional[int] = None
    ) -> Dict[float, Dict[str, PolicyResult]]:
        """The Fig. 6 shape: ``{rate: {policy name: result}}``.

        With multiple seeds in the grid, ``seed`` selects which slice;
        with one seed it may be omitted.
        """
        if seed is None:
            if len(self.spec.seeds) != 1:
                raise ExperimentError(
                    f"grid has seeds {self.spec.seeds}; pass seed= to by_rate"
                )
            seed = self.spec.seeds[0]
        if seed not in self.spec.seeds:
            raise ExperimentError(f"seed {seed} not in grid {self.spec.seeds}")
        out: Dict[float, Dict[str, PolicyResult]] = {
            r: {} for r in self.spec.arrival_rates
        }
        for point, result in self.results.items():
            if point.seed == seed:
                out[point.arrival_rate][point.policy.name] = result
        return out

    def summary(self, config=None) -> "object":
        """Reduce this sweep across seeds (see :mod:`repro.sim.aggregate`).

        Returns a :class:`~repro.sim.aggregate.SweepSummary`: one
        mean/CI aggregate per (policy, arrival rate).  The import is
        late because :mod:`repro.sim.aggregate` layers on top of this
        module.
        """
        from repro.sim.aggregate import AggregateConfig, SweepSummary

        return SweepSummary.from_sweep(
            self, config=config or AggregateConfig()
        )

    def render(self) -> str:
        """Per-cell one-liners plus a footer."""
        lines = [
            f"seed {point.seed} | {result.render()}"
            for point, result in self.results.items()
        ]
        lines.append(
            f"{len(self.results)} points "
            f"({self.cache_hits} from cache) in {self.wall_time_s:.1f} s"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class ParallelSweepRunner:
    """Executes a :class:`SweepSpec`, optionally in parallel and cached.

    Parameters
    ----------
    spec:
        The grid to run.
    workers:
        Process count.  ``1`` (default) runs everything inline in this
        process — the exact serial path.  ``>1`` fans points out over a
        spawn-context :class:`~concurrent.futures.ProcessPoolExecutor`;
        results are identical either way (see the module docstring's
        determinism contract).
    cache:
        ``None`` (no memoization), a directory path, or a ready
        :class:`SweepCache`.  Completed points are persisted as they
        finish, so an interrupted sweep resumes where it stopped.
    progress:
        Optional callback invoked with a :class:`SweepProgress` after
        every point (cache hits included), in completion order.
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        cache: Union[SweepCache, str, Path, None] = None,
        progress: Optional[Callable[[SweepProgress], None]] = None,
        mp_context: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        if cache is not None and not isinstance(cache, SweepCache):
            cache = SweepCache(cache)
        self.cache = cache
        self.progress = progress
        self.mp_context = mp_context

    # -- internals ------------------------------------------------------
    def _emit(
        self,
        done: int,
        total: int,
        point: SweepPoint,
        result: PolicyResult,
        from_cache: bool,
        t0: float,
    ) -> None:
        if self.progress is not None:
            self.progress(
                SweepProgress(
                    done=done,
                    total=total,
                    point=point,
                    result=result,
                    from_cache=from_cache,
                    elapsed_s=time.perf_counter() - t0,
                )
            )

    def _finish(
        self,
        point: SweepPoint,
        key: str,
        result: PolicyResult,
        results: Dict[SweepPoint, PolicyResult],
    ) -> None:
        results[point] = result
        if self.cache is not None:
            self.cache.store(key, point, result)

    # -- public API -----------------------------------------------------
    def run(self) -> SweepResult:
        """Execute every grid point; returns all results in grid order."""
        t0 = time.perf_counter()
        points = self.spec.points()
        total = len(points)
        results: Dict[SweepPoint, PolicyResult] = {}
        cache_hits = 0
        pending: List[Tuple[SweepPoint, RunnerConfig, str]] = []

        if self.cache is not None:
            self.cache.begin_manifest(self.spec)

        for point in points:
            config = self.spec.runner_config(point)
            key = point_cache_key(config, point.policy)
            cached = self.cache.load(key) if self.cache is not None else None
            if cached is not None:
                results[point] = cached
                cache_hits += 1
                self._emit(len(results), total, point, cached, True, t0)
            else:
                pending.append((point, config, key))

        # A single pending point (e.g. resuming an almost-complete
        # sweep) runs inline: a spawn worker would pay an interpreter +
        # numpy import and a cold predictor memo for nothing.
        if pending and (self.workers == 1 or len(pending) == 1):
            for point, config, key in pending:
                result = _execute_point(config, point.policy)
                self._finish(point, key, result, results)
                self._emit(len(results), total, point, result, False, t0)
        elif pending:
            ctx = multiprocessing.get_context(self.mp_context)
            n_workers = min(self.workers, len(pending))
            with ProcessPoolExecutor(
                max_workers=n_workers, mp_context=ctx
            ) as pool:
                futures = {
                    pool.submit(_execute_point, config, point.policy): (
                        point,
                        key,
                    )
                    for point, config, key in pending
                }
                outstanding = set(futures)
                while outstanding:
                    finished, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        point, key = futures[future]
                        result = future.result()
                        self._finish(point, key, result, results)
                        self._emit(
                            len(results), total, point, result, False, t0
                        )

        if self.cache is not None:
            self.cache.complete_manifest(self.spec)

        # Grid order, whatever the completion order was.
        ordered = {point: results[point] for point in points}
        return SweepResult(
            spec=self.spec,
            results=ordered,
            wall_time_s=time.perf_counter() - t0,
            cache_hits=cache_hits,
        )


# ----------------------------------------------------------------------
# policy-name parsing (CLI / config files)
# ----------------------------------------------------------------------
def policy_from_name(name: str) -> Policy:
    """Map a Fig. 6 legend name to its policy descriptor.

    Accepts ``Basic``, ``RED-<k>`` (k >= 2), ``RI-<p>`` (percent in
    (0, 100)), ``Hedge`` / ``Hedge-<ms>`` (fixed-delay hedging,
    optionally with the delay in milliseconds), and ``PCS`` (the
    adaptive-threshold configuration the Fig. 6 reproduction uses).
    """
    label = name.strip()
    if label.lower() == "basic":
        return BasicPolicy()
    if label.lower() == "hedge":
        return HedgedPolicy()
    if label.lower() == "pcs":
        # Late import: experiments sits above sim in the layering.
        from repro.experiments.fig6 import paper_pcs_policy

        return paper_pcs_policy()
    head, sep, tail = label.partition("-")
    if sep and head.upper() == "RED":
        try:
            return REDPolicy(replicas=int(tail))
        except ValueError as exc:
            raise ConfigurationError(f"bad RED policy {name!r}") from exc
    if sep and head.upper() == "RI":
        try:
            return ReissuePolicy(quantile=int(tail) / 100.0)
        except ValueError as exc:
            raise ConfigurationError(f"bad RI policy {name!r}") from exc
    if sep and head.upper() == "HEDGE":
        try:
            return HedgedPolicy(hedge_delay_s=float(tail.rstrip("ms")) / 1e3)
        except ValueError as exc:
            raise ConfigurationError(f"bad Hedge policy {name!r}") from exc
    raise ConfigurationError(
        f"unknown policy {name!r} "
        "(expected Basic, RED-<k>, RI-<p>, Hedge[-<ms>] or PCS)"
    )
