"""Parallel sweep execution: policies × arrival rates × seeds grids.

The paper's headline artifacts (Figs. 5–7) are sweeps, and every point
of a sweep is independent of every other point: one
:class:`~repro.sim.runner.ExperimentRunner` evaluating one policy at
one arrival rate under one seed.  This module turns that independence
into wall-clock speed and resumability:

- :class:`SweepSpec` names a grid (a base :class:`RunnerConfig` plus
  the policies, arrival rates and seeds to cross);
- :class:`ParallelSweepRunner` fans the grid points out over an
  :class:`~repro.sim.backends.ExecutionBackend` — inline, in-process
  threads, or spawn processes (spawn-safe: the worker function is a
  module-level callable and every argument is a picklable frozen
  dataclass) — with per-point deterministic seeding via
  :class:`~repro.rng.RngRegistry` — **results are bit-identical to the
  serial path regardless of backend, worker count or completion
  order**;
- :class:`SweepCache` memoizes completed points in an on-disk JSON
  store keyed by a stable hash of (runner config, policy) — which
  embeds the arrival rate and seed — so an interrupted sweep resumes
  instead of recomputing, and repeated figure regenerations are free.

Determinism contract
--------------------
A sweep point's result depends only on its :class:`RunnerConfig` and
policy: the runner builds all of its random streams from
``RngRegistry(config.seed)``, and predictor training draws from the
dedicated ``"profiling"`` stream, so training in one process and
evaluating in another (or retraining per point) cannot change any
number.  Workers additionally memoize the trained predictor per
profiling signature, so evaluating six policies at one seed trains
once — exactly like the serial :class:`ExperimentRunner` sharing.
The memo is lock-protected and train-once-per-signature, so thread
workers share a single training run instead of racing to duplicate it.

Choosing an execution backend
-----------------------------
``ParallelSweepRunner(..., backend=...)`` (CLI ``--backend``) selects
how pending points execute; results are identical for every choice.

``serial``
    Inline in the calling thread.  What ``workers=1`` always meant;
    also the right pick for timing-sensitive runs.
``thread``
    An in-process thread pool.  No interpreter spawn, no numpy
    re-import, and the predictor memo is shared — a grid whose points
    share a profiling signature trains once *total*.  The GIL
    serialises the simulation compute, so threads win exactly where
    start-up cost dominates: small grids (≲ 8 points) and resumed
    sweeps with a handful of missing cells.
``process``
    Spawn-context process workers: each pays an interpreter + numpy
    import and a cold predictor memo, then computes in true parallel —
    the right trade for many expensive points on multi-core hosts.
    ``chunk_size=k`` (CLI ``--chunk-size``) ships batches of ``k``
    points per task so that start-up cost is amortised per chunk.
``distributed``
    Points run on worker processes pulled from a shared spool
    directory (CLI ``--spool DIR``; start workers with ``python -m
    repro.worker DIR``), which may sit on other hosts behind a shared
    filesystem — see :mod:`repro.sim.distributed` for the claim/lease
    protocol.  It beats ``process`` when the fleet has more cores than
    the coordinator and points are expensive enough to amortise the
    per-job dispatch tax (~:data:`repro.sim.backends.
    NETWORK_DISPATCH_TAX_S` per job); ``auto`` applies exactly that
    rule when a spool is configured.  Resume interacts with the spool
    only through this cache: workers never touch ``SweepCache`` —
    results travel back through the spool and the **coordinator**
    persists them — so an interrupted distributed sweep resumes from
    the same cache files as any other backend, and stale spool
    artifacts are mere garbage (reaped by :meth:`SweepCache.gc`
    ``spool=``), never stale results.

The default (``backend=None`` / CLI ``auto``) applies exactly that
guidance, **cost-aware**: serial for one worker or one pending point;
processes whenever the expected per-point cost exceeds the ~1–2 s
per-worker spawn tax (:data:`repro.sim.backends.
EXPENSIVE_POINT_CUTOFF_S`) — a small grid of expensive points must
not run on GIL-serialised threads — with an automatic ``chunk_size``
derived from the same estimate; otherwise threads for small pending
sets and processes for large ones
(:func:`repro.sim.backends.auto_backend`).  The per-point cost is
estimated from the spec via :func:`estimated_point_cost_s`
(``n_intervals × interval_s × n_nodes`` simulated node-seconds times
a coarse wall-clock calibration) or, on a resumed sweep, from the
*measured* wall-clock of the already-cached points — real timings
beat any model.

Failure hardening
-----------------
A point whose evaluation raises does not corrupt the sweep: the
backend cancels all not-yet-started points, peers that already
finished stay persisted in the cache, and the runner re-raises a
:class:`~repro.errors.SweepExecutionError` naming the failing point's
(policy, arrival rate, seed) coordinates.  Rerunning after a fix
resumes from the cached peers.  The manifest's ``completed`` stamp is
only written by a sweep that actually finished.

JSON float round-trips are exact (``repr`` is the shortest exact
representation), so cache hits are byte-identical to fresh runs.

Manifest schema (``manifest.json``, version 2)
----------------------------------------------
Alongside the opaque ``<key>.json`` point files, a cached sweep keeps a
human-readable ``manifest.json`` describing *what* the hashes are:

``schema_version``
    Integer, currently ``2``.  A manifest written under a different
    schema raises :class:`repro.errors.StaleManifestError` naming the
    file (never a silent misread).  Version 2 added the top-level
    ``spec.scenario`` name (version-1 manifests predate the scenario
    registry and must be rebuilt by rerunning the sweep).
``cache_version``
    The point-payload :data:`CACHE_VERSION` the sweep wrote under.
``created`` / ``completed``
    UTC ISO-8601 timestamps; ``completed`` is ``null`` until the sweep
    finishes, so an interrupted run is recognisable at a glance.
``spec``
    The grid in canonical form: ``scenario`` (the registered
    :mod:`repro.scenarios` name the whole grid ran under), ``base``
    (the full :class:`~repro.sim.runner.RunnerConfig`), ``policies``,
    ``arrival_rates`` and ``seeds``.
``base_config_diff``
    The base config's deviations from a default
    :class:`~repro.sim.runner.RunnerConfig` as ``{dotted.field:
    [default, actual]}`` — provenance you can read without diffing
    JSON blobs (the per-point ``arrival_rate``/``seed`` placeholders
    are excluded).
``points``
    The point → key map: ``{cache_key: {policy, arrival_rate, seed}}``
    for every grid cell, so any ``<key>.json`` can be traced back to
    its coordinates (and orphaned keys can be garbage-collected with
    :meth:`SweepCache.gc`).

:meth:`SweepCache.manifest` reads and validates it;
:meth:`SweepCache.diff` compares two cache directories' specs field by
field (cross-run provenance: *which knob changed between these runs?*).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines.policies import (
    AdaptiveHedgePolicy,
    AdaptiveReissuePolicy,
    BasicPolicy,
    HedgedPolicy,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
)
from repro.errors import (
    CacheCorruptionError,
    ConfigurationError,
    ExperimentError,
    StaleManifestError,
    SweepCacheError,
    SweepExecutionError,
    SweepLookupError,
    WorkerTaskError,
)
from repro.sim.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    resolve_backend,
)
from repro.sim.runner import ExperimentRunner, PolicyResult, RunnerConfig

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "SweepProgress",
    "SweepResult",
    "SweepCache",
    "ParallelSweepRunner",
    "parallel_map",
    "point_cache_key",
    "policy_from_name",
    "estimated_point_cost_s",
    "calibrate_wall_s_per_node_second",
    "SIM_WALL_S_PER_NODE_SECOND",
    "CACHE_VERSION",
    "MANIFEST_VERSION",
]

#: Bump when the cached payload layout (or anything that invalidates
#: old results, e.g. a metric-convention fix) changes.
CACHE_VERSION = 1

#: Bump when the ``manifest.json`` layout changes (see the module
#: docstring for the schema).
MANIFEST_VERSION = 2

#: The manifest's filename inside a cache directory.
MANIFEST_NAME = "manifest.json"


# ----------------------------------------------------------------------
# grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One cell of the grid: (policy, arrival rate, seed)."""

    policy: Policy
    arrival_rate: float
    seed: int

    def describe(self) -> str:
        """Short human-readable cell name."""
        return f"{self.policy.name} @ {self.arrival_rate:g} req/s, seed {self.seed}"


@dataclass(frozen=True)
class SweepSpec:
    """A policies × arrival rates × seeds grid over one base config.

    The base config's own ``arrival_rate`` and ``seed`` are placeholders
    — each point replaces them with its grid coordinates.
    """

    base: RunnerConfig
    policies: Tuple[Policy, ...]
    arrival_rates: Tuple[float, ...]
    seeds: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if not self.policies:
            raise ExperimentError("sweep needs at least one policy")
        if not self.arrival_rates:
            raise ExperimentError("sweep needs at least one arrival rate")
        if not self.seeds:
            raise ExperimentError("sweep needs at least one seed")
        if any(r <= 0 for r in self.arrival_rates):
            raise ExperimentError("arrival rates must be positive")
        names = [p.name for p in self.policies]
        if len(set(names)) != len(names):
            raise ExperimentError(f"duplicate policy names in sweep: {names}")
        if len(set(self.arrival_rates)) != len(self.arrival_rates):
            raise ExperimentError(
                f"duplicate arrival rates in sweep: {self.arrival_rates}"
            )
        if len(set(self.seeds)) != len(self.seeds):
            raise ExperimentError(f"duplicate seeds in sweep: {self.seeds}")

    @property
    def scenario(self) -> str:
        """The registered scenario name the whole grid runs under."""
        return self.base.scenario

    @property
    def n_points(self) -> int:
        """Grid size."""
        return len(self.policies) * len(self.arrival_rates) * len(self.seeds)

    def points(self) -> List[SweepPoint]:
        """All grid cells, rate-major (the Fig. 6 presentation order)."""
        return [
            SweepPoint(policy=p, arrival_rate=r, seed=s)
            for r in self.arrival_rates
            for p in self.policies
            for s in self.seeds
        ]

    def runner_config(self, point: SweepPoint) -> RunnerConfig:
        """The fully resolved :class:`RunnerConfig` for one cell."""
        return replace(
            self.base, arrival_rate=point.arrival_rate, seed=point.seed
        )

    def point_keys(self) -> Dict[str, dict]:
        """The manifest's point → key map, in grid order.

        ``{cache_key: {"policy": ..., "arrival_rate": ..., "seed": ...}}``
        for every cell — the readable inverse of the opaque filenames.
        """
        return {
            point_cache_key(self.runner_config(p), p.policy): {
                "policy": p.policy.name,
                "arrival_rate": p.arrival_rate,
                "seed": p.seed,
            }
            for p in self.points()
        }


# ----------------------------------------------------------------------
# per-point cost estimation (feeds the cost-aware auto backend rule)
# ----------------------------------------------------------------------
#: Coarse wall-clock calibration: seconds of compute per *simulated
#: node-second* of a sweep point (`n_intervals × interval_s × n_nodes`).
#: Calibrated from recorded ``BENCH_sweep_parallel_speedup`` artifacts
#: via :func:`calibrate_wall_s_per_node_second` — a 16-node, 6×30 s
#: quick-fig6 point (2880 node-seconds) measures ~0.1–0.2 s serial on
#: the CI hosts, i.e. ~4e-5 s per node-second.  It only has to rank a
#: point against the ~1–2 s spawn tax, so a factor of a few either way
#: does not change the routing decision; measured cache timings
#: override it on resumed sweeps.
SIM_WALL_S_PER_NODE_SECOND = 4e-5


def estimated_point_cost_s(config: RunnerConfig) -> float:
    """Expected wall-clock of one sweep point, from its spec alone.

    The simulation work scales with how much cluster-time one point
    simulates: every interval advances the churn engine and serves
    requests across ``n_nodes`` nodes for ``interval_s`` seconds.  The
    product times :data:`SIM_WALL_S_PER_NODE_SECOND` is deliberately
    coarse — it exists to answer one question for
    :func:`repro.sim.backends.auto_backend`: *is this point expensive
    relative to a worker's spawn tax?*
    """
    node_seconds = config.n_intervals * config.interval_s * config.n_nodes
    return float(node_seconds * SIM_WALL_S_PER_NODE_SECOND)


def calibrate_wall_s_per_node_second(
    records: Sequence[Mapping],
    default: Optional[float] = None,
) -> float:
    """Re-derive :data:`SIM_WALL_S_PER_NODE_SECOND` from benchmark records.

    ``records`` are parsed ``BENCH_*.json`` payloads (the shape
    ``benchmarks/recording.py`` writes and its
    ``load_benchmark_records`` reads).  A record is *usable* when its
    ``config`` carries ``node_seconds_per_point`` and its ``timings_s``
    carries ``serial_s_per_point`` (both positive) — the fields the
    sweep benchmarks persist.  Returns the **median** of the per-record
    ``serial_s_per_point / node_seconds_per_point`` ratios, robust to
    the odd record measured on a loaded host.

    With no usable record, returns ``default`` when given, else raises
    :class:`~repro.errors.ConfigurationError` — a silent fallback would
    let a typo'd artifact directory masquerade as a calibration.
    """
    ratios = []
    for record in records:
        config = record.get("config") or {}
        timings = record.get("timings_s") or {}
        node_s = config.get("node_seconds_per_point")
        wall_s = timings.get("serial_s_per_point")
        if (
            isinstance(node_s, (int, float))
            and isinstance(wall_s, (int, float))
            and node_s > 0
            and wall_s > 0
        ):
            ratios.append(float(wall_s) / float(node_s))
    if not ratios:
        if default is not None:
            return float(default)
        raise ConfigurationError(
            "no benchmark record carries node_seconds_per_point/"
            "serial_s_per_point; run benchmarks/bench_sweep.py to "
            "produce one, or pass default="
        )
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return 0.5 * (ratios[mid - 1] + ratios[mid])


# ----------------------------------------------------------------------
# stable hashing of configs and policies
# ----------------------------------------------------------------------
def _canonical(obj):
    """Recursively convert configs/policies to canonical JSON-able form.

    Dataclass instances carry their class name so that, e.g., a
    ``StaticThreshold`` and an ``AdaptiveThreshold`` with coincidentally
    equal field values hash differently.

    A dataclass may declare ``__digest_default_omit__`` — a mapping of
    field name to its *inert* value — and such fields are omitted from
    the canonical form while they hold that value.  This is how a field
    added after caches exist keeps every pre-existing digest (and spool
    job payload — the codec's decoder defaults missing fields) byte-
    identical until someone actually turns the feature on.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {"__class__": type(obj).__name__}
        omit = getattr(type(obj), "__digest_default_omit__", None)
        for f in dataclasses.fields(obj):
            value = getattr(obj, f.name)
            if omit is not None and f.name in omit and value == omit[f.name]:
                continue
            out[f.name] = _canonical(value)
        return out
    if isinstance(obj, bool) or obj is None or isinstance(obj, str):
        return obj
    if isinstance(obj, (int, float)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [_canonical(x) for x in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    # numpy scalars and anything else with .item()
    item = getattr(obj, "item", None)
    if callable(item):
        return _canonical(item())
    raise ConfigurationError(
        f"cannot canonicalise {type(obj).__name__!r} for sweep hashing"
    )


def point_cache_key(config: RunnerConfig, policy: Policy) -> str:
    """Stable cache key for one sweep point.

    Hashes the *full* runner config (which embeds the point's arrival
    rate and seed) together with the policy descriptor — i.e. the
    (config hash, policy, rate, seed) identity of the point.  Any knob
    change produces a different key, so stale results are never served.
    """
    payload = {
        "version": CACHE_VERSION,
        "config": _canonical(config),
        "policy": _canonical(policy),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# on-disk results cache
# ----------------------------------------------------------------------
def _utc_now() -> str:
    """UTC ISO-8601 timestamp for manifest provenance."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _atomic_write_json(path: Path, payload: dict, indent=None) -> None:
    """Write JSON via temp-file-then-rename so readers never see a
    half-written file.

    The temp file lives in the target directory (``os.replace`` must
    not cross filesystems) and is flushed + fsynced before the rename,
    so even a hard kill mid-write leaves either the old content or the
    new — never a truncated hybrid.
    """
    tmp = path.with_name(f"{path.stem}.tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=indent)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists but is not ours
    except OverflowError:
        return False  # not a representable pid on this system
    return True


def _config_diff(a, b, prefix: str = "") -> Dict[str, tuple]:
    """Recursive diff of two canonical config trees.

    Returns ``{dotted.path: (a_value, b_value)}`` for every leaf where
    the trees disagree (including paths present on only one side).
    """
    if isinstance(a, dict) and isinstance(b, dict):
        out: Dict[str, tuple] = {}
        for key in sorted(set(a) | set(b)):
            sub_prefix = f"{prefix}{key}" if not prefix else f"{prefix}.{key}"
            if key not in a:
                out[sub_prefix] = (None, b[key])
            elif key not in b:
                out[sub_prefix] = (a[key], None)
            else:
                out.update(_config_diff(a[key], b[key], sub_prefix))
        return out
    if a != b:
        return {prefix or "<root>": (a, b)}
    return {}


class SweepCache:
    """On-disk JSON memo of completed sweep points, plus provenance.

    One file per point (``<key>.json``), written atomically (temp file
    + rename + fsync) so a crash mid-write can never leave a
    half-written entry, and concurrent sweeps over overlapping grids
    are safe.  A *stale-version* entry (valid JSON, older
    :data:`CACHE_VERSION`) reads as a miss and is recomputed; a
    *corrupt* entry (truncated/garbage content) raises
    :class:`~repro.errors.CacheCorruptionError` naming the file —
    atomic writes make corruption impossible to self-inflict, so it is
    never silently papered over.

    A ``manifest.json`` (see the module docstring for the schema)
    records what grid the keys belong to; :meth:`manifest`,
    :meth:`diff` and :meth:`gc` are the provenance APIs over it.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Location of one entry."""
        return self.root / f"{key}.json"

    @property
    def manifest_path(self) -> Path:
        """Location of the manifest."""
        return self.root / MANIFEST_NAME

    def _point_paths(self):
        """Point-entry files (the manifest is not a point)."""
        return (
            p for p in self.root.glob("*.json") if p.name != MANIFEST_NAME
        )

    def _read_json(self, path: Path) -> Optional[dict]:
        """Parse one cache file; missing → ``None``, garbage → raise."""
        try:
            with path.open("r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CacheCorruptionError(
                f"sweep cache file {path} is corrupt ({exc.__class__.__name__}: "
                f"{exc}); delete that file (the sweep will recompute the "
                "point, or rebuild the manifest) to recover",
                path=path,
            ) from exc

    def load(self, key: str) -> Optional[PolicyResult]:
        """Return the memoized result for ``key``, or ``None`` on miss.

        Raises :class:`~repro.errors.CacheCorruptionError` (naming the
        file) if the entry exists but is not valid JSON or its result
        payload cannot be decoded; a version mismatch is a plain miss.
        """
        path = self.path_for(key)
        payload = self._read_json(path)
        if payload is None:
            return None
        if not isinstance(payload, dict) or payload.get("version") != CACHE_VERSION:
            return None
        try:
            return PolicyResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheCorruptionError(
                f"sweep cache file {path} has an undecodable result payload "
                f"({exc.__class__.__name__}: {exc})",
                path=path,
            ) from exc

    def store(
        self, key: str, point: SweepPoint, result: PolicyResult
    ) -> Path:
        """Atomically persist one completed point."""
        path = self.path_for(key)
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "policy": point.policy.name,
            "arrival_rate": point.arrival_rate,
            "seed": point.seed,
            "result": result.to_dict(),
        }
        _atomic_write_json(path, payload)
        return path

    # -- manifest / provenance -----------------------------------------
    @staticmethod
    def _spec_payload(spec: SweepSpec) -> dict:
        """The manifest's canonical description of a grid."""
        return {
            "scenario": spec.scenario,
            "base": _canonical(spec.base),
            "policies": [_canonical(p) for p in spec.policies],
            "arrival_rates": list(spec.arrival_rates),
            "seeds": list(spec.seeds),
        }

    def begin_manifest(self, spec: SweepSpec) -> dict:
        """Write (or refresh) the manifest for ``spec`` at sweep start.

        Re-running the *same* grid keeps the original ``created``
        timestamp (the cache's age is real provenance); a different
        grid over the same directory rewrites the manifest from
        scratch.  ``completed`` is reset to ``null`` until
        :meth:`complete_manifest`.
        """
        spec_payload = self._spec_payload(spec)
        created = _utc_now()
        try:
            existing = self.manifest()
        except StaleManifestError:
            # An older-schema manifest is legitimately superseded here;
            # *corruption* still propagates — damage is never silently
            # overwritten.
            existing = None
        if existing is not None and existing.get("spec") == spec_payload:
            created = existing.get("created", created)
        manifest = {
            "schema_version": MANIFEST_VERSION,
            "cache_version": CACHE_VERSION,
            "created": created,
            "completed": None,
            "spec": spec_payload,
            "base_config_diff": {
                k: list(v)
                for k, v in _config_diff(
                    _canonical(RunnerConfig()), _canonical(spec.base)
                ).items()
                if k not in ("arrival_rate", "seed")  # per-point placeholders
            },
            "points": spec.point_keys(),
        }
        _atomic_write_json(self.manifest_path, manifest, indent=2)
        return manifest

    def complete_manifest(self, spec: Optional[SweepSpec] = None) -> dict:
        """Stamp ``completed`` on the manifest at sweep end.

        With ``spec`` given, the stamp only lands if the on-disk
        manifest still describes that grid: a concurrent sweep over a
        *different* grid may have rewritten the manifest since this
        sweep began, and stamping its (unfinished) grid as completed
        would poison downstream ``gc``/aggregation.
        """
        manifest = self.manifest()
        if manifest is None:
            raise SweepCacheError(
                f"no {MANIFEST_NAME} in {self.root} to complete",
                path=self.manifest_path,
            )
        if spec is not None and manifest.get("spec") != self._spec_payload(spec):
            return manifest  # another grid owns the manifest now
        manifest["completed"] = _utc_now()
        _atomic_write_json(self.manifest_path, manifest, indent=2)
        return manifest

    def manifest(self) -> Optional[dict]:
        """Read and validate the manifest; ``None`` when absent.

        Raises :class:`~repro.errors.CacheCorruptionError` on garbage
        content and :class:`~repro.errors.StaleManifestError` when the
        schema version does not match :data:`MANIFEST_VERSION` — both
        name the offending file.
        """
        payload = self._read_json(self.manifest_path)
        if payload is None:
            return None
        version = payload.get("schema_version") if isinstance(payload, dict) else None
        if version != MANIFEST_VERSION:
            raise StaleManifestError(
                f"{self.manifest_path} has manifest schema version "
                f"{version!r}; this build reads version {MANIFEST_VERSION} "
                "— rebuild the cache (rerun the sweep) or aggregate it "
                "with the matching build",
                path=self.manifest_path,
            )
        missing = [k for k in ("spec", "points", "created") if k not in payload]
        if missing:
            raise CacheCorruptionError(
                f"{self.manifest_path} is missing manifest field(s) "
                f"{', '.join(missing)}; delete it and rerun the sweep to "
                "rebuild provenance",
                path=self.manifest_path,
            )
        return payload

    def diff(self, other: Union["SweepCache", dict, str, Path]) -> Dict[str, tuple]:
        """Spec difference between this cache and another run.

        ``other`` may be another :class:`SweepCache`, a cache directory
        path, or an already-read manifest dict.  Returns ``{dotted.path:
        (mine, theirs)}`` over the manifests' ``spec`` trees — empty
        when the two runs swept the same grid.
        """
        mine = self.manifest()
        if mine is None:
            raise SweepCacheError(
                f"no {MANIFEST_NAME} in {self.root} to diff",
                path=self.manifest_path,
            )
        if isinstance(other, (str, Path)):
            other = SweepCache(other)
        if isinstance(other, SweepCache):
            theirs = other.manifest()
            if theirs is None:
                raise SweepCacheError(
                    f"no {MANIFEST_NAME} in {other.root} to diff against",
                    path=other.manifest_path,
                )
        else:
            theirs = other
        return _config_diff(mine["spec"], theirs["spec"])

    def gc(self, spool=None, spool_lease_s: Optional[float] = None) -> List[Path]:
        """Remove point files not named by the manifest, plus temp
        files abandoned by dead writers; returns the removed paths.

        This is how a cache directory shared across evolving grids is
        kept bounded: keys from abandoned configurations are orphans
        once the manifest describes the current grid.  Temp files are
        named ``*.tmp-<pid>``; one whose writer pid is still alive is
        an in-flight atomic write by a concurrent sweep and is left
        alone (deleting it would crash that writer's rename).

        With ``spool`` (a directory path or
        :class:`~repro.sim.distributed.SweepSpool`), stale *spool*
        artifacts are reaped too — expired claim files, dead-worker
        presence files, and orphaned ``tmp-`` job/result files — under
        the same live-pid-spared rule; ``spool_lease_s`` overrides the
        heartbeat lease the claim-expiry check uses.  Run spool gc on
        idle spools (see :meth:`SweepSpool.gc <repro.sim.distributed.
        SweepSpool.gc>`).
        """
        manifest = self.manifest()
        if manifest is None:
            raise SweepCacheError(
                f"no {MANIFEST_NAME} in {self.root}; gc needs a manifest to "
                "know which keys are live",
                path=self.manifest_path,
            )
        live = set(manifest["points"])
        removed: List[Path] = []
        for path in self._point_paths():
            if path.stem not in live:
                path.unlink(missing_ok=True)
                removed.append(path)
        for path in self.root.glob("*.tmp-*"):
            pid_str = path.name.rpartition("tmp-")[2]
            if pid_str.isdigit() and _pid_alive(int(pid_str)):
                continue
            path.unlink(missing_ok=True)
            removed.append(path)
        if spool is not None:
            from repro.sim.distributed import DEFAULT_LEASE_S, SweepSpool

            if not isinstance(spool, SweepSpool):
                spool = SweepSpool(spool)
            removed.extend(
                spool.gc(
                    lease_s=(
                        DEFAULT_LEASE_S
                        if spool_lease_s is None
                        else spool_lease_s
                    )
                )
            )
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self._point_paths())

    def clear(self) -> int:
        """Delete all entries (and the manifest); returns how many
        point entries were removed."""
        n = 0
        for path in self._point_paths():
            path.unlink(missing_ok=True)
            n += 1
        self.manifest_path.unlink(missing_ok=True)
        return n


# ----------------------------------------------------------------------
# worker side (must be module-level and picklable for spawn)
# ----------------------------------------------------------------------
#: Per-process memo of trained predictors, keyed by profiling signature.
#: Shared by every thread of the process (thread-backend workers and
#: the inline path alike) behind :data:`_PREDICTOR_MEMO_LOCK`;
#: evaluating many policies that share a seed trains once per process
#: instead of once per point.  Bounded (FIFO) because on the serial
#: and thread paths it lives in the caller's process for the
#: interpreter's lifetime.
_PREDICTOR_MEMO: Dict[tuple, object] = {}
_PREDICTOR_MEMO_LIMIT = 8
_PREDICTOR_MEMO_LOCK = threading.Lock()
#: One lock per profiling signature so concurrent thread workers
#: needing the same predictor train it once and share it, while
#: points with *different* signatures keep running unserialised.
_PREDICTOR_TRAIN_LOCKS: Dict[tuple, threading.Lock] = {}


def _profiling_signature(config: RunnerConfig) -> tuple:
    """The config fields predictor training depends on (not the rate).

    ``class_mix`` is part of the signature although training itself
    draws only per-component-class profiles: two configs that differ
    in their request-class mix must never share a memo slot, so a
    future mix-aware profiling change cannot silently serve a stale
    predictor.
    """
    return (
        config.seed,
        config.scenario,
        config.scale,
        config.nutch,
        config.profiling,
        config.n_profiling_conditions,
        config.interference_noise,
        config.class_mix,
    )


def _memoize_predictor(signature: tuple, trained: object) -> None:
    """FIFO-bounded insert; caller must not hold the memo lock."""
    with _PREDICTOR_MEMO_LOCK:
        if signature in _PREDICTOR_MEMO:
            return
        while len(_PREDICTOR_MEMO) >= _PREDICTOR_MEMO_LIMIT:
            evicted = next(iter(_PREDICTOR_MEMO))
            _PREDICTOR_MEMO.pop(evicted)
            _PREDICTOR_TRAIN_LOCKS.pop(evicted, None)
        _PREDICTOR_MEMO[signature] = trained


def _trained_for(config: RunnerConfig, policy: Policy):
    """The memoized trained predictor this point needs, or ``None``.

    Policies that never consult the trained model (non-scheduling
    baselines, the oracle ablation) skip training entirely — exactly
    as :meth:`ExperimentRunner.setup` would.  For the rest, the
    per-signature lock makes training happen once per process even
    when thread workers hit a cold memo simultaneously; training is
    deterministic given the signature (it draws only from
    ``RngRegistry(seed)``'s ``"profiling"`` stream), so who trains
    cannot change any number.
    """
    if not policy.schedules or getattr(policy, "use_oracle", False):
        return None
    signature = _profiling_signature(config)
    with _PREDICTOR_MEMO_LOCK:
        trained = _PREDICTOR_MEMO.get(signature)
        lock = _PREDICTOR_TRAIN_LOCKS.setdefault(signature, threading.Lock())
    if trained is not None:
        return trained
    with lock:
        with _PREDICTOR_MEMO_LOCK:
            trained = _PREDICTOR_MEMO.get(signature)
        if trained is None:
            trained = ExperimentRunner(config).trained_predictor()
            _memoize_predictor(signature, trained)
    return trained


def _execute_point(config: RunnerConfig, policy: Policy) -> PolicyResult:
    """Run one sweep point (in a worker of any backend, or inline)."""
    runner = ExperimentRunner(config, trained=_trained_for(config, policy))
    result = runner.run(policy)
    if runner.trained is not None:
        # Belt for policy types outside _trained_for's fast paths.
        _memoize_predictor(_profiling_signature(config), runner.trained)
    return result


def _execute_task(task: Tuple[RunnerConfig, Policy]) -> PolicyResult:
    """Backend-shaped trampoline: one picklable argument per task."""
    config, policy = task
    return _execute_point(config, policy)


def parallel_map(
    fn: Callable,
    items: Sequence,
    workers: int = 1,
    mp_context: str = "spawn",
    backend: Union[str, ExecutionBackend, None] = None,
    chunk_size: Optional[int] = None,
    est_cost_s: Optional[float] = None,
) -> list:
    """Order-preserving map over an execution backend.

    ``backend`` is an :class:`~repro.sim.backends.ExecutionBackend`, a
    name (``serial``/``thread``/``process``), or ``None``/``"auto"``
    for the default rule: inline for ``workers=1`` or ≤ 1 items,
    spawn processes when ``est_cost_s`` (the caller's expected
    per-item compute) marks the items expensive, in-process threads
    for small cheap batches, spawn processes otherwise.  For the
    process backend ``fn`` must be a module-level function and every
    item picklable (spawn re-imports the module in each worker);
    ``chunk_size`` ships batches of items per process task.

    Failure contract (uniform across backends, including serial): a
    raising ``fn`` surfaces as :class:`~repro.errors.WorkerTaskError`
    carrying the failing item's index, chained to the original
    exception where no pickle boundary intervenes.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(
            f"chunk size must be >= 1, got {chunk_size}"
        )
    items = list(items)
    resolved = resolve_backend(
        backend,
        workers,
        len(items),
        mp_context=mp_context,
        chunk_size=chunk_size,
        est_cost_s=est_cost_s,
    )
    return resolved.map(fn, items)


# ----------------------------------------------------------------------
# progress + results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepProgress:
    """One progress tick: a point finished (freshly or from cache)."""

    done: int
    total: int
    point: SweepPoint
    result: PolicyResult
    from_cache: bool
    elapsed_s: float

    def render(self) -> str:
        """One status line, e.g. for a verbose console."""
        source = "cache" if self.from_cache else "run"
        return (
            f"[{self.done:>{len(str(self.total))}d}/{self.total}] "
            f"({source:>5s}, {self.elapsed_s:6.1f}s) {self.result.render()}"
        )


@dataclass
class SweepResult:
    """Every grid cell's :class:`PolicyResult`, in grid order."""

    spec: SweepSpec
    results: Dict[SweepPoint, PolicyResult]
    wall_time_s: float
    cache_hits: int = 0
    #: Lazy coordinate index — built once, so :meth:`get` is a dict
    #: lookup instead of a per-call scan over every grid cell.
    _coord_index: Optional[Dict[Tuple[str, float, int], PolicyResult]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _index(self) -> Dict[Tuple[str, float, int], PolicyResult]:
        if self._coord_index is None:
            self._coord_index = {
                (point.policy.name, point.arrival_rate, point.seed): result
                for point, result in self.results.items()
            }
        return self._coord_index

    def get(
        self, policy_name: str, arrival_rate: float, seed: Optional[int] = None
    ) -> PolicyResult:
        """Look one cell up by coordinates.

        ``seed=None`` returns the first grid seed's slice.  A miss
        raises :class:`~repro.errors.SweepLookupError` listing the
        coordinates the grid actually has.
        """
        index = self._index()
        seeds = self.spec.seeds if seed is None else (seed,)
        for s in seeds:
            result = index.get((policy_name, arrival_rate, s))
            if result is not None:
                return result
        raise SweepLookupError(
            f"no sweep cell ({policy_name}, {arrival_rate:g}, seed {seed}); "
            f"grid has policies {[p.name for p in self.spec.policies]}, "
            f"arrival rates {[f'{r:g}' for r in self.spec.arrival_rates]}, "
            f"seeds {list(self.spec.seeds)}"
        )

    def by_rate(
        self, seed: Optional[int] = None
    ) -> Dict[float, Dict[str, PolicyResult]]:
        """The Fig. 6 shape: ``{rate: {policy name: result}}``.

        With multiple seeds in the grid, ``seed`` selects which slice;
        with one seed it may be omitted.
        """
        if seed is None:
            if len(self.spec.seeds) != 1:
                raise ExperimentError(
                    f"grid has seeds {self.spec.seeds}; pass seed= to by_rate"
                )
            seed = self.spec.seeds[0]
        if seed not in self.spec.seeds:
            raise ExperimentError(f"seed {seed} not in grid {self.spec.seeds}")
        out: Dict[float, Dict[str, PolicyResult]] = {
            r: {} for r in self.spec.arrival_rates
        }
        for point, result in self.results.items():
            if point.seed == seed:
                out[point.arrival_rate][point.policy.name] = result
        return out

    def summary(self, config=None) -> "object":
        """Reduce this sweep across seeds (see :mod:`repro.sim.aggregate`).

        Returns a :class:`~repro.sim.aggregate.SweepSummary`: one
        mean/CI aggregate per (policy, arrival rate).  The import is
        late because :mod:`repro.sim.aggregate` layers on top of this
        module.
        """
        from repro.sim.aggregate import AggregateConfig, SweepSummary

        return SweepSummary.from_sweep(
            self, config=config or AggregateConfig()
        )

    def render(self) -> str:
        """Per-cell one-liners plus a footer."""
        lines = [
            f"seed {point.seed} | {result.render()}"
            for point, result in self.results.items()
        ]
        lines.append(
            f"{len(self.results)} points "
            f"({self.cache_hits} from cache) in {self.wall_time_s:.1f} s"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class ParallelSweepRunner:
    """Executes a :class:`SweepSpec`, optionally in parallel and cached.

    Parameters
    ----------
    spec:
        The grid to run.
    workers:
        Worker count for the thread/process backends.  ``1`` (default)
        runs everything inline in this process — the exact serial path.
        Results are identical for every worker count (see the module
        docstring's determinism contract).
    cache:
        ``None`` (no memoization), a directory path, or a ready
        :class:`SweepCache`.  Completed points are persisted as they
        finish, so an interrupted sweep resumes where it stopped.
    progress:
        Optional callback invoked with a :class:`SweepProgress` after
        every point (cache hits included), in completion order.
    backend:
        How pending points execute: an
        :class:`~repro.sim.backends.ExecutionBackend`, a name
        (``serial``/``thread``/``process``), or ``None``/``"auto"``
        (default) for the rule in the module docstring's *Choosing an
        execution backend* section — serial for one worker or one
        pending point, threads for small pending sets, spawn processes
        otherwise.  Bit-identical results for every choice.
    chunk_size:
        Points shipped per process task (process backend only), so a
        spawn worker amortises its interpreter + numpy import over a
        whole chunk.  Default: one point per task.
    spool:
        Shared spool directory for the distributed backend (required
        with ``backend="distributed"``; offered to ``auto``, which
        routes expensive grids there — see the module docstring).
    wait_workers:
        Distributed only: block until this many live spool workers are
        registered before dispatching jobs.
    """

    def __init__(
        self,
        spec: SweepSpec,
        workers: int = 1,
        cache: Union[SweepCache, str, Path, None] = None,
        progress: Optional[Callable[[SweepProgress], None]] = None,
        mp_context: str = "spawn",
        backend: Union[str, ExecutionBackend, None] = None,
        chunk_size: Optional[int] = None,
        spool: Union[str, Path, None] = None,
        wait_workers: int = 0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk size must be >= 1, got {chunk_size}"
            )
        if (
            isinstance(backend, str)
            and backend != "auto"
            and backend not in BACKEND_NAMES
        ):
            raise ConfigurationError(
                f"unknown execution backend {backend!r} (expected auto, "
                f"{', '.join(BACKEND_NAMES)}, or an ExecutionBackend)"
            )
        if backend == "distributed" and spool is None:
            raise ConfigurationError(
                "backend='distributed' needs a spool directory (spool=/"
                "--spool DIR) shared with its workers"
            )
        if wait_workers < 0:
            raise ConfigurationError(
                f"wait_workers must be >= 0, got {wait_workers}"
            )
        self.spec = spec
        self.workers = workers
        if cache is not None and not isinstance(cache, SweepCache):
            cache = SweepCache(cache)
        self.cache = cache
        self.progress = progress
        self.mp_context = mp_context
        self.backend = backend
        self.chunk_size = chunk_size
        self.spool = spool
        self.wait_workers = wait_workers

    # -- internals ------------------------------------------------------
    def _emit(
        self,
        done: int,
        total: int,
        point: SweepPoint,
        result: PolicyResult,
        from_cache: bool,
        t0: float,
    ) -> None:
        if self.progress is not None:
            self.progress(
                SweepProgress(
                    done=done,
                    total=total,
                    point=point,
                    result=result,
                    from_cache=from_cache,
                    elapsed_s=time.perf_counter() - t0,
                )
            )

    def _finish(
        self,
        point: SweepPoint,
        key: str,
        result: PolicyResult,
        results: Dict[SweepPoint, PolicyResult],
    ) -> None:
        results[point] = result
        if self.cache is not None:
            self.cache.store(key, point, result)

    def _estimate_point_cost(self, cached) -> float:
        """Expected per-point wall-clock for the auto backend rule.

        Prefers the *measured* mean wall-clock of this run's cache
        hits (same grid, same host — the best predictor of the pending
        points) and falls back to the spec-based
        :func:`estimated_point_cost_s` on a cold cache.
        """
        timed = [r.wall_time_s for r in cached if r.wall_time_s > 0]
        if timed:
            return float(sum(timed) / len(timed))
        return estimated_point_cost_s(self.spec.base)

    def _resolve_backend(self, n_pending: int, cached) -> ExecutionBackend:
        """The backend the pending points will run on (cost-aware auto)."""
        return resolve_backend(
            self.backend,
            self.workers,
            n_pending,
            mp_context=self.mp_context,
            chunk_size=self.chunk_size,
            est_cost_s=self._estimate_point_cost(cached),
            spool=self.spool,
            wait_workers=self.wait_workers,
        )

    # -- public API -----------------------------------------------------
    def run(self) -> SweepResult:
        """Execute every grid point; returns all results in grid order."""
        t0 = time.perf_counter()
        points = self.spec.points()
        total = len(points)
        results: Dict[SweepPoint, PolicyResult] = {}
        cache_hits = 0
        pending: List[Tuple[SweepPoint, RunnerConfig, str]] = []

        if self.cache is not None:
            self.cache.begin_manifest(self.spec)

        for point in points:
            config = self.spec.runner_config(point)
            key = point_cache_key(config, point.policy)
            cached = self.cache.load(key) if self.cache is not None else None
            if cached is not None:
                results[point] = cached
                cache_hits += 1
                self._emit(len(results), total, point, cached, True, t0)
            else:
                pending.append((point, config, key))

        # The backend seam: auto picks serial for one worker or one
        # pending point (a spawn worker would pay an interpreter +
        # numpy import and a cold predictor memo for nothing),
        # processes when the estimated per-point cost outweighs the
        # spawn tax (measured cache-hit timings when resuming, the
        # spec-based estimate otherwise), threads for small cheap
        # pending sets, processes for large ones; an explicit backend
        # is honoured as given.
        if pending:
            backend = self._resolve_backend(len(pending), results.values())
            tasks = [(config, point.policy) for point, config, key in pending]
            try:
                for index, result in backend.imap_unordered(
                    _execute_task, tasks
                ):
                    point, _, key = pending[index]
                    self._finish(point, key, result, results)
                    self._emit(len(results), total, point, result, False, t0)
            except WorkerTaskError as err:
                # Peers that finished before the failure are already in
                # the cache; the backend cancelled everything else.  Name
                # the failing point instead of leaking a bare traceback.
                failed: Optional[SweepPoint] = (
                    pending[err.index][0]
                    if err.index is not None and 0 <= err.index < len(pending)
                    else None
                )
                where = failed.describe() if failed else "unknown point"
                raise SweepExecutionError(
                    f"sweep point {where} failed on the {backend.name} "
                    f"backend: {err} ({len(results)}/{total} points "
                    "completed; completed points remain cached and a rerun "
                    "resumes from them)",
                    policy=failed.policy.name if failed else None,
                    arrival_rate=failed.arrival_rate if failed else None,
                    seed=failed.seed if failed else None,
                ) from err

        if self.cache is not None:
            self.cache.complete_manifest(self.spec)

        # Grid order, whatever the completion order was.
        ordered = {point: results[point] for point in points}
        return SweepResult(
            spec=self.spec,
            results=ordered,
            wall_time_s=time.perf_counter() - t0,
            cache_hits=cache_hits,
        )


# ----------------------------------------------------------------------
# policy-name parsing (CLI / config files)
# ----------------------------------------------------------------------
def policy_from_name(name: str) -> Policy:
    """Map a Fig. 6 legend name to its policy descriptor.

    Accepts ``Basic``, ``RED-<k>`` (k >= 2), ``RI-<p>`` (percent in
    (0, 100)), ``Hedge`` / ``Hedge-<ms>`` (fixed-delay hedging,
    optionally with the delay in milliseconds), their online-tuned
    counterparts ``ARI-<p>`` (adaptive reissue) and ``AHedge`` /
    ``AHedge-<p>`` (quantile-tracking hedge), and ``PCS`` (the
    adaptive-threshold configuration the Fig. 6 reproduction uses).
    """
    label = name.strip()
    if label.lower() == "basic":
        return BasicPolicy()
    if label.lower() == "hedge":
        return HedgedPolicy()
    if label.lower() == "ahedge":
        return AdaptiveHedgePolicy()
    if label.lower() == "pcs":
        # Late import: experiments sits above sim in the layering.
        from repro.experiments.fig6 import paper_pcs_policy

        return paper_pcs_policy()
    head, sep, tail = label.partition("-")
    if sep and head.upper() == "RED":
        try:
            return REDPolicy(replicas=int(tail))
        except ValueError as exc:
            raise ConfigurationError(f"bad RED policy {name!r}") from exc
    if sep and head.upper() == "RI":
        try:
            return ReissuePolicy(quantile=int(tail) / 100.0)
        except ValueError as exc:
            raise ConfigurationError(f"bad RI policy {name!r}") from exc
    if sep and head.upper() == "ARI":
        try:
            return AdaptiveReissuePolicy(quantile=int(tail) / 100.0)
        except ValueError as exc:
            raise ConfigurationError(f"bad ARI policy {name!r}") from exc
    if sep and head.upper() == "AHEDGE":
        try:
            return AdaptiveHedgePolicy(quantile=int(tail) / 100.0)
        except ValueError as exc:
            raise ConfigurationError(f"bad AHedge policy {name!r}") from exc
    if sep and head.upper() == "HEDGE":
        try:
            return HedgedPolicy(hedge_delay_s=float(tail.rstrip("ms")) / 1e3)
        except ValueError as exc:
            raise ConfigurationError(f"bad Hedge policy {name!r}") from exc
    raise ConfigurationError(
        f"unknown policy {name!r} (expected Basic, RED-<k>, RI-<p>, "
        "Hedge[-<ms>], ARI-<p>, AHedge[-<p>] or PCS)"
    )
