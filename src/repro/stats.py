"""Self-contained standard-normal CDF/quantile helpers.

Both the workload-trace calibration (:mod:`repro.workloads.traces`
pins the Google-trace duration sigma from a normal quantile) and the
BCa bootstrap (:mod:`repro.sim.aggregate`) need Φ and Φ⁻¹.  SciPy's
``norm`` would do, but the CI tier-1 environment installs only
numpy/pytest, and the statistics layer already keeps its Student-t
quantile dependency-free so results are identical everywhere.  This
module is the normal-distribution sibling of that idiom: the CDF is
exact via :func:`math.erf`, and the quantile inverts it by bisection —
the same scheme as :func:`repro.sim.aggregate.student_t_ppf`.

It lives at the package root (not under ``sim`` or ``workloads``)
because both layers import it and ``workloads`` must not depend on
``sim``.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = ["norm_cdf", "norm_ppf"]

_SQRT2 = math.sqrt(2.0)


def norm_cdf(x: float) -> float:
    """Standard normal CDF Φ(x), exact via the error function."""
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


def norm_ppf(p: float) -> float:
    """Standard normal quantile Φ⁻¹(p) (inverse CDF).

    Bisection on the closed-form CDF, mirroring
    :func:`repro.sim.aggregate.student_t_ppf`: a few hundred halvings
    reach ~1e-15 relative accuracy, plenty for calibration constants
    and bootstrap acceleration terms, with no dependency beyond
    :mod:`math`.
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"normal quantile needs p in (0, 1), got {p}")
    if p == 0.5:
        return 0.0
    # Symmetric: solve the upper tail and mirror.
    if p < 0.5:
        return -norm_ppf(1.0 - p)
    lo, hi = 0.0, 2.0
    while norm_cdf(hi) < p:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if norm_cdf(mid) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-15 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)
