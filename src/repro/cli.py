"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's evaluation artifacts:

- ``fig5`` — prediction accuracy of the performance model;
- ``fig6`` — the six-policy latency comparison (``--scale quick`` for a
  minutes-scale subset, ``--scale paper`` for the full sweep);
- ``fig7`` — scheduler scalability;
- ``ablations`` — the design-choice ablations;
- ``quick`` — a Basic-vs-PCS taste at one arrival rate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro-pcs",
        description=(
            "Reproduction of 'PCS: Predictive Component-level Scheduling "
            "for Reducing Tail Latency in Cloud Online Services' (ICPP 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p5 = sub.add_parser("fig5", help="prediction-accuracy experiment")
    p5.add_argument("--seed", type=int, default=0)

    p6 = sub.add_parser("fig6", help="six-policy latency comparison")
    p6.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default="quick",
        help="quick = 3 rates / small cluster; paper = full sweep",
    )
    p6.add_argument("--seed", type=int, default=7)
    p6.add_argument("--verbose", action="store_true")

    p7 = sub.add_parser("fig7", help="scheduler scalability")
    p7.add_argument("--seed", type=int, default=0)

    pa = sub.add_parser("ablations", help="design-choice ablations")
    pa.add_argument("--seed", type=int, default=11)

    pq = sub.add_parser("quick", help="Basic-vs-PCS at one arrival rate")
    pq.add_argument("--rate", type=float, default=100.0)
    pq.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "fig5":
        from repro.experiments.fig5 import Fig5Config, run_fig5

        print(run_fig5(Fig5Config(seed=args.seed)).render())
    elif args.command == "fig6":
        from repro.experiments.fig6 import Fig6Config, run_fig6
        from repro.service.nutch import NutchConfig

        if args.scale == "paper":
            cfg = Fig6Config(seed=args.seed)
        else:
            cfg = Fig6Config(
                arrival_rates=(10.0, 50.0, 200.0),
                n_nodes=16,
                n_intervals=6,
                warmup_intervals=1,
                seed=args.seed,
                nutch=NutchConfig(n_search_groups=10, replicas_per_group=4),
            )
        result = run_fig6(cfg, verbose=args.verbose)
        print(result.render())
        print(f"\n(wall time: {result.wall_time_s:.1f} s)")
    elif args.command == "fig7":
        from repro.experiments.fig7 import Fig7Config, run_fig7

        print(run_fig7(Fig7Config(seed=args.seed)).render())
    elif args.command == "ablations":
        from repro.experiments.ablations import AblationConfig, run_all_ablations

        print(run_all_ablations(AblationConfig(seed=args.seed)))
    elif args.command == "quick":
        from repro.experiments.fig6 import run_quick_comparison

        result = run_quick_comparison(arrival_rate=args.rate, seed=args.seed)
        print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
