"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's evaluation artifacts:

- ``fig5`` — prediction accuracy of the performance model;
- ``fig6`` — the six-policy latency comparison (``--scale quick`` for a
  minutes-scale subset, ``--scale paper`` for the full sweep);
- ``fig7`` — scheduler scalability;
- ``ablations`` — the design-choice ablations;
- ``quick`` — a Basic-vs-PCS taste at one arrival rate;
- ``sweep`` — an arbitrary policies × rates × seeds grid through the
  parallel sweep subsystem (:mod:`repro.sim.sweep`);
- ``aggregate`` — seed-level statistics (mean ± CI per metric, via
  :mod:`repro.sim.aggregate`) over a sweep cache directory's
  ``manifest.json``, with ``--gc`` to drop orphaned point files and
  ``--compare DIR`` to diff two sweep caches: manifest spec diff plus
  a joint table of paired per-seed differences over the shared
  (policy, rate) cells (identical seed sets required);
- ``worker`` — a distributed sweep worker: claims job files from a
  shared ``--spool``-style directory and executes them until the
  spool's stop sentinel appears (``repro worker SPOOL --stop`` writes
  it); the same loop as ``python -m repro.worker``;
- ``scenarios`` — the registered workload-scenario catalog
  (:mod:`repro.scenarios`), with live topology summaries.

``sweep`` additionally accepts ``--backend distributed --spool DIR
[--wait-workers N]`` to fan points out over spool workers on any hosts
sharing DIR (:mod:`repro.sim.distributed`; bit-identical results), and
``auto`` with a ``--spool`` routes expensive grids there by itself.

``fig5``/``fig6``/``fig7``/``sweep`` accept ``--workers N`` to fan
independent points out over workers and ``--backend
{auto,serial,thread,process}`` / ``--chunk-size K`` to pick how those
workers execute (:mod:`repro.sim.backends`; results are identical for
every choice — ``auto`` runs small pending sets on in-process threads,
which skip the per-spawn interpreter + numpy import, and large ones on
spawn processes, with ``--chunk-size`` batching points per process
task); ``aggregate`` accepts the same flags to fan the cache's point
loads out.  ``fig6``/``sweep`` accept ``--cache-dir`` to memoize
completed points on disk so interrupted runs resume, and
``--seeds``/``sweep --aggregate`` to repeat cells across seeds and
reduce them through the shared aggregate layer.  ``quick``/``sweep``/
``fig5``/``fig6``/``fig7`` accept ``--scenario NAME`` to run any
registered scenario instead of the paper's Nutch-like service (plus
``--scale`` to shrink/grow the non-Nutch shapes).  ``quick``/``sweep``/
``fig6`` additionally accept ``--trace-profile`` (non-stationary
arrival shapes from :mod:`repro.workloads.traces`: diurnal, burst,
flash-crowd) and ``--classes name:weight,...`` to re-weight a
scenario's declared request-class mix; mixed-class runs report
per-class latency panels and the ``scenarios`` catalog appends each
classed scenario's class table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _class_mix(text: str):
    """argparse type for ``--classes``: ``name:weight,name:weight,...``.

    Returns the ``((name, weight), ...)`` tuple RunnerConfig's
    ``class_mix`` field takes; unknown class names are caught downstream
    by the topology resolution (where the declared classes are known).
    """
    pairs = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, weight_text = part.partition(":")
        if not sep or not name.strip():
            raise argparse.ArgumentTypeError(
                f"expected name:weight, got {part!r}"
            )
        try:
            weight = float(weight_text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad weight {weight_text!r} for class {name.strip()!r}"
            )
        if weight < 0:
            raise argparse.ArgumentTypeError(
                f"class {name.strip()!r} weight must be >= 0, got {weight}"
            )
        pairs.append((name.strip(), weight))
    if not pairs:
        raise argparse.ArgumentTypeError("--classes must name at least one class")
    return tuple(pairs)


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (workers, chunk size).

    Rejecting at the parser keeps ``--workers 0`` a clean usage error
    (exit code 2) instead of a ConfigurationError traceback from the
    sweep runner.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro-pcs",
        description=(
            "Reproduction of 'PCS: Predictive Component-level Scheduling "
            "for Reducing Tail Latency in Cloud Online Services' (ICPP 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_args(p, default="auto", distributed=False):
        choices = ["auto", "serial", "thread", "process"]
        if distributed:
            choices.append("distributed")
        p.add_argument(
            "--backend",
            choices=choices,
            default=default,
            help="how workers execute (repro.sim.backends): auto picks "
            "serial for 1 worker, spawn processes for points whose "
            "estimated cost outweighs the per-worker spawn tax "
            "(cost-aware), in-process threads for small cheap pending "
            "sets (no spawn import cost), spawn processes otherwise"
            + (
                "; distributed ships points as job files through "
                "--spool to repro.worker processes (auto also routes "
                "expensive grids there when --spool is given)"
                if distributed
                else ""
            ),
        )
        p.add_argument(
            "--chunk-size", type=_positive_int, default=None,
            dest="chunk_size",
            help="points shipped per process task (process/distributed "
            "backends), amortising each worker's per-dispatch cost "
            "across a chunk",
        )
        if distributed:
            p.add_argument(
                "--spool", default=None,
                help="shared spool directory for the distributed "
                "backend (start workers with: python -m repro.worker "
                "SPOOL)",
            )
            p.add_argument(
                "--wait-workers", type=_positive_int, default=None,
                dest="wait_workers",
                help="block until this many live spool workers are "
                "registered before dispatching (distributed only)",
            )

    def add_scenario_args(p, default="nutch-search"):
        p.add_argument(
            "--scenario", default=default,
            help="registered workload scenario to run "
            "(see the `scenarios` subcommand)",
        )
        # default=None (resolved to 1.0 downstream) so `fig6 --scale
        # paper` can tell "left unset" from an explicit `--shape-scale
        # 1.0` — explicit values always beat the scenario's preset.
        p.add_argument(
            "--shape-scale", type=float, default=None, dest="shape_scale",
            help="shape multiplier for scenario builders with scaled "
            "shapes, default 1.0 (nutch-search is shaped by its own "
            "knobs instead)",
        )

    def add_streaming_args(p):
        p.add_argument(
            "--chunk-requests", type=_positive_int, default=None,
            dest="chunk_requests",
            help="simulate each interval's arrivals in chunks of this "
            "many requests (Basic routing); exact-mode chunked runs "
            "are bit-identical to monolithic ones, and large intervals "
            "stream in O(chunk) memory",
        )
        p.add_argument(
            "--summary-mode",
            choices=["auto", "exact", "streaming"],
            default="auto",
            dest="summary_mode",
            help="latency summaries: exact keeps every sample "
            "(nearest-rank percentiles), streaming uses O(reservoir)-"
            "memory estimators, auto streams only above the runner's "
            "per-interval request threshold (default 10^6)",
        )

    def add_workload_args(p):
        from repro.workloads.traces import arrival_profile_names

        p.add_argument(
            "--trace-profile",
            choices=arrival_profile_names(),
            default="stationary",
            dest="trace_profile",
            help="arrival-trace profile shaping per-interval rates "
            "(repro.workloads.traces); stationary reproduces the "
            "paper's open-loop stream exactly",
        )
        p.add_argument(
            "--classes", type=_class_mix, default=None, dest="class_mix",
            metavar="NAME:W,...",
            help="re-weight the scenario's declared request classes "
            "(e.g. search:0.5,autocomplete:0.5; weight 0 drops a "
            "class); only valid for scenarios that declare classes",
        )

    p5 = sub.add_parser("fig5", help="prediction-accuracy experiment")
    p5.add_argument("--seed", type=int, default=0)
    p5.add_argument(
        "--workers", type=_positive_int, default=1,
        help="workers for the per-workload campaigns (same numbers "
        "for any value)",
    )
    add_backend_args(p5, default=None)
    add_scenario_args(p5)

    p6 = sub.add_parser("fig6", help="six-policy latency comparison")
    p6.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default="quick",
        help="quick = 3 rates / small cluster; paper = full sweep",
    )
    p6.add_argument("--seed", type=int, default=7)
    p6.add_argument(
        "--seeds", default=None,
        help="comma-separated seeds to repeat every cell under "
        "(default: just --seed); multi-seed runs report mean ± CI",
    )
    p6.add_argument("--verbose", action="store_true")
    p6.add_argument(
        "--workers", type=_positive_int, default=1,
        help="workers for the (policy, rate) grid (bit-identical "
        "results for any value)",
    )
    add_backend_args(p6)
    p6.add_argument(
        "--cache-dir", default=None,
        help="memoize completed sweep points here; rerunning resumes",
    )
    add_scenario_args(p6)
    add_workload_args(p6)

    p7 = sub.add_parser("fig7", help="scheduler scalability")
    p7.add_argument("--seed", type=int, default=0)
    p7.add_argument(
        "--workers", type=_positive_int, default=1,
        help="workers for grid points (keep 1 for faithful timings; "
        ">1 defaults to spawn processes — thread workers would "
        "contend for the GIL and inflate the measured durations)",
    )
    add_backend_args(p7, default=None)
    add_scenario_args(p7, default=None)

    pa = sub.add_parser("ablations", help="design-choice ablations")
    pa.add_argument("--seed", type=int, default=11)

    pq = sub.add_parser("quick", help="Basic-vs-PCS at one arrival rate")
    pq.add_argument("--rate", type=float, default=100.0)
    pq.add_argument("--seed", type=int, default=0)
    add_scenario_args(pq)
    add_workload_args(pq)
    add_streaming_args(pq)

    ps = sub.add_parser(
        "sweep",
        help="custom policies x rates x seeds grid via the parallel "
        "sweep subsystem",
    )
    ps.add_argument(
        "--policies", default="Basic,PCS",
        help="comma-separated legend names (Basic, RED-3, RED-5, "
        "RI-90, RI-99, ARI-<p>, Hedge[-<ms>], AHedge[-<p>], PCS)",
    )
    ps.add_argument(
        "--rates", default="50,200",
        help="comma-separated arrival rates (req/s)",
    )
    ps.add_argument(
        "--seeds", default="0", help="comma-separated root seeds"
    )
    ps.add_argument(
        "--nodes", type=int, default=None,
        help="cluster size (default: the scenario's own default, "
        "16 for nutch-search)",
    )
    add_scenario_args(ps)
    add_workload_args(ps)
    ps.add_argument(
        "--search-groups", type=int, default=10,
        help="searching-stage replica groups (nutch-search only; the "
        "fig6 quick preset — the paper-scale 20x5 topology needs "
        "~30 nodes)",
    )
    ps.add_argument(
        "--replicas-per-group", type=int, default=4,
        help="replicas per searching group (nutch-search only)",
    )
    ps.add_argument("--intervals", type=int, default=6)
    ps.add_argument("--interval-s", type=float, default=30.0)
    ps.add_argument("--warmup-intervals", type=int, default=1)
    add_streaming_args(ps)
    ps.add_argument("--workers", type=_positive_int, default=1)
    add_backend_args(ps, distributed=True)
    ps.add_argument("--cache-dir", default=None)
    ps.add_argument("--verbose", action="store_true")
    ps.add_argument(
        "--aggregate", action="store_true",
        help="also print the seed-level aggregate table "
        "(mean ± CI across --seeds per policy and rate)",
    )

    pg = sub.add_parser(
        "aggregate",
        help="seed-level statistics over a sweep cache directory "
        "(reads its manifest.json)",
    )
    pg.add_argument(
        "--cache-dir", required=True,
        help="cache directory of a completed sweep (must hold a manifest)",
    )
    pg.add_argument(
        "--compare", default=None, metavar="DIR",
        help="second sweep cache to diff against: prints the manifest "
        "spec diff plus a joint table of paired per-seed differences "
        "(cache-dir minus DIR) for every shared (policy, rate) cell; "
        "shared cells run under different seed sets are an error",
    )
    pg.add_argument(
        "--metrics", default=None,
        help="comma-separated flattened metric names to tabulate "
        "(default: the two paper currencies, component p99 and "
        "overall mean)",
    )
    pg.add_argument(
        "--confidence", type=float, default=0.95,
        help="confidence level for the t and bootstrap intervals",
    )
    pg.add_argument(
        "--json", action="store_true",
        help="emit the full summary as JSON instead of a table",
    )
    pg.add_argument(
        "--gc", action="store_true",
        help="first remove point files not named by the manifest "
        "(orphans from older grids) and leftover temp files",
    )
    pg.add_argument(
        "--spool", default=None,
        help="with --gc: also reap stale artifacts (expired claims, "
        "dead-worker files, orphaned temp files) from this distributed "
        "sweep spool directory",
    )
    pg.add_argument(
        "--workers", type=_positive_int, default=1,
        help="workers for loading the cache's point files "
        "(the summary is identical for any value)",
    )
    add_backend_args(pg)

    pw = sub.add_parser(
        "worker",
        help="distributed sweep worker: claim and execute job files from "
        "a shared spool directory until its stop sentinel appears",
    )
    pw.add_argument("spool", help="shared spool directory")
    pw.add_argument(
        "--poll-interval", type=_positive_float, default=0.2, metavar="S",
        help="seconds between queue polls when idle (default 0.2)",
    )
    pw.add_argument(
        "--lease", type=_positive_float, default=None, metavar="S",
        help="claim heartbeat lease in seconds (default 30)",
    )
    pw.add_argument(
        "--max-jobs", type=_positive_int, default=None, metavar="N",
        help="exit after executing N jobs (default: run until stopped)",
    )
    pw.add_argument(
        "--stop-when-idle", action="store_true",
        help="exit when the queue drains instead of polling for more",
    )
    pw.add_argument(
        "--stop", action="store_true",
        help="write the stop sentinel (draining every worker) and exit",
    )
    pw.add_argument(
        "--clear-stop", action="store_true",
        help="remove a previously written stop sentinel and exit",
    )

    pc = sub.add_parser(
        "scenarios",
        help="list the registered workload scenarios "
        "(name, topology, description)",
    )
    pc.add_argument(
        "--shape-scale", type=float, default=None, dest="shape_scale",
        help="shape multiplier applied to the printed topology "
        "summaries (default 1.0)",
    )

    pv = sub.add_parser(
        "serve",
        help="live control-plane service: an open-loop arrival stream "
        "with PCS decisions between windows and an HTTP control "
        "surface (/status, /scenarios, /metrics, /sweeps, /shutdown)",
    )
    pv.add_argument(
        "--scenario", default="fanout-feed",
        help="registered scenario to serve (default fanout-feed)",
    )
    pv.add_argument(
        "--policy", default="PCS",
        help="policy name: Basic, RED-k, RI-p, ARI-p, Hedge[-ms], "
        "AHedge[-p], PCS (default PCS)",
    )
    pv.add_argument(
        "--rate", type=_positive_float, default=40.0, metavar="REQ_S",
        help="mean arrival rate of the open-loop stream (default 40)",
    )
    pv.add_argument(
        "--window-s", type=_positive_float, default=8.0, metavar="S",
        help="monitoring/decision window length in sim seconds "
        "(default 8)",
    )
    pv.add_argument("--seed", type=int, default=0)
    pv.add_argument(
        "--trace-profile", default="burst",
        choices=["stationary", "diurnal", "burst", "flash-crowd"],
        help="arrival profile replayed cyclically (default burst)",
    )
    pv.add_argument(
        "--trace-cycle", type=_positive_int, default=12, metavar="N",
        help="profile cycle length in windows (default 12)",
    )
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument(
        "--port", type=int, default=8092,
        help="control-surface port; 0 binds an ephemeral one "
        "(default 8092)",
    )
    pv.add_argument(
        "--dilation", type=_positive_float, default=1.0, metavar="X",
        help="sim seconds per wall second — >1 fast-forwards the live "
        "world (default 1.0, real time)",
    )
    pv.add_argument(
        "--max-windows", type=_positive_int, default=None, metavar="N",
        help="stop the stream after N windows (default: until "
        "/shutdown)",
    )
    pv.add_argument(
        "--retrain-every", type=int, default=0, metavar="N",
        help="refit the Eq. 1 predictor every N windows on rolling "
        "monitor data (default 0 = off)",
    )
    pv.add_argument(
        "--profiling-conditions", type=_positive_int, default=12,
        metavar="N",
        help="initial profiling campaign size (default 12; the batch "
        "default of 60 is slow to warm)",
    )
    pv.add_argument(
        "--nodes", type=_positive_int, default=None, metavar="N",
        help="cluster size override (default: scenario default)",
    )
    pv.add_argument(
        "--spool", default=None, metavar="DIR",
        help="shared spool directory offered to POSTed distributed "
        "sweeps",
    )
    pv.add_argument(
        "--shape-scale", type=float, default=None, dest="shape_scale",
        help="scenario shape multiplier (default 1.0)",
    )
    return parser


def _positive_float(text: str) -> float:
    """argparse type for durations that must be > 0 (poll interval, lease)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text!r}")
    return value


def _shape_scale(args) -> float:
    """The resolved --shape-scale for consumers without a sentinel."""
    return args.shape_scale if args.shape_scale is not None else 1.0


def _run_sweep(args) -> int:
    from repro.scenarios import get_scenario
    from repro.service.nutch import NutchConfig
    from repro.sim.sweep import (
        ParallelSweepRunner,
        SweepSpec,
        policy_from_name,
    )

    policies = tuple(
        policy_from_name(name) for name in args.policies.split(",") if name
    )
    rates = tuple(float(r) for r in args.rates.split(",") if r)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    for label, values in (
        ("--policies", policies), ("--rates", rates), ("--seeds", seeds)
    ):
        if not values:
            print(f"error: {label} must name at least one value", file=sys.stderr)
            return 2
    scenario = get_scenario(args.scenario)
    overrides = dict(
        n_nodes=(
            args.nodes
            if args.nodes is not None
            else int(scenario.runner_defaults.get("n_nodes", 16))
        ),
        arrival_rate=rates[0],
        interval_s=args.interval_s,
        n_intervals=args.intervals,
        warmup_intervals=args.warmup_intervals,
        seed=seeds[0],
        scale=_shape_scale(args),
        trace_profile=args.trace_profile,
        class_mix=args.class_mix,
        chunk_requests=args.chunk_requests,
        summary_mode=args.summary_mode,
    )
    if args.scenario == "nutch-search":
        overrides["nutch"] = NutchConfig(
            n_search_groups=args.search_groups,
            replicas_per_group=args.replicas_per_group,
        )
    spec = SweepSpec(
        base=scenario.runner_config(**overrides),
        policies=policies,
        arrival_rates=rates,
        seeds=seeds,
    )
    runner = ParallelSweepRunner(
        spec,
        workers=args.workers,
        cache=args.cache_dir,
        progress=(lambda p: print(p.render())) if args.verbose else None,
        backend=args.backend,
        chunk_size=args.chunk_size,
        spool=args.spool,
        wait_workers=args.wait_workers or 0,
    )
    result = runner.run()
    if not args.verbose:
        print(result.render())
    else:
        print(result.render().splitlines()[-1])
    if args.aggregate:
        print()
        print(result.summary().render_table())
    return 0


def _run_serve(args) -> int:
    import asyncio

    from repro.controlplane.service import LiveControlPlane, ServeConfig

    config = ServeConfig(
        scenario=args.scenario,
        policy=args.policy,
        arrival_rate=args.rate,
        window_s=args.window_s,
        seed=args.seed,
        trace_profile=args.trace_profile,
        trace_cycle=args.trace_cycle,
        host=args.host,
        port=args.port,
        dilation=args.dilation,
        max_windows=args.max_windows,
        retrain_every=args.retrain_every,
        n_profiling_conditions=args.profiling_conditions,
        n_nodes=args.nodes,
        spool=args.spool,
        scale=_shape_scale(args),
    )
    plane = LiveControlPlane(
        config, announce=lambda line: print(line, flush=True)
    )
    try:
        return asyncio.run(plane.run())
    except KeyboardInterrupt:
        return 0


def _run_aggregate(args) -> int:
    import os

    from repro.errors import ExperimentError
    from repro.sim.aggregate import (
        DEFAULT_TABLE_METRICS,
        AggregateConfig,
        SweepSummary,
    )
    from repro.sim.sweep import SweepCache

    # A reporting command must not mkdir its target as a side effect
    # (SweepCache's constructor creates missing roots for writers).
    if not os.path.isdir(args.cache_dir):
        print(f"error: no such cache directory: {args.cache_dir}", file=sys.stderr)
        return 2
    # Fail a typo'd --compare path *before* aggregating the primary
    # cache — on a large cache that aggregation is the expensive part.
    if args.compare is not None and not os.path.isdir(args.compare):
        print(
            f"error: no such cache directory: {args.compare}", file=sys.stderr
        )
        return 2
    cache = SweepCache(args.cache_dir)
    try:
        if args.gc:
            removed = cache.gc(spool=args.spool)
            # stderr: stdout must stay parseable (tables / --json).
            print(
                f"gc: removed {len(removed)} orphaned/temp file(s)",
                file=sys.stderr,
            )
        from repro.sim.backends import backend_from_name, io_bound_backend

        # Cache loads are tiny I/O-bound JSON reads: ``auto`` here means
        # inline for one worker and *threads* otherwise — never the
        # sweep's compute-tuned rule, which would spawn a process pool
        # (interpreter + numpy import per worker) to read small files.
        if args.backend in (None, "auto"):
            backend = None if args.workers == 1 else io_bound_backend(args.workers)
        else:
            backend = backend_from_name(
                args.backend,
                workers=args.workers,
                chunk_size=args.chunk_size,
            )
        summary = SweepSummary.from_cache(
            cache,
            AggregateConfig(confidence=args.confidence),
            backend=backend,
        )
        metrics = (
            [m for m in args.metrics.split(",") if m]
            if args.metrics
            else list(DEFAULT_TABLE_METRICS)
        )
        if args.compare is not None:
            return _run_compare(args, cache, summary, metrics, backend)
        if args.json:
            import json

            print(json.dumps(summary.to_dict(), sort_keys=True, indent=2))
        else:
            print(summary.render_table(metrics=metrics))
    except ExperimentError as exc:  # includes the SweepCacheError family
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _run_compare(args, cache, summary, metrics, backend) -> int:
    """``aggregate --compare DIR``: spec diff + joint paired-delta table.

    Exceptions propagate to ``_run_aggregate``'s handler so a missing
    manifest, a corrupt cache, or mismatched seed sets all surface as
    the same clean ``error:`` line (exit code 2).
    """
    from repro.sim.aggregate import AggregateConfig, SweepSummary
    from repro.sim.sweep import SweepCache

    other_cache = SweepCache(args.compare)
    other = SweepSummary.from_cache(
        other_cache,
        AggregateConfig(confidence=args.confidence),
        backend=backend,
    )
    spec_diff = cache.diff(other_cache)
    if args.json:
        import json

        payload = {
            "spec_diff": {k: list(v) for k, v in spec_diff.items()},
            "cells": [
                {
                    "policy": policy,
                    "arrival_rate": rate,
                    "diff": {m: s.to_dict() for m, s in stats.items()},
                }
                for (policy, rate), stats in summary.compare(
                    other, metrics=metrics
                ).items()
            ],
        }
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    if spec_diff:
        print("spec diff (this run vs other run):")
        for key in sorted(spec_diff):
            mine, theirs = spec_diff[key]
            print(f"  {key}: {mine!r} -> {theirs!r}")
        print()
    else:
        print("spec diff: none (identical grids)\n")
    print(summary.render_compare_table(other, metrics=metrics))
    return 0


def _run_worker(args) -> int:
    """``repro worker SPOOL``: same entrypoint as ``python -m repro.worker``."""
    from repro.errors import ReproError
    from repro.sim.distributed import (
        DEFAULT_LEASE_S,
        clear_stop,
        request_stop,
        run_worker,
    )

    try:
        if args.stop:
            request_stop(args.spool)
            print(f"stop sentinel written to {args.spool}")
            return 0
        if args.clear_stop:
            clear_stop(args.spool)
            print(f"stop sentinel cleared from {args.spool}")
            return 0
        executed = run_worker(
            args.spool,
            poll_interval_s=args.poll_interval,
            lease_s=args.lease if args.lease is not None else DEFAULT_LEASE_S,
            max_jobs=args.max_jobs,
            stop_when_idle=args.stop_when_idle,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("worker interrupted", file=sys.stderr)
        return 130
    print(f"worker exiting after {executed} job(s)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "fig5":
        from repro.experiments.fig5 import Fig5Config, run_fig5

        cfg = Fig5Config(
            seed=args.seed, scenario=args.scenario, scale=_shape_scale(args)
        )
        print(
            run_fig5(
                cfg,
                workers=args.workers,
                backend=args.backend,
                chunk_size=args.chunk_size,
            ).render()
        )
    elif args.command == "fig6":
        from repro.experiments.fig6 import Fig6Config, run_fig6
        from repro.service.nutch import NutchConfig

        seeds = (
            tuple(int(s) for s in args.seeds.split(",") if s)
            if args.seeds
            else ()
        )
        if args.scale == "paper":
            # Full scale = the scenario's own registered preset; a
            # scenario without one raises a named ConfigurationError
            # instead of silently running Nutch-shaped constants.
            cfg = Fig6Config(
                seed=args.seed,
                seeds=seeds,
                scenario=args.scenario,
                scale=args.shape_scale,
                paper_scale=True,
                trace_profile=args.trace_profile,
                class_mix=args.class_mix,
            )
        else:
            cfg = Fig6Config(
                arrival_rates=(10.0, 50.0, 200.0),
                n_nodes=16,
                n_intervals=6,
                warmup_intervals=1,
                seed=args.seed,
                seeds=seeds,
                scenario=args.scenario,
                scale=args.shape_scale,
                nutch=NutchConfig(n_search_groups=10, replicas_per_group=4),
                trace_profile=args.trace_profile,
                class_mix=args.class_mix,
            )
        result = run_fig6(
            cfg,
            verbose=args.verbose,
            workers=args.workers,
            cache_dir=args.cache_dir,
            backend=args.backend,
            chunk_size=args.chunk_size,
        )
        print(result.render())
        print(f"\n(wall time: {result.wall_time_s:.1f} s)")
    elif args.command == "fig7":
        from repro.experiments.fig7 import Fig7Config, run_fig7

        cfg = Fig7Config(
            seed=args.seed, scenario=args.scenario, scale=_shape_scale(args)
        )
        print(
            run_fig7(
                cfg,
                workers=args.workers,
                backend=args.backend,
                chunk_size=args.chunk_size,
            ).render()
        )
    elif args.command == "ablations":
        from repro.experiments.ablations import AblationConfig, run_all_ablations

        print(run_all_ablations(AblationConfig(seed=args.seed)))
    elif args.command == "quick":
        from repro.experiments.fig6 import run_quick_comparison

        result = run_quick_comparison(
            arrival_rate=args.rate,
            seed=args.seed,
            scenario=args.scenario,
            scale=_shape_scale(args),
            trace_profile=args.trace_profile,
            class_mix=args.class_mix,
            chunk_requests=args.chunk_requests,
            summary_mode=args.summary_mode,
        )
        print(result.render())
    elif args.command == "sweep":
        return _run_sweep(args)
    elif args.command == "aggregate":
        return _run_aggregate(args)
    elif args.command == "worker":
        return _run_worker(args)
    elif args.command == "scenarios":
        from repro.scenarios import all_scenarios

        for spec in all_scenarios():
            cfg = spec.runner_config(scale=_shape_scale(args))
            print(spec.describe(cfg))
            if spec.tags:
                print(f"    tags: {', '.join(spec.tags)}")
    elif args.command == "serve":
        return _run_serve(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
