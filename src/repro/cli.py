"""Command-line entry point: ``python -m repro <experiment>``.

Subcommands regenerate the paper's evaluation artifacts:

- ``fig5`` — prediction accuracy of the performance model;
- ``fig6`` — the six-policy latency comparison (``--scale quick`` for a
  minutes-scale subset, ``--scale paper`` for the full sweep);
- ``fig7`` — scheduler scalability;
- ``ablations`` — the design-choice ablations;
- ``quick`` — a Basic-vs-PCS taste at one arrival rate;
- ``sweep`` — an arbitrary policies × rates × seeds grid through the
  parallel sweep subsystem (:mod:`repro.sim.sweep`).

``fig5``/``fig6``/``fig7``/``sweep`` accept ``--workers N`` to fan
independent points out over processes (results are identical to the
serial path); ``fig6``/``sweep`` accept ``--cache-dir`` to memoize
completed points on disk so interrupted runs resume.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (separate for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro-pcs",
        description=(
            "Reproduction of 'PCS: Predictive Component-level Scheduling "
            "for Reducing Tail Latency in Cloud Online Services' (ICPP 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p5 = sub.add_parser("fig5", help="prediction-accuracy experiment")
    p5.add_argument("--seed", type=int, default=0)
    p5.add_argument(
        "--workers", type=int, default=1,
        help="processes for the per-workload campaigns (same numbers "
        "for any value)",
    )

    p6 = sub.add_parser("fig6", help="six-policy latency comparison")
    p6.add_argument(
        "--scale",
        choices=["quick", "paper"],
        default="quick",
        help="quick = 3 rates / small cluster; paper = full sweep",
    )
    p6.add_argument("--seed", type=int, default=7)
    p6.add_argument("--verbose", action="store_true")
    p6.add_argument(
        "--workers", type=int, default=1,
        help="processes for the (policy, rate) grid (bit-identical "
        "results for any value)",
    )
    p6.add_argument(
        "--cache-dir", default=None,
        help="memoize completed sweep points here; rerunning resumes",
    )

    p7 = sub.add_parser("fig7", help="scheduler scalability")
    p7.add_argument("--seed", type=int, default=0)
    p7.add_argument(
        "--workers", type=int, default=1,
        help="processes for grid points (keep 1 for faithful timings)",
    )

    pa = sub.add_parser("ablations", help="design-choice ablations")
    pa.add_argument("--seed", type=int, default=11)

    pq = sub.add_parser("quick", help="Basic-vs-PCS at one arrival rate")
    pq.add_argument("--rate", type=float, default=100.0)
    pq.add_argument("--seed", type=int, default=0)

    ps = sub.add_parser(
        "sweep",
        help="custom policies x rates x seeds grid via the parallel "
        "sweep subsystem",
    )
    ps.add_argument(
        "--policies", default="Basic,PCS",
        help="comma-separated legend names (Basic, RED-3, RED-5, "
        "RI-90, RI-99, PCS)",
    )
    ps.add_argument(
        "--rates", default="50,200",
        help="comma-separated arrival rates (req/s)",
    )
    ps.add_argument(
        "--seeds", default="0", help="comma-separated root seeds"
    )
    ps.add_argument("--nodes", type=int, default=16)
    ps.add_argument(
        "--search-groups", type=int, default=10,
        help="searching-stage replica groups (the fig6 quick preset; "
        "the paper-scale 20x5 topology needs ~30 nodes)",
    )
    ps.add_argument("--replicas-per-group", type=int, default=4)
    ps.add_argument("--intervals", type=int, default=6)
    ps.add_argument("--interval-s", type=float, default=30.0)
    ps.add_argument("--warmup-intervals", type=int, default=1)
    ps.add_argument("--workers", type=int, default=1)
    ps.add_argument("--cache-dir", default=None)
    ps.add_argument("--verbose", action="store_true")
    return parser


def _run_sweep(args) -> int:
    from repro.service.nutch import NutchConfig
    from repro.sim.runner import RunnerConfig
    from repro.sim.sweep import (
        ParallelSweepRunner,
        SweepSpec,
        policy_from_name,
    )

    policies = tuple(
        policy_from_name(name) for name in args.policies.split(",") if name
    )
    rates = tuple(float(r) for r in args.rates.split(",") if r)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s)
    for label, values in (
        ("--policies", policies), ("--rates", rates), ("--seeds", seeds)
    ):
        if not values:
            print(f"error: {label} must name at least one value", file=sys.stderr)
            return 2
    spec = SweepSpec(
        base=RunnerConfig(
            n_nodes=args.nodes,
            arrival_rate=rates[0],
            interval_s=args.interval_s,
            n_intervals=args.intervals,
            warmup_intervals=args.warmup_intervals,
            seed=seeds[0],
            nutch=NutchConfig(
                n_search_groups=args.search_groups,
                replicas_per_group=args.replicas_per_group,
            ),
        ),
        policies=policies,
        arrival_rates=rates,
        seeds=seeds,
    )
    runner = ParallelSweepRunner(
        spec,
        workers=args.workers,
        cache=args.cache_dir,
        progress=(lambda p: print(p.render())) if args.verbose else None,
    )
    result = runner.run()
    if not args.verbose:
        print(result.render())
    else:
        print(result.render().splitlines()[-1])
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "fig5":
        from repro.experiments.fig5 import Fig5Config, run_fig5

        print(run_fig5(Fig5Config(seed=args.seed), workers=args.workers).render())
    elif args.command == "fig6":
        from repro.experiments.fig6 import Fig6Config, run_fig6
        from repro.service.nutch import NutchConfig

        if args.scale == "paper":
            cfg = Fig6Config(seed=args.seed)
        else:
            cfg = Fig6Config(
                arrival_rates=(10.0, 50.0, 200.0),
                n_nodes=16,
                n_intervals=6,
                warmup_intervals=1,
                seed=args.seed,
                nutch=NutchConfig(n_search_groups=10, replicas_per_group=4),
            )
        result = run_fig6(
            cfg,
            verbose=args.verbose,
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
        print(result.render())
        print(f"\n(wall time: {result.wall_time_s:.1f} s)")
    elif args.command == "fig7":
        from repro.experiments.fig7 import Fig7Config, run_fig7

        print(run_fig7(Fig7Config(seed=args.seed), workers=args.workers).render())
    elif args.command == "ablations":
        from repro.experiments.ablations import AblationConfig, run_all_ablations

        print(run_all_ablations(AblationConfig(seed=args.seed)))
    elif args.command == "quick":
        from repro.experiments.fig6 import run_quick_comparison

        result = run_quick_comparison(arrival_rate=args.rate, seed=args.seed)
        print(result.render())
    elif args.command == "sweep":
        return _run_sweep(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
