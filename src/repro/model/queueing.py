"""M/G/1 expected latency — paper Eq. 2 (Pollaczek–Khinchine).

With arrival rate λ, mean service time x̄ = 1/µ, and squared coefficient
of variation C²ₓ of the service time::

    l = x̄ + λ(1 + C²ₓ) / (2µ²(1 − ρ)),   ρ = λ/µ              (Eq. 2)

The second term is the expected waiting time; when C²ₓ = 1 the formula
collapses to the M/M/1 sojourn ``1/(µ − λ)``, exactly as the paper
notes.  All functions have vectorised variants used by the
performance-matrix fast path.

Saturation handling: Eq. 2 diverges as ρ → 1.  The strict functions
raise :class:`~repro.errors.UnstableQueueError`; the ``*_array`` forms
take a ``rho_max`` cap (default 0.98) and evaluate saturated servers at
the cap — the predictor must return *some* finite, very-bad latency for
an overloaded node so the scheduler correctly ranks it last, which is
also what a real profiler's clipped estimate would do.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnstableQueueError

__all__ = [
    "utilisation",
    "mg1_waiting_time",
    "mg1_latency",
    "mm1_latency",
    "mg1_latency_array",
    "quickest_of_k_latency",
    "reissue_latency",
    "hedged_latency",
]

DEFAULT_RHO_MAX = 0.98


def utilisation(mean_service: float, arrival_rate: float) -> float:
    """Server utilisation ρ = λ·x̄."""
    if mean_service <= 0:
        raise UnstableQueueError(f"mean service must be > 0, got {mean_service}")
    if arrival_rate < 0:
        raise UnstableQueueError(f"arrival rate must be >= 0, got {arrival_rate}")
    return arrival_rate * mean_service


def mg1_waiting_time(mean_service: float, scv: float, arrival_rate: float) -> float:
    """Expected M/G/1 queueing delay (the second term of Eq. 2)."""
    rho = utilisation(mean_service, arrival_rate)
    if scv < 0:
        raise UnstableQueueError(f"scv must be >= 0, got {scv}")
    if rho >= 1.0:
        raise UnstableQueueError(
            f"unstable queue: rho = {rho:.3f} >= 1 "
            f"(lambda={arrival_rate:.3f}, mean={mean_service:.6f})"
        )
    mu = 1.0 / mean_service
    return arrival_rate * (1.0 + scv) / (2.0 * mu * mu * (1.0 - rho))


def mg1_latency(mean_service: float, scv: float, arrival_rate: float) -> float:
    """Eq. 2: expected sojourn time x̄ + W."""
    return mean_service + mg1_waiting_time(mean_service, scv, arrival_rate)


def mm1_latency(mean_service: float, arrival_rate: float) -> float:
    """The M/M/1 special case ``1/(µ − λ)`` (Eq. 2 with C²ₓ = 1)."""
    rho = utilisation(mean_service, arrival_rate)
    if rho >= 1.0:
        raise UnstableQueueError(f"unstable queue: rho = {rho:.3f} >= 1")
    mu = 1.0 / mean_service
    return 1.0 / (mu - arrival_rate)


def mg1_latency_array(
    mean_service,
    scv,
    arrival_rate,
    rho_max: float = DEFAULT_RHO_MAX,
) -> np.ndarray:
    """Vectorised, saturation-capped Eq. 2.

    Broadcasts ``mean_service``, ``scv`` and ``arrival_rate`` together;
    wherever ρ would reach ``rho_max`` the arrival rate is clipped to
    ``rho_max/x̄``, yielding a finite worst-case latency that still
    ranks saturated placements strictly worse than non-saturated ones
    (latency is increasing in ρ below the cap).
    """
    if not 0 < rho_max < 1:
        raise UnstableQueueError(f"rho_max must be in (0, 1), got {rho_max}")
    x = np.asarray(mean_service, dtype=np.float64)
    c2 = np.asarray(scv, dtype=np.float64)
    lam = np.asarray(arrival_rate, dtype=np.float64)
    if np.any(x <= 0):
        raise UnstableQueueError("mean service times must be positive")
    if np.any(c2 < 0):
        raise UnstableQueueError("scv must be >= 0")
    if np.any(lam < 0):
        raise UnstableQueueError("arrival rates must be >= 0")
    x, c2, lam = np.broadcast_arrays(x, c2, lam)
    rho = np.minimum(lam * x, rho_max)
    lam_eff = rho / x
    wait = lam_eff * (1.0 + c2) * x * x / (2.0 * (1.0 - rho))
    return x + wait


# ----------------------------------------------------------------------
# Policy-benefit transforms (§VI-C's analytic side)
# ----------------------------------------------------------------------
# The three duplication techniques of §VI-C cut the tail of one
# replica's sojourn at the price of extra induced load.  The closed
# forms below are exact for exponentially distributed sojourns (the
# M/M/1 case; memorylessness makes every cancellation argument a plain
# minimum of fresh exponentials) and are used as a first-order
# approximation otherwise — the sojourn fed in should already include
# the policy's induced load (``InducedLoad.replica_rate`` through
# Eq. 2), which is what makes the help→hurt crossover derivable: the
# benefit factor is load-free, the penalty grows with ρ.


def quickest_of_k_latency(sojourn, k: int) -> np.ndarray:
    """Expected latency of the quickest of ``k`` redundant copies.

    The minimum of ``k`` iid Exp(1/W) sojourns is Exp(k/W), so the
    expected latency is ``W/k`` — RED's benefit factor.  ``k`` must
    already be capped at the group's replica count (``min(copies, n)``,
    exactly :meth:`~repro.baselines.policies.InducedLoad
    .group_multiplier`'s cap).
    """
    if k < 1:
        raise UnstableQueueError(f"k must be >= 1, got {k}")
    return np.asarray(sojourn, dtype=np.float64) / float(k)


def reissue_latency(sojourn, quantile: float) -> np.ndarray:
    """Expected latency under reissue-at-the-``quantile``-threshold.

    For an Exp(1/W) sojourn with threshold ``T`` at the ``q``-quantile
    (``T = −W·ln(1−q)``): a fraction ``q`` completes below ``T`` with
    conditional mean ``(W·q − T(1−q))/q``; the rest reissues at ``T``
    and finishes after the minimum of the (memoryless) original and a
    fresh copy, mean ``T + W/2``.  The ``T`` terms cancel::

        E[L] = W·q − T(1−q) + (1−q)(T + W/2) = W(1+q)/2

    — the benefit factor ``(1+q)/2`` is threshold- and load-free, which
    is why percentile reissue trades a *fixed* latency discount against
    a *growing* utilisation penalty (the §VI-C crossover).
    """
    if not 0 < quantile < 1:
        raise UnstableQueueError(
            f"quantile must be in (0, 1), got {quantile}"
        )
    return np.asarray(sojourn, dtype=np.float64) * (1.0 + quantile) / 2.0


def hedged_latency(sojourn, hedge_delay_s: float) -> np.ndarray:
    """Expected latency under hedge-after-``hedge_delay_s``.

    Same argument as :func:`reissue_latency` with the *fixed* threshold
    ``T``: the hedged fraction is ``p = exp(−T/W)``, and::

        E[L] = W(1 − p) − T·p + p(T + W/2) = W(1 − exp(−T/W)/2)

    Unlike the percentile rule, the benefit factor is load-*dependent*
    — as W grows past T nearly every request hedges (p → 1, factor
    → 1/2) while the induced load approaches full duplication.
    """
    if hedge_delay_s < 0:
        raise UnstableQueueError(
            f"hedge_delay_s must be >= 0, got {hedge_delay_s}"
        )
    w = np.asarray(sojourn, dtype=np.float64)
    return w * (1.0 - np.exp(-hedge_delay_s / np.maximum(w, 1e-300)) / 2.0)
