"""M/G/1 expected latency — paper Eq. 2 (Pollaczek–Khinchine).

With arrival rate λ, mean service time x̄ = 1/µ, and squared coefficient
of variation C²ₓ of the service time::

    l = x̄ + λ(1 + C²ₓ) / (2µ²(1 − ρ)),   ρ = λ/µ              (Eq. 2)

The second term is the expected waiting time; when C²ₓ = 1 the formula
collapses to the M/M/1 sojourn ``1/(µ − λ)``, exactly as the paper
notes.  All functions have vectorised variants used by the
performance-matrix fast path.

Saturation handling: Eq. 2 diverges as ρ → 1.  The strict functions
raise :class:`~repro.errors.UnstableQueueError`; the ``*_array`` forms
take a ``rho_max`` cap (default 0.98) and evaluate saturated servers at
the cap — the predictor must return *some* finite, very-bad latency for
an overloaded node so the scheduler correctly ranks it last, which is
also what a real profiler's clipped estimate would do.
"""

from __future__ import annotations

import numpy as np

from repro.errors import UnstableQueueError

__all__ = [
    "utilisation",
    "mg1_waiting_time",
    "mg1_latency",
    "mm1_latency",
    "mg1_latency_array",
]

DEFAULT_RHO_MAX = 0.98


def utilisation(mean_service: float, arrival_rate: float) -> float:
    """Server utilisation ρ = λ·x̄."""
    if mean_service <= 0:
        raise UnstableQueueError(f"mean service must be > 0, got {mean_service}")
    if arrival_rate < 0:
        raise UnstableQueueError(f"arrival rate must be >= 0, got {arrival_rate}")
    return arrival_rate * mean_service


def mg1_waiting_time(mean_service: float, scv: float, arrival_rate: float) -> float:
    """Expected M/G/1 queueing delay (the second term of Eq. 2)."""
    rho = utilisation(mean_service, arrival_rate)
    if scv < 0:
        raise UnstableQueueError(f"scv must be >= 0, got {scv}")
    if rho >= 1.0:
        raise UnstableQueueError(
            f"unstable queue: rho = {rho:.3f} >= 1 "
            f"(lambda={arrival_rate:.3f}, mean={mean_service:.6f})"
        )
    mu = 1.0 / mean_service
    return arrival_rate * (1.0 + scv) / (2.0 * mu * mu * (1.0 - rho))


def mg1_latency(mean_service: float, scv: float, arrival_rate: float) -> float:
    """Eq. 2: expected sojourn time x̄ + W."""
    return mean_service + mg1_waiting_time(mean_service, scv, arrival_rate)


def mm1_latency(mean_service: float, arrival_rate: float) -> float:
    """The M/M/1 special case ``1/(µ − λ)`` (Eq. 2 with C²ₓ = 1)."""
    rho = utilisation(mean_service, arrival_rate)
    if rho >= 1.0:
        raise UnstableQueueError(f"unstable queue: rho = {rho:.3f} >= 1")
    mu = 1.0 / mean_service
    return 1.0 / (mu - arrival_rate)


def mg1_latency_array(
    mean_service,
    scv,
    arrival_rate,
    rho_max: float = DEFAULT_RHO_MAX,
) -> np.ndarray:
    """Vectorised, saturation-capped Eq. 2.

    Broadcasts ``mean_service``, ``scv`` and ``arrival_rate`` together;
    wherever ρ would reach ``rho_max`` the arrival rate is clipped to
    ``rho_max/x̄``, yielding a finite worst-case latency that still
    ranks saturated placements strictly worse than non-saturated ones
    (latency is increasing in ρ below the cap).
    """
    if not 0 < rho_max < 1:
        raise UnstableQueueError(f"rho_max must be in (0, 1), got {rho_max}")
    x = np.asarray(mean_service, dtype=np.float64)
    c2 = np.asarray(scv, dtype=np.float64)
    lam = np.asarray(arrival_rate, dtype=np.float64)
    if np.any(x <= 0):
        raise UnstableQueueError("mean service times must be positive")
    if np.any(c2 < 0):
        raise UnstableQueueError("scv must be >= 0")
    if np.any(lam < 0):
        raise UnstableQueueError("arrival rates must be >= 0")
    x, c2, lam = np.broadcast_arrays(x, c2, lam)
    rho = np.minimum(lam * x, rho_max)
    lam_eff = rho / x
    wait = lam_eff * (1.0 + c2) * x * x / (2.0 * (1.0 - rho))
    return x + wait
