"""The performance matrix ``L`` — paper Eq. 5 with Table III updates.

``L[i][j]`` is the predicted change in overall service latency when
component ``c_i`` migrates from its current node to node ``n_j``::

    L[i][j] = l_overall − l'_overall                           (Eq. 5)

where the primed latency applies Table III's contention updates:

=============================  ======================================
component                      updated contention vector ``U'``
=============================  ======================================
``c_i`` itself                 ``U_{n_j}``  (the target node's total)
any component on the origin    ``U − U_{c_i}``
any component on the target    ``U + U_{c_i}``
any other component            ``U``  (unchanged)
=============================  ======================================

Two implementations with identical results (property-tested):

``build(method="reference")``
    literal translation of the rules above — O(m·k) entries, each
    recomputing all m latencies; kept legible as the specification.

``build(method="fast")``
    the production path: per migrating component ``i`` it builds the
    ``(k, m)`` effective-latency sheet with three vectorised updates
    (origin column block, one scatter for every target node, the moved
    component's own column) and reduces stage maxima with one
    ``np.maximum.reduceat`` — no Python-level inner loops, following
    the vectorise-the-hot-path guidance of the HPC notes.

The matrix also tracks ``R[i][j]`` — the migrated component's *own*
latency reduction — because Algorithm 1 line 7 breaks ties on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError, SchedulingError
from repro.model.predictor import LatencyPredictor
from repro.model.service_latency import (
    exits_from_predecessors,
    stage_offsets,
    validate_predecessors,
)
from repro.service.component import ComponentClass

__all__ = ["MatrixInputs", "PerformanceMatrix"]


@dataclass
class MatrixInputs:
    """Everything Eq. 5 needs, in flat array form (matrix row order).

    Attributes
    ----------
    stage_of:
        ``(m,)`` stage index per component, non-decreasing.
    classes:
        Component class per component (length m).
    demands:
        ``(m, 4)`` per-component own demand ``U_ci``.
    assignment:
        ``(m,)`` current node index per component (the paper's A[m]).
    node_totals:
        ``(k, 4)`` estimated total resource consumption per node
        (all residents + background) — the monitor's node view.
    arrival_rates:
        ``(m,)`` per-component *induced* request arrival rate (req/s):
        the replica's nominal share of the service stream inflated by
        the active policy's duplicate load
        (:meth:`repro.baselines.policies.InducedLoad.replica_rate` —
        the predict phase folds the group-capped executed-copy
        multiplier in before building these inputs).  The M/G/1 stage
        therefore prices redundancy/reissue as the extra utilisation it
        really is.  For a policy that executes no duplicates the
        multiplier is exactly 1.0 and this is the historical
        policy-blind vector, bit for bit.
    node_limits:
        Optional ``(k,)`` cap on how many *components* each node can
        host (VM slots left after batch VMs).  ``None`` = unlimited.
        The scheduler never proposes a migration into a full node.
    group_of:
        Optional ``(m,)`` global replica-group id per component
        (non-decreasing, stage-major).  When given, the overall-latency
        objective uses the grouped Eqs. 3–4 (group mean, stage max) of
        :func:`repro.model.service_latency.grouped_overall_latency`;
        when ``None`` each component is its own group, which is exactly
        the paper's Eq. 3.
    stage_predecessors:
        Optional per-stage predecessor tuple
        (:attr:`~repro.service.topology.ServiceTopology.
        predecessor_indices`) for DAG topologies.  When given, the
        overall-latency objective composes stage maxima along the
        **critical path** instead of Eq. 4's chain sum, so ``L``
        entries weight a straggler by whether its stage actually sits
        on the predicted critical path — migrating a component on a
        side branch that the join never waits on predicts (correctly)
        no overall gain.  ``None`` keeps the exact chain sum, which is
        what a chain DAG's critical path degenerates to.
    class_weights:
        Optional ``(C,)`` request-class mix weights (sum to 1).  Given
        together with ``class_stage_participation``, the overall-latency
        objective becomes the mix-weighted average of per-class
        critical paths (:func:`repro.model.service_latency.
        mixed_class_overall_latency`) — a straggler on a stage only a
        light class visits is discounted by that class's weight.
        ``None`` (with participation also ``None``) keeps the exact
        homogeneous objective.
    class_stage_participation:
        Optional ``(C, S)`` per-class stage participation probabilities
        in ``[0, 1]``; required iff ``class_weights`` is given.
    class_service_scales:
        Optional ``(C,)`` positive per-class service-demand multipliers
        (:attr:`repro.service.classes.RequestClass.service_scale`): a
        class with scale ``σ_c`` works every stage it visits ``σ_c×``
        longer, so its per-class composition sees
        ``stage_lats · participation[c] · σ_c``.  Only meaningful with
        ``class_weights``; ``None`` means all ones (bit-identical to
        the unscaled objective).
    """

    stage_of: np.ndarray
    classes: List[ComponentClass]
    demands: np.ndarray
    assignment: np.ndarray
    node_totals: np.ndarray
    arrival_rates: np.ndarray
    node_limits: Optional[np.ndarray] = None
    group_of: Optional[np.ndarray] = None
    stage_predecessors: Optional[Tuple[Tuple[int, ...], ...]] = None
    class_weights: Optional[np.ndarray] = None
    class_stage_participation: Optional[np.ndarray] = None
    class_service_scales: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.stage_of = np.asarray(self.stage_of, dtype=np.int64)
        self.demands = np.asarray(self.demands, dtype=np.float64)
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        self.node_totals = np.asarray(self.node_totals, dtype=np.float64)
        self.arrival_rates = np.asarray(self.arrival_rates, dtype=np.float64)
        m = self.stage_of.size
        if len(self.classes) != m:
            raise ModelError("classes length must match stage_of")
        if self.demands.shape != (m, 4):
            raise ModelError(f"demands must be (m, 4), got {self.demands.shape}")
        if self.assignment.shape != (m,):
            raise ModelError("assignment must be (m,)")
        if self.node_totals.ndim != 2 or self.node_totals.shape[1] != 4:
            raise ModelError("node_totals must be (k, 4)")
        if self.arrival_rates.shape != (m,):
            raise ModelError("arrival_rates must be (m,)")
        k = self.node_totals.shape[0]
        if np.any(self.assignment < 0) or np.any(self.assignment >= k):
            raise ModelError("assignment indices out of node range")
        if np.any(np.diff(self.stage_of) < 0):
            raise ModelError("stage_of must be non-decreasing (stage-major order)")
        if np.any(self.demands < 0) or np.any(self.node_totals < 0):
            raise ModelError("demands and node_totals must be >= 0")
        if np.any(self.arrival_rates < 0):
            raise ModelError("arrival_rates must be >= 0")
        if self.node_limits is not None:
            self.node_limits = np.asarray(self.node_limits, dtype=np.int64)
            if self.node_limits.shape != (k,):
                raise ModelError("node_limits must be (k,)")
            counts = np.bincount(self.assignment, minlength=k)
            if np.any(counts > self.node_limits):
                raise ModelError(
                    "current assignment already exceeds node_limits"
                )
        if self.group_of is not None:
            self.group_of = np.asarray(self.group_of, dtype=np.int64)
            if self.group_of.shape != (m,):
                raise ModelError("group_of must be (m,)")
            if np.any(np.diff(self.group_of) < 0):
                raise ModelError("group_of must be non-decreasing")
            # Every group must live inside a single stage.
            for g in np.unique(self.group_of):
                stages = np.unique(self.stage_of[self.group_of == g])
                if stages.size != 1:
                    raise ModelError(f"group {g} spans stages {stages}")
        if self.stage_predecessors is not None:
            # The one shared DAG validator (service_latency), so the
            # invariant cannot drift between the matrix and the
            # composition functions.
            self.stage_predecessors = validate_predecessors(
                self.stage_predecessors, int(self.stage_of.max()) + 1
            )
        if (self.class_weights is None) != (
            self.class_stage_participation is None
        ):
            raise ModelError(
                "class_weights and class_stage_participation must be "
                "given together"
            )
        if self.class_weights is not None:
            self.class_weights = np.asarray(
                self.class_weights, dtype=np.float64
            )
            self.class_stage_participation = np.asarray(
                self.class_stage_participation, dtype=np.float64
            )
            n_stages = int(self.stage_of.max()) + 1
            c = self.class_weights.size
            if self.class_weights.ndim != 1 or c == 0:
                raise ModelError("class_weights must be a non-empty 1-D array")
            if np.any(self.class_weights < 0) or not np.isclose(
                self.class_weights.sum(), 1.0
            ):
                raise ModelError(
                    "class_weights must be non-negative and sum to 1"
                )
            if self.class_stage_participation.shape != (c, n_stages):
                raise ModelError(
                    "class_stage_participation must be (C, S) = "
                    f"({c}, {n_stages}), got "
                    f"{self.class_stage_participation.shape}"
                )
            if np.any(self.class_stage_participation < 0) or np.any(
                self.class_stage_participation > 1
            ):
                raise ModelError(
                    "class_stage_participation must lie in [0, 1]"
                )
        if self.class_service_scales is not None:
            if self.class_weights is None:
                raise ModelError(
                    "class_service_scales requires class_weights"
                )
            self.class_service_scales = np.asarray(
                self.class_service_scales, dtype=np.float64
            )
            if self.class_service_scales.shape != (self.class_weights.size,):
                raise ModelError(
                    "class_service_scales must be (C,) = "
                    f"({self.class_weights.size},), got "
                    f"{self.class_service_scales.shape}"
                )
            if np.any(self.class_service_scales <= 0) or not np.all(
                np.isfinite(self.class_service_scales)
            ):
                raise ModelError(
                    "class_service_scales must be finite and > 0"
                )

    def component_counts(self) -> np.ndarray:
        """Components currently hosted per node."""
        return np.bincount(self.assignment, minlength=self.k)

    @property
    def m(self) -> int:
        """Number of components."""
        return int(self.stage_of.size)

    @property
    def k(self) -> int:
        """Number of nodes."""
        return int(self.node_totals.shape[0])

    def copy(self) -> "MatrixInputs":
        """Deep copy (scheduling mutates assignment/node_totals)."""
        return MatrixInputs(
            stage_of=self.stage_of.copy(),
            classes=list(self.classes),
            demands=self.demands.copy(),
            assignment=self.assignment.copy(),
            node_totals=self.node_totals.copy(),
            arrival_rates=self.arrival_rates.copy(),
            node_limits=(
                None if self.node_limits is None else self.node_limits.copy()
            ),
            group_of=None if self.group_of is None else self.group_of.copy(),
            stage_predecessors=self.stage_predecessors,
            class_weights=(
                None
                if self.class_weights is None
                else self.class_weights.copy()
            ),
            class_stage_participation=(
                None
                if self.class_stage_participation is None
                else self.class_stage_participation.copy()
            ),
            class_service_scales=(
                None
                if self.class_service_scales is None
                else self.class_service_scales.copy()
            ),
        )


class PerformanceMatrix:
    """Builds and incrementally maintains ``L`` (and the tie-break ``R``)."""

    def __init__(self, inputs: MatrixInputs, predictor: LatencyPredictor) -> None:
        self.inputs = inputs
        self.predictor = predictor
        group_of = (
            inputs.group_of
            if inputs.group_of is not None
            else np.arange(inputs.m, dtype=np.int64)
        )
        self._group_offsets = stage_offsets(group_of)
        self._group_sizes = np.diff(
            np.append(self._group_offsets, inputs.m)
        ).astype(np.float64)
        self._stage_offsets_groups = stage_offsets(
            inputs.stage_of[self._group_offsets]
        )
        # Group ordinal (0..G-1) of every component, for incremental
        # group-mean updates in entry().
        self._group_ordinal = (
            np.searchsorted(self._group_offsets, np.arange(inputs.m), side="right")
            - 1
        )
        # With one component per group (the paper's exact Eq. 3) the
        # group-mean reduction is the identity — skip it on hot paths.
        self._trivial_groups = bool(np.all(self._group_sizes == 1.0))
        # DAG topologies compose stage maxima along the critical path;
        # None keeps the exact chain sum (bit-identical to pre-DAG).
        # Predecessors were validated by MatrixInputs; exits are
        # precomputed here because _compose sits on the greedy loop's
        # innermost path and must not re-derive them per call.
        self._dag_preds = inputs.stage_predecessors
        if self._dag_preds is not None:
            self._dag_exits = exits_from_predecessors(self._dag_preds)
        # Request-class mix: None keeps the exact homogeneous objective
        # (bit-identical to pre-class builds); with a mix, _compose
        # averages per-class critical paths by weight.  Per-class
        # service scales fold into the participation factors once here
        # (None keeps the unscaled factors bit-identical).
        self._mix_weights = inputs.class_weights
        self._mix_participation = inputs.class_stage_participation
        if (
            self._mix_participation is not None
            and inputs.class_service_scales is not None
        ):
            self._mix_participation = (
                self._mix_participation
                * inputs.class_service_scales[:, None]
            )
        # Class-batched index lists, computed once.
        self._class_rows: Dict[ComponentClass, np.ndarray] = {}
        for cls in set(inputs.classes):
            rows = np.array(
                [i for i, c in enumerate(inputs.classes) if c is cls], dtype=np.int64
            )
            self._class_rows[cls] = rows
        self.L: Optional[np.ndarray] = None
        self.R: Optional[np.ndarray] = None
        self._refresh_base()

    # ------------------------------------------------------------------
    # base state
    # ------------------------------------------------------------------
    def _contention_now(self) -> np.ndarray:
        """Per-component current contention: node total minus own demand."""
        inp = self.inputs
        u = inp.node_totals[inp.assignment] - inp.demands
        return np.maximum(u, 0.0)

    def _latencies_full(self, contention: np.ndarray) -> np.ndarray:
        """Latency of every component under an ``(m, 4)`` contention array."""
        inp = self.inputs
        out = np.empty(inp.m, dtype=np.float64)
        for cls, rows in self._class_rows.items():
            means = self.predictor.predict_mean_service(cls, contention[rows])
            out[rows] = _mg1(
                means,
                self.predictor.scv(cls),
                inp.arrival_rates[rows],
                self.predictor.rho_max,
            )
        return out

    def _compose(self, stage_max: np.ndarray) -> np.ndarray:
        """Overall latency from per-stage maxima: Eq. 4's chain sum, or
        the critical path when the inputs carry a stage DAG.  Works on
        ``(S,)`` and batched ``(..., S)`` sheets alike.

        Inlines :func:`~repro.model.service_latency.dag_overall_latency`
        against the pre-validated predecessors and precomputed exit set
        — this runs per candidate evaluation inside the greedy loop, so
        the public function's per-call validation would be pure waste.

        With a request-class mix
        (:attr:`MatrixInputs.class_weights`/``class_stage_participation``)
        the objective is the mix-weighted average of per-class
        compositions, each over participation-scaled stage latencies —
        the matrix form of :func:`~repro.model.service_latency.
        mixed_class_overall_latency`, looped over the (small) class
        axis so the batched sheets stay vectorised.
        """
        if self._mix_weights is not None:
            overall = np.zeros(stage_max.shape[:-1], dtype=np.float64)
            for c in range(self._mix_weights.size):
                overall = overall + self._mix_weights[c] * self._compose_one(
                    stage_max * self._mix_participation[c]
                )
            return overall
        return self._compose_one(stage_max)

    def _compose_one(self, stage_max: np.ndarray) -> np.ndarray:
        """One composition pass (chain sum or critical path)."""
        if self._dag_preds is None:
            return stage_max.sum(axis=-1)
        completion = np.empty_like(stage_max)
        for si, ps in enumerate(self._dag_preds):
            if not ps:
                completion[..., si] = stage_max[..., si]
                continue
            ready = completion[..., ps[0]]
            for p in ps[1:]:
                ready = np.maximum(ready, completion[..., p])
            completion[..., si] = ready + stage_max[..., si]
        overall = completion[..., self._dag_exits[0]]
        for si in self._dag_exits[1:]:
            overall = np.maximum(overall, completion[..., si])
        return overall

    def _overall(self, latencies: np.ndarray) -> float:
        """Grouped Eqs. 3–4 (exactly the paper's form when each
        component is its own group)."""
        means = (
            np.add.reduceat(latencies, self._group_offsets) / self._group_sizes
        )
        return float(
            self._compose(np.maximum.reduceat(means, self._stage_offsets_groups))
        )

    def _refresh_base(self) -> None:
        self._u_now = self._contention_now()
        self.base_latencies = self._latencies_full(self._u_now)
        self._base_group_means = (
            np.add.reduceat(self.base_latencies, self._group_offsets)
            / self._group_sizes
        )
        self.base_overall = float(
            self._compose(
                np.maximum.reduceat(
                    self._base_group_means, self._stage_offsets_groups
                )
            )
        )

    @property
    def current_latencies(self) -> np.ndarray:
        """Predicted per-component latency under the current allocation."""
        return self.base_latencies.copy()

    @property
    def current_overall(self) -> float:
        """Predicted overall service latency (Eq. 4) right now."""
        return self.base_overall

    # ------------------------------------------------------------------
    # single entry (specification; also used by Algorithm 2 updates)
    # ------------------------------------------------------------------
    def entry(self, i: int, j: int) -> tuple[float, float]:
        """Exact ``(L[i][j], R[i][j])`` for one candidate migration.

        Incremental: only components on the origin and target nodes
        change latency (Table III), so only their groups' means — and
        only the stage maxima over the cached group-mean vector — are
        recomputed.  Matches the full recomputation bit-for-bit (see
        the reference build, which calls this for every cell).
        """
        inp = self.inputs
        if not (0 <= i < inp.m and 0 <= j < inp.k):
            raise ModelError(f"entry ({i}, {j}) out of range")
        origin = int(inp.assignment[i])
        if j == origin:
            return 0.0, 0.0
        d_i = inp.demands[i]
        affected = np.flatnonzero(
            (inp.assignment == origin) | (inp.assignment == j)
        )
        u_aff = self._u_now[affected].copy()
        on_origin = inp.assignment[affected] == origin
        u_aff[on_origin] = np.maximum(u_aff[on_origin] - d_i, 0.0)
        u_aff[~on_origin] = u_aff[~on_origin] + d_i
        self_pos = int(np.searchsorted(affected, i))
        u_aff[self_pos] = inp.node_totals[j]  # Table III row 1: U' = U_nj
        l_aff = self._latencies_subset(affected, u_aff)
        # Incremental group means: subtract old contributions, add new.
        means = self._base_group_means.copy()
        groups = self._group_ordinal[affected]
        delta = (l_aff - self.base_latencies[affected]) / self._group_sizes[groups]
        np.add.at(means, groups, delta)
        l_overall_new = float(
            self._compose(np.maximum.reduceat(means, self._stage_offsets_groups))
        )
        return (
            float(self.base_overall - l_overall_new),
            float(self.base_latencies[i] - l_aff[self_pos]),
        )

    def _latencies_subset(
        self, rows: np.ndarray, contention: np.ndarray
    ) -> np.ndarray:
        """Latencies of selected components under given contention rows."""
        inp = self.inputs
        out = np.empty(rows.size, dtype=np.float64)
        if len(self._class_rows) == 1:
            cls = next(iter(self._class_rows))
            means = self.predictor.predict_mean_service(cls, contention)
            return _mg1(
                means,
                self.predictor.scv(cls),
                inp.arrival_rates[rows],
                self.predictor.rho_max,
            )
        classes = inp.classes
        for cls, _ in self._class_rows.items():
            sel = np.array(
                [p for p, r in enumerate(rows) if classes[int(r)] is cls],
                dtype=np.int64,
            )
            if sel.size == 0:
                continue
            means = self.predictor.predict_mean_service(cls, contention[sel])
            out[sel] = _mg1(
                means,
                self.predictor.scv(cls),
                inp.arrival_rates[rows[sel]],
                self.predictor.rho_max,
            )
        return out

    # ------------------------------------------------------------------
    # full builds
    # ------------------------------------------------------------------
    def build(self, method: str = "fast") -> "PerformanceMatrix":
        """Compute the full ``L`` and ``R``; returns self."""
        if method == "reference":
            self._build_reference()
        elif method == "fast":
            self._build_fast()
        else:
            raise ModelError(f"unknown build method {method!r}")
        return self

    def _build_reference(self) -> None:
        inp = self.inputs
        L = np.zeros((inp.m, inp.k))
        R = np.zeros((inp.m, inp.k))
        for i in range(inp.m):
            for j in range(inp.k):
                L[i, j], R[i, j] = self.entry(i, j)
        self.L, self.R = L, R

    def _arrival_means(self) -> dict:
        """Mean service time of each class for a *new arrival* on every
        node (Table III row 1) — one batched prediction per class."""
        return {
            cls: self.predictor.predict_mean_service(cls, self.inputs.node_totals)
            for cls in self._class_rows
        }

    def _row(self, i: int, arrival_means: dict) -> tuple:
        """Vectorised ``(L[i, :], R[i, :])`` for one migrating component."""
        inp = self.inputs
        m, k = inp.m, inp.k
        origin = int(inp.assignment[i])
        d_i = inp.demands[i]
        # Latency of every component if it loses / gains c_i's demand.
        l_minus = self._latencies_full(np.maximum(self._u_now - d_i, 0.0))
        l_plus = self._latencies_full(self._u_now + d_i)
        # c_i's own latency on each target node.
        cls_i = inp.classes[i]
        l_self = _mg1(
            arrival_means[cls_i],
            self.predictor.scv(cls_i),
            inp.arrival_rates[i],
            self.predictor.rho_max,
        )
        # Effective latency sheet: rows = target node j, cols = comp.
        sheet = np.broadcast_to(self.base_latencies, (k, m)).copy()
        on_origin = inp.assignment == origin
        sheet[:, on_origin] = l_minus[on_origin]
        # Components on the target node j gain c_i's demand.
        sheet[inp.assignment, np.arange(m)] = l_plus
        # The migrating component itself.
        sheet[:, i] = l_self
        if self._trivial_groups:
            group_means = sheet
        else:
            group_means = (
                np.add.reduceat(sheet, self._group_offsets, axis=1)
                / self._group_sizes
            )
        stage_max = np.maximum.reduceat(
            group_means, self._stage_offsets_groups, axis=1
        )
        l_row = self.base_overall - self._compose(stage_max)
        r_row = self.base_latencies[i] - l_self
        l_row[origin] = 0.0
        r_row = np.asarray(r_row, dtype=np.float64)
        r_row[origin] = 0.0
        return l_row, r_row

    def _build_fast(self) -> None:
        inp = self.inputs
        L = np.zeros((inp.m, inp.k))
        R = np.zeros((inp.m, inp.k))
        arrival_means = self._arrival_means()
        for i in range(inp.m):
            L[i, :], R[i, :] = self._row(i, arrival_means)
        self.L, self.R = L, R

    # ------------------------------------------------------------------
    # migration + Algorithm 2 incremental update
    # ------------------------------------------------------------------
    def apply_migration(self, i: int, j: int) -> int:
        """Mutate state as if ``c_i`` moved to node ``j``; returns origin.

        Updates the allocation array and the node totals, then refreshes
        the base latencies — O(m), matching the paper's claim that the
        matrix need not be rebuilt from scratch inside the loop.
        """
        inp = self.inputs
        origin = int(inp.assignment[i])
        if origin == j:
            raise SchedulingError(f"no-op migration of component {i}")
        inp.node_totals[origin] = np.maximum(
            inp.node_totals[origin] - inp.demands[i], 0.0
        )
        inp.node_totals[j] = inp.node_totals[j] + inp.demands[i]
        inp.assignment[i] = j
        self._refresh_base()
        return origin

    def algorithm2_update(
        self, moved: int, n_origin: int, n_destination: int, candidates: Iterable[int]
    ) -> None:
        """Paper Algorithm 2: refresh the affected rows and columns.

        After migrating ``c_moved``: (a) the ``n_origin`` and
        ``n_destination`` columns change for every candidate row, and
        (b) every candidate component hosted on either node gets its
        whole row refreshed.  Entries of non-candidate rows and the
        moved component's row are left stale, exactly as in the paper
        (the moved component is no longer a candidate).
        """
        if self.L is None or self.R is None:
            raise SchedulingError("matrix must be built before updating")
        inp = self.inputs
        cand = sorted(set(int(c) for c in candidates) - {int(moved)})
        arrival_means = self._arrival_means()
        row_refreshed = set()
        for r in cand:
            if int(inp.assignment[r]) in (n_origin, n_destination):
                self.L[r, :], self.R[r, :] = self._row(r, arrival_means)
                row_refreshed.add(r)
        column_rows = np.array(
            [r for r in cand if r not in row_refreshed], dtype=np.int64
        )
        for c in (n_origin, n_destination):
            self._update_column(c, column_rows, arrival_means)

    def _update_column(
        self, col: int, rows: np.ndarray, arrival_means: dict
    ) -> None:
        """Batched exact recomputation of ``L[rows, col]``/``R[rows, col]``.

        Equivalent to calling :meth:`entry` per row (tested equal) but
        amortises the work: all (row, affected-component) latency pairs
        go through one class-batched prediction, and the per-row stage
        maxima reduce over one ``(n_rows, G)`` group-means sheet.
        """
        inp = self.inputs
        rows = rows[inp.assignment[rows] != col]
        if rows.size == 0:
            return
        n_rows = rows.size
        # (pair_row, pair_comp): components whose latency changes for
        # each candidate migration row -> col.
        pair_row: list = []
        pair_comp: list = []
        pair_sign: list = []  # -1 = loses d_r (origin), +1 = gains (target)
        on_col = np.flatnonzero(inp.assignment == col)
        comps_on = {
            int(a): np.flatnonzero(inp.assignment == a)
            for a in np.unique(inp.assignment[rows])
        }
        for p, r in enumerate(rows):
            origin_comps = comps_on[int(inp.assignment[r])]
            pair_row.extend([p] * origin_comps.size)
            pair_comp.extend(origin_comps.tolist())
            pair_sign.extend([-1] * origin_comps.size)
            pair_row.extend([p] * on_col.size)
            pair_comp.extend(on_col.tolist())
            pair_sign.extend([+1] * on_col.size)
        pair_row = np.asarray(pair_row, dtype=np.int64)
        pair_comp = np.asarray(pair_comp, dtype=np.int64)
        pair_sign = np.asarray(pair_sign, dtype=np.float64)
        d = inp.demands[rows[pair_row]]
        u_pairs = np.maximum(
            self._u_now[pair_comp] + pair_sign[:, None] * d, 0.0
        )
        # The migrating component itself sees the target node's total
        # (Table III row 1) — it appears in its origin block; overwrite.
        self_mask = pair_comp == rows[pair_row]
        u_pairs[self_mask] = inp.node_totals[col]
        l_pairs = self._latencies_subset(pair_comp, u_pairs)
        # Per-row group means with the pair deltas applied.
        means = np.tile(self._base_group_means, (n_rows, 1))
        groups = self._group_ordinal[pair_comp]
        delta = (l_pairs - self.base_latencies[pair_comp]) / self._group_sizes[
            groups
        ]
        np.add.at(means, (pair_row, groups), delta)
        stage_max = np.maximum.reduceat(means, self._stage_offsets_groups, axis=1)
        self.L[rows, col] = self.base_overall - self._compose(stage_max)
        # Self-gain for the tie-break matrix.
        l_self = np.empty(n_rows)
        for cls in self._class_rows:
            sel = np.array(
                [p for p, r in enumerate(rows) if inp.classes[int(r)] is cls],
                dtype=np.int64,
            )
            if sel.size == 0:
                continue
            l_self[sel] = _mg1(
                arrival_means[cls][col],
                self.predictor.scv(cls),
                inp.arrival_rates[rows[sel]],
                self.predictor.rho_max,
            )
        self.R[rows, col] = self.base_latencies[rows] - l_self

    def rebuild_rows(self, rows: Sequence[int]) -> None:
        """Exact refresh of whole rows (used by the 'full' update mode)."""
        if self.L is None or self.R is None:
            raise SchedulingError("matrix must be built before updating")
        arrival_means = self._arrival_means()
        for r in rows:
            self.L[int(r), :], self.R[int(r), :] = self._row(int(r), arrival_means)


def _mg1(means, scv, lam, rho_max):
    from repro.model.queueing import mg1_latency_array

    return mg1_latency_array(means, scv, lam, rho_max=rho_max)
