"""The performance predictor — the paper's §IV in full.

- :mod:`repro.model.regression` — per-resource regression models
  ``RG(U_sr)`` (step 1 of the basic model).
- :mod:`repro.model.combined` — the relevance-weighted combination
  ``RG_ST(U)`` of paper **Eq. 1** (step 2).
- :mod:`repro.model.queueing` — the M/G/1 expected latency of **Eq. 2**
  (and its M/M/1 special case), scalar and vectorised.
- :mod:`repro.model.service_latency` — stage max / service sum of
  **Eqs. 3–4**.
- :mod:`repro.model.predictor` — per-class latency predictors gluing
  the above together (plus a ground-truth oracle for ablations).
- :mod:`repro.model.matrix` — the performance matrix ``L`` of **Eq. 5**
  with the Table III contention-update rules; a transparent reference
  implementation and a NumPy-vectorised fast path, tested equal.
- :mod:`repro.model.training` — training sets, fitting pipeline and the
  prediction-error metrics of Fig. 5.
"""

from repro.model.combined import CombinedServiceTimeModel
from repro.model.matrix import MatrixInputs, PerformanceMatrix
from repro.model.predictor import (
    LatencyPredictor,
    OraclePredictor,
    TrainedPredictor,
)
from repro.model.queueing import (
    mg1_latency,
    mg1_latency_array,
    mg1_waiting_time,
    mm1_latency,
    utilisation,
)
from repro.model.regression import PolynomialRegressor, Regressor
from repro.model.service_latency import overall_latency, stage_latencies
from repro.model.training import (
    TrainingSet,
    error_buckets,
    mean_absolute_percentage_error,
    train_combined_model,
)

__all__ = [
    "Regressor",
    "PolynomialRegressor",
    "CombinedServiceTimeModel",
    "mg1_latency",
    "mg1_latency_array",
    "mg1_waiting_time",
    "mm1_latency",
    "utilisation",
    "stage_latencies",
    "overall_latency",
    "LatencyPredictor",
    "TrainedPredictor",
    "OraclePredictor",
    "MatrixInputs",
    "PerformanceMatrix",
    "TrainingSet",
    "train_combined_model",
    "mean_absolute_percentage_error",
    "error_buckets",
]
