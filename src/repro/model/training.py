"""Training sets, the fitting pipeline, and Fig. 5's error metrics.

The paper trains the regression models "based on the historical running
information" from profiling runs (§VI-B): pairs of (monitored contention
vector, observed mean service time).  :class:`TrainingSet` accumulates
those pairs; :func:`train_combined_model` fits the Eq. 1 model and
estimates the class SCV; the error helpers compute the quantities
Fig. 5 reports (per-case percentage error and the <3 %/<5 %/<8 %
bucket fractions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.errors import ModelError
from repro.model.combined import CombinedServiceTimeModel

__all__ = [
    "TrainingSet",
    "train_combined_model",
    "mean_absolute_percentage_error",
    "error_buckets",
]


class TrainingSet:
    """Accumulated (contention vector, observed service time) pairs.

    ``max_samples`` turns the set into a bounded rolling window: once
    full, each :meth:`add` evicts the oldest pair.  The live control
    plane's predict phase retrains on such a window so a long-running
    service tracks contention drift with O(window) memory; the default
    (``None``, unbounded) is the batch profiling pipeline's behaviour,
    unchanged.
    """

    def __init__(self, max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples < 1:
            raise ModelError(
                f"max_samples must be >= 1 or None, got {max_samples}"
            )
        self.max_samples = max_samples
        self._u: List[np.ndarray] = []
        self._x: List[float] = []

    def add(self, contention: ResourceVector, service_time: float) -> None:
        """Record one profiling observation (evicting the oldest when
        the rolling window is full)."""
        if service_time <= 0:
            raise ModelError(f"service time must be positive, got {service_time}")
        if self.max_samples is not None and len(self._x) >= self.max_samples:
            drop = len(self._x) - self.max_samples + 1
            del self._u[:drop], self._x[:drop]
        self._u.append(contention.as_array().copy())
        self._x.append(float(service_time))

    def extend(
        self, pairs: Iterable[Tuple[ResourceVector, float]]
    ) -> "TrainingSet":
        """Record many observations; returns self."""
        for u, x in pairs:
            self.add(u, x)
        return self

    def __len__(self) -> int:
        return len(self._x)

    @property
    def contention(self) -> np.ndarray:
        """``(n, 4)`` contention matrix."""
        if not self._u:
            raise ModelError("training set is empty")
        return np.stack(self._u)

    @property
    def service_times(self) -> np.ndarray:
        """``(n,)`` observed service times."""
        if not self._x:
            raise ModelError("training set is empty")
        return np.asarray(self._x, dtype=np.float64)

    @property
    def scv(self) -> float:
        """Sample squared coefficient of variation of the targets."""
        x = self.service_times
        mean = x.mean()
        if mean <= 0:
            raise ModelError("mean service time must be positive")
        return float(x.var() / (mean * mean))

    def split(self, train_fraction: float, rng: np.random.Generator):
        """Random train/test split → ``(train, test)`` TrainingSets."""
        if not 0 < train_fraction < 1:
            raise ModelError(
                f"train_fraction must be in (0, 1), got {train_fraction}"
            )
        n = len(self)
        if n < 2:
            raise ModelError("need >= 2 samples to split")
        idx = rng.permutation(n)
        cut = max(1, min(n - 1, int(round(train_fraction * n))))
        train, test = TrainingSet(), TrainingSet()
        for part, indices in ((train, idx[:cut]), (test, idx[cut:])):
            for i in indices:
                part._u.append(self._u[i])
                part._x.append(self._x[i])
        return train, test


def train_combined_model(
    training: TrainingSet,
    regressor_factory=None,
) -> Tuple[CombinedServiceTimeModel, float]:
    """Fit the Eq. 1 model; returns ``(model, scv estimate)``."""
    model = CombinedServiceTimeModel(regressor_factory=regressor_factory)
    model.fit(training.contention, training.service_times)
    return model, training.scv


def mean_absolute_percentage_error(predicted, observed) -> float:
    """MAPE in percent — the paper's 'average prediction error'."""
    p = np.asarray(predicted, dtype=np.float64)
    o = np.asarray(observed, dtype=np.float64)
    if p.shape != o.shape or p.size == 0:
        raise ModelError("predicted/observed must be same non-empty shape")
    if np.any(o <= 0):
        raise ModelError("observed values must be positive")
    return float(np.mean(np.abs(p - o) / o) * 100.0)


def error_buckets(
    percent_errors, thresholds=(3.0, 5.0, 8.0)
) -> Dict[float, float]:
    """Fraction of cases with error below each threshold (Fig. 5's
    '63.33 % / 82.22 % / 96.67 % below 3 % / 5 % / 8 %')."""
    e = np.asarray(percent_errors, dtype=np.float64)
    if e.size == 0:
        raise ModelError("no errors to bucket")
    if np.any(e < 0):
        raise ModelError("percentage errors must be >= 0")
    return {float(t): float(np.mean(e < t)) for t in thresholds}
