"""Latency predictors: per-class service-time models + Eq. 2.

Two implementations of the same interface:

:class:`TrainedPredictor`
    what PCS actually runs — one :class:`CombinedServiceTimeModel`
    (Eq. 1) per component class, fitted from monitored profiling
    samples, plus a per-class SCV estimate for Eq. 2.

:class:`OraclePredictor`
    an ablation upper bound that reads the ground-truth interference
    model directly (perfect service-time knowledge); the gap between
    the two isolates how much scheduling quality prediction error
    costs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping

import numpy as np

from repro.errors import ModelError
from repro.interference.ground_truth import InterferenceModel
from repro.model.combined import CombinedServiceTimeModel
from repro.model.queueing import DEFAULT_RHO_MAX, mg1_latency_array
from repro.service.component import Component, ComponentClass

__all__ = ["LatencyPredictor", "TrainedPredictor", "OraclePredictor"]


class LatencyPredictor(ABC):
    """Predicts service times and Eq. 2 latencies per component class."""

    rho_max: float = DEFAULT_RHO_MAX

    @abstractmethod
    def predict_mean_service(
        self, cls: ComponentClass, contention: np.ndarray
    ) -> np.ndarray:
        """Mean service time for ``(n, 4)`` contention vectors → ``(n,)``."""

    @abstractmethod
    def scv(self, cls: ComponentClass) -> float:
        """Squared coefficient of variation used in Eq. 2 for the class."""

    def predict_latency(
        self,
        cls: ComponentClass,
        contention: np.ndarray,
        arrival_rate,
    ) -> np.ndarray:
        """Eq. 2 expected latency under the given per-server arrival rate."""
        mean = self.predict_mean_service(cls, contention)
        return mg1_latency_array(
            mean, self.scv(cls), arrival_rate, rho_max=self.rho_max
        )


class TrainedPredictor(LatencyPredictor):
    """The production predictor: Eq. 1 models fitted per class.

    Parameters
    ----------
    models:
        One fitted :class:`CombinedServiceTimeModel` per component
        class appearing in the service.
    scvs:
        Per-class service-time SCV estimates (from profiling; the
        paper derives mean and variance from the interval's predicted
        service times, §IV-B).
    rho_max:
        Saturation cap for Eq. 2 (see :mod:`repro.model.queueing`).
    """

    def __init__(
        self,
        models: Mapping[ComponentClass, CombinedServiceTimeModel],
        scvs: Mapping[ComponentClass, float],
        rho_max: float = DEFAULT_RHO_MAX,
        capacity=None,
    ) -> None:
        if not models:
            raise ModelError("TrainedPredictor needs at least one class model")
        for cls, model in models.items():
            if not model.is_fitted:
                raise ModelError(f"model for class {cls.value} is not fitted")
        missing = set(models) - set(scvs)
        if missing:
            raise ModelError(f"missing SCV estimates for {sorted(c.value for c in missing)}")
        for cls, scv in scvs.items():
            if scv < 0:
                raise ModelError(f"scv for {cls.value} must be >= 0, got {scv}")
        self.models: Dict[ComponentClass, CombinedServiceTimeModel] = dict(models)
        self._scvs = dict(scvs)
        self.rho_max = float(rho_max)
        # Contention can never physically exceed the node's saturation
        # levels, and the regression models never saw values beyond
        # them either — clip to stay inside the trained region instead
        # of extrapolating the polynomial (matches what a monitored
        # counter would report on saturated hardware).
        from repro.cluster.node import NodeCapacity

        self._cap = (capacity or NodeCapacity()).vector.as_array()

    def _model(self, cls: ComponentClass) -> CombinedServiceTimeModel:
        model = self.models.get(cls)
        if model is None:
            raise ModelError(f"no trained model for class {cls.value}")
        return model

    def predict_mean_service(self, cls, contention):
        u = np.clip(np.atleast_2d(contention), 0.0, self._cap)
        return self._model(cls).predict(u)

    def scv(self, cls: ComponentClass) -> float:
        return self._scvs[cls]


class OraclePredictor(LatencyPredictor):
    """Ground-truth predictor (ablation upper bound).

    Wraps the simulator's interference model: given a component class's
    base distribution, the true mean service time under contention ``U``
    is ``base_mean · f_cls(U)`` exactly.
    """

    def __init__(
        self,
        interference: InterferenceModel,
        representatives: Mapping[ComponentClass, Component],
        rho_max: float = DEFAULT_RHO_MAX,
    ) -> None:
        if not representatives:
            raise ModelError("OraclePredictor needs class representatives")
        self.interference = interference
        self.representatives = dict(representatives)
        self.rho_max = float(rho_max)

    def _rep(self, cls: ComponentClass) -> Component:
        rep = self.representatives.get(cls)
        if rep is None:
            raise ModelError(f"no representative for class {cls.value}")
        return rep

    def predict_mean_service(self, cls, contention):
        rep = self._rep(cls)
        u = np.atleast_2d(np.asarray(contention, dtype=np.float64))
        return rep.base_mean * self.interference.inflation_array(cls, u)

    def scv(self, cls: ComponentClass) -> float:
        return self._rep(cls).base_scv
