"""The combined service-time model ``RG_ST(U)`` — paper Eq. 1.

Training fits one single-resource regressor per shared-resource class
and computes each model's *relevance* weight ``w_sr`` — the paper's
"relevance between the contention information of shared resource sr and
c's service time", which we realise as the absolute Pearson correlation
on the training set.  Prediction is the weight-normalised combination::

    RG_ST(U) = (Σ_sr w_sr · RG_sr(U_sr)) / (Σ_sr w_sr)          (Eq. 1)
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.cluster.resources import RESOURCE_KINDS, ResourceKind, ResourceVector
from repro.errors import ModelError, NotFittedError
from repro.model.regression import PolynomialRegressor, Regressor

__all__ = ["CombinedServiceTimeModel"]


def _pearson_abs(u: np.ndarray, x: np.ndarray) -> float:
    """|Pearson correlation|, defined as 0 for constant inputs."""
    if u.std() == 0 or x.std() == 0:
        return 0.0
    return float(abs(np.corrcoef(u, x)[0, 1]))


class CombinedServiceTimeModel:
    """Eq. 1: relevance-weighted combination of four per-resource models.

    Parameters
    ----------
    regressor_factory:
        Callable producing a fresh :class:`Regressor` per resource;
        defaults to degree-2 :class:`PolynomialRegressor`.
    """

    def __init__(
        self, regressor_factory: Optional[Callable[[], Regressor]] = None
    ) -> None:
        self._factory = regressor_factory or (lambda: PolynomialRegressor(degree=2))
        self.regressors: Dict[ResourceKind, Regressor] = {}
        self.weights: Dict[ResourceKind, float] = {}
        self.n_samples = 0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has succeeded."""
        return bool(self.regressors)

    def fit(self, contention: np.ndarray, service_times: np.ndarray) -> "CombinedServiceTimeModel":
        """Fit on ``(n, 4)`` contention vectors and ``(n,)`` service times.

        Column order must match :data:`repro.cluster.resources.RESOURCE_KINDS`
        (core, cache, diskBW, networkBW).
        """
        u = np.asarray(contention, dtype=np.float64)
        x = np.asarray(service_times, dtype=np.float64).ravel()
        if u.ndim != 2 or u.shape[1] != len(RESOURCE_KINDS):
            raise ModelError(f"contention must be (n, 4), got {u.shape}")
        if u.shape[0] != x.size:
            raise ModelError(
                f"sample mismatch: {u.shape[0]} vectors vs {x.size} times"
            )
        if np.any(x <= 0):
            raise ModelError("service times must be positive")
        regressors: Dict[ResourceKind, Regressor] = {}
        weights: Dict[ResourceKind, float] = {}
        for kind in RESOURCE_KINDS:
            col = u[:, kind.index]
            reg = self._factory()
            reg.fit(col, x)
            regressors[kind] = reg
            weights[kind] = _pearson_abs(col, x)
        if all(w == 0.0 for w in weights.values()):
            # Degenerate profiling run (no contention varied at all):
            # fall back to equal weights so Eq. 1 stays defined.
            weights = {kind: 1.0 for kind in RESOURCE_KINDS}
        self.regressors = regressors
        self.weights = weights
        self.n_samples = int(x.size)
        return self

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict(self, contention: np.ndarray) -> np.ndarray:
        """Eq. 1 prediction for ``(n, 4)`` contention vectors → ``(n,)``.

        Predictions are floored at a small positive value: a service
        time can never be negative, but an extrapolating polynomial
        could produce one.
        """
        if not self.is_fitted:
            raise NotFittedError("combined model has not been fitted")
        u = np.asarray(contention, dtype=np.float64)
        if u.ndim != 2 or u.shape[1] != len(RESOURCE_KINDS):
            raise ModelError(f"contention must be (n, 4), got {u.shape}")
        total_weight = sum(self.weights.values())
        acc = np.zeros(u.shape[0])
        for kind in RESOURCE_KINDS:
            w = self.weights[kind]
            if w == 0.0:
                continue
            acc += w * self.regressors[kind].predict(u[:, kind.index])
        return np.maximum(acc / total_weight, 1e-9)

    def predict_one(self, contention: ResourceVector) -> float:
        """Scalar convenience wrapper over :meth:`predict`."""
        return float(self.predict(contention.as_array()[np.newaxis, :])[0])

    def normalised_weights(self) -> Dict[ResourceKind, float]:
        """Weights scaled to sum to 1 (for reporting/tests)."""
        if not self.is_fitted:
            raise NotFittedError("combined model has not been fitted")
        total = sum(self.weights.values())
        return {k: w / total for k, w in self.weights.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.is_fitted:
            return "CombinedServiceTimeModel(unfitted)"
        ws = ", ".join(
            f"{k.value}={w:.2f}" for k, w in self.normalised_weights().items()
        )
        return f"CombinedServiceTimeModel(n={self.n_samples}, weights: {ws})"
