"""Single-resource regression models ``RG(U_sr)`` (paper §IV-A, step 1).

Each model maps *one* scalar of contention information (core usage, or
cache MPKI, or disk MB/s, or network MB/s) to a component's service
time.  The paper leaves the regression family open ("a regression
model"); we use ridge-regularised polynomial least squares, which

* is exactly linear regression at ``degree=1``;
* captures the mild super-linearity of contention penalties at
  ``degree=2`` (the default);
* fits in closed form with one ``scipy.linalg.lstsq`` call and predicts
  vectorised over NumPy arrays — no iterative optimiser, per the
  HPC-guide preference for simple, measurable kernels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ModelError, NotFittedError

__all__ = ["Regressor", "PolynomialRegressor"]


class Regressor(ABC):
    """A one-dimensional regression model ``x = RG(u)``."""

    @abstractmethod
    def fit(self, u: np.ndarray, x: np.ndarray) -> "Regressor":
        """Fit on training pairs; returns self for chaining."""

    @abstractmethod
    def predict(self, u) -> np.ndarray:
        """Predict service times for contention values ``u``."""

    @property
    @abstractmethod
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has succeeded."""


class PolynomialRegressor(Regressor):
    """Ridge-regularised polynomial least squares in one variable.

    Parameters
    ----------
    degree:
        Polynomial degree (1 = straight line, 2 = default quadratic).
    ridge:
        L2 penalty on the non-constant coefficients; the tiny default
        only guards against degenerate designs (e.g. a resource whose
        contention never varied during profiling).

    Notes
    -----
    Features are standardised internally (zero mean, unit variance) so
    the ridge penalty is scale-free: core usage lives in [0, 1] while
    disk bandwidth lives in [0, 300] MB/s.
    """

    def __init__(self, degree: int = 2, ridge: float = 1e-8) -> None:
        if degree < 1:
            raise ModelError(f"degree must be >= 1, got {degree}")
        if ridge < 0:
            raise ModelError(f"ridge must be >= 0, got {ridge}")
        self.degree = int(degree)
        self.ridge = float(ridge)
        self._coef: np.ndarray | None = None
        self._u_mean = 0.0
        self._u_scale = 1.0
        self.n_samples = 0

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    @property
    def coef(self) -> np.ndarray:
        """Fitted coefficients, constant term first (standardised basis)."""
        if self._coef is None:
            raise NotFittedError("regressor has not been fitted")
        return self._coef.copy()

    def _design(self, u: np.ndarray) -> np.ndarray:
        z = (u - self._u_mean) / self._u_scale
        return np.vander(z, self.degree + 1, increasing=True)

    def fit(self, u, x) -> "PolynomialRegressor":
        u = np.asarray(u, dtype=np.float64).ravel()
        x = np.asarray(x, dtype=np.float64).ravel()
        if u.size != x.size:
            raise ModelError(f"length mismatch: {u.size} inputs vs {x.size} targets")
        if u.size < self.degree + 1:
            raise ModelError(
                f"need at least {self.degree + 1} samples for degree "
                f"{self.degree}, got {u.size}"
            )
        if not (np.all(np.isfinite(u)) and np.all(np.isfinite(x))):
            raise ModelError("training data must be finite")
        self._u_mean = float(u.mean())
        scale = float(u.std())
        self._u_scale = scale if scale > 0 else 1.0
        design = self._design(u)
        # Ridge via augmented normal equations: penalise everything but
        # the intercept.
        penalty = np.sqrt(self.ridge) * np.eye(self.degree + 1)
        penalty[0, 0] = 0.0
        a = np.vstack([design, penalty])
        b = np.concatenate([x, np.zeros(self.degree + 1)])
        coef, *_ = np.linalg.lstsq(a, b, rcond=None)
        self._coef = coef
        self.n_samples = int(u.size)
        return self

    def predict(self, u) -> np.ndarray:
        if self._coef is None:
            raise NotFittedError("regressor has not been fitted")
        arr = np.asarray(u, dtype=np.float64)
        scalar = arr.ndim == 0
        out = self._design(arr.ravel()) @ self._coef
        return out.reshape(arr.shape) if not scalar else out.reshape(())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"n={self.n_samples}" if self.is_fitted else "unfitted"
        return f"PolynomialRegressor(degree={self.degree}, {state})"
