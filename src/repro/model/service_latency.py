"""Topology latency — paper Eqs. 3 and 4.

Given per-component expected latencies ``l_i``, a stage's latency is the
max over its parallel components (Eq. 3) and the service's overall
latency is the sum over its sequential stages (Eq. 4).  The hot path
works on a flat ``(m,)`` latency array plus a ``(m,)`` stage-index array
(matrix row order), so the segment-max reduces in one
``np.maximum.reduceat`` call.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError

__all__ = ["stage_latencies", "overall_latency", "stage_offsets"]


def stage_offsets(stage_of: np.ndarray) -> np.ndarray:
    """Start offset of each stage inside a stage-major component array.

    ``stage_of`` must be non-decreasing (matrix row order guarantees
    it); returns the offsets usable with ``np.maximum.reduceat``.
    """
    stage_of = np.asarray(stage_of)
    if stage_of.ndim != 1 or stage_of.size == 0:
        raise ModelError("stage_of must be a non-empty 1-D array")
    if np.any(np.diff(stage_of) < 0):
        raise ModelError("stage_of must be non-decreasing (stage-major order)")
    changes = np.flatnonzero(np.diff(stage_of)) + 1
    return np.concatenate([[0], changes])


def stage_latencies(latencies: np.ndarray, stage_of: np.ndarray) -> np.ndarray:
    """Eq. 3 per stage: ``l_stage = max_i l_i`` over the stage's components."""
    l = np.asarray(latencies, dtype=np.float64)
    stage_of = np.asarray(stage_of)
    if l.shape != stage_of.shape:
        raise ModelError(
            f"shape mismatch: latencies {l.shape} vs stage_of {stage_of.shape}"
        )
    offsets = stage_offsets(stage_of)
    return np.maximum.reduceat(l, offsets)


def overall_latency(latencies: np.ndarray, stage_of: np.ndarray) -> float:
    """Eq. 4: sum of the per-stage maxima."""
    return float(stage_latencies(latencies, stage_of).sum())


def grouped_overall_latency(
    latencies: np.ndarray, group_of: np.ndarray, stage_of: np.ndarray
) -> float:
    """Eqs. 3–4 generalised to replica groups.

    In the paper every component of a stage serves every request, so
    Eq. 3 is a plain max over components.  In a topology with replica
    *groups* (interchangeable servers sharing one shard), a request is
    served by **one** replica per group, so the group's expected
    request latency is the *mean* over its replicas; Eq. 3's max then
    ranges over groups.  With one component per group
    (``group_of = arange(m)``) this reduces exactly to the paper's
    formula — property-tested in ``tests/model``.
    """
    l = np.asarray(latencies, dtype=np.float64)
    group_of = np.asarray(group_of)
    stage_of = np.asarray(stage_of)
    if not (l.shape == group_of.shape == stage_of.shape):
        raise ModelError("latencies, group_of and stage_of must align")
    g_offsets = stage_offsets(group_of)  # group ids are non-decreasing too
    sizes = np.diff(np.append(g_offsets, l.size))
    means = np.add.reduceat(l, g_offsets) / sizes
    stage_of_group = stage_of[g_offsets]
    s_offsets = stage_offsets(stage_of_group)
    return float(np.maximum.reduceat(means, s_offsets).sum())
