"""Topology latency — paper Eqs. 3 and 4, generalised to request DAGs.

Given per-component expected latencies ``l_i``, a stage's latency is the
max over its parallel components (Eq. 3) and the service's overall
latency is the sum over its sequential stages (Eq. 4).  The hot path
works on a flat ``(m,)`` latency array plus a ``(m,)`` stage-index array
(matrix row order), so the segment-max reduces in one
``np.maximum.reduceat`` call.

With a DAG topology (:class:`~repro.service.topology.ServiceTopology`
with skip edges or parallel branches), Eq. 4's sum becomes the
**critical path** over the stage DAG: a stage starts when its slowest
predecessor completes, and the overall latency is the max over the exit
stages' completion times (:func:`dag_overall_latency`).  On a chain the
critical path *is* the sum of stages, so the chain entry points below
stay the exact paper formulas.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import ModelError

__all__ = [
    "stage_latencies",
    "overall_latency",
    "stage_offsets",
    "grouped_stage_latencies",
    "grouped_overall_latency",
    "validate_predecessors",
    "exits_from_predecessors",
    "dag_completion_times",
    "dag_overall_latency",
    "mixed_class_overall_latency",
]


def stage_offsets(stage_of: np.ndarray) -> np.ndarray:
    """Start offset of each stage inside a stage-major component array.

    ``stage_of`` must be non-decreasing (matrix row order guarantees
    it); returns the offsets usable with ``np.maximum.reduceat``.
    """
    stage_of = np.asarray(stage_of)
    if stage_of.ndim != 1 or stage_of.size == 0:
        raise ModelError("stage_of must be a non-empty 1-D array")
    if np.any(np.diff(stage_of) < 0):
        raise ModelError("stage_of must be non-decreasing (stage-major order)")
    changes = np.flatnonzero(np.diff(stage_of)) + 1
    return np.concatenate([[0], changes])


def stage_latencies(latencies: np.ndarray, stage_of: np.ndarray) -> np.ndarray:
    """Eq. 3 per stage: ``l_stage = max_i l_i`` over the stage's components."""
    l = np.asarray(latencies, dtype=np.float64)
    stage_of = np.asarray(stage_of)
    if l.shape != stage_of.shape:
        raise ModelError(
            f"shape mismatch: latencies {l.shape} vs stage_of {stage_of.shape}"
        )
    offsets = stage_offsets(stage_of)
    return np.maximum.reduceat(l, offsets)


def overall_latency(latencies: np.ndarray, stage_of: np.ndarray) -> float:
    """Eq. 4: sum of the per-stage maxima."""
    return float(stage_latencies(latencies, stage_of).sum())


def grouped_stage_latencies(
    latencies: np.ndarray, group_of: np.ndarray, stage_of: np.ndarray
) -> np.ndarray:
    """Eq. 3 generalised to replica groups: per-stage maxima of
    per-group means.

    A request is served by **one** replica per group, so the group's
    expected request latency is the *mean* over its replicas; Eq. 3's
    max then ranges over the stage's groups.  Returns the ``(S,)``
    per-stage latencies, composable by chain sum
    (:func:`grouped_overall_latency`) or along a stage DAG
    (:func:`dag_overall_latency`) — the analytic crossover predictor
    (:func:`repro.experiments.analysis.predicted_crossover_rate`)
    composes induced-load sojourns exactly this way.
    """
    l = np.asarray(latencies, dtype=np.float64)
    group_of = np.asarray(group_of)
    stage_of = np.asarray(stage_of)
    if not (l.shape == group_of.shape == stage_of.shape):
        raise ModelError("latencies, group_of and stage_of must align")
    g_offsets = stage_offsets(group_of)  # group ids are non-decreasing too
    sizes = np.diff(np.append(g_offsets, l.size))
    means = np.add.reduceat(l, g_offsets) / sizes
    stage_of_group = stage_of[g_offsets]
    s_offsets = stage_offsets(stage_of_group)
    return np.maximum.reduceat(means, s_offsets)


def grouped_overall_latency(
    latencies: np.ndarray, group_of: np.ndarray, stage_of: np.ndarray
) -> float:
    """Eqs. 3–4 generalised to replica groups.

    In the paper every component of a stage serves every request, so
    Eq. 3 is a plain max over components.  In a topology with replica
    *groups* (interchangeable servers sharing one shard), the per-stage
    reduction is :func:`grouped_stage_latencies` (group mean, stage
    max); Eq. 4 then sums the stages.  With one component per group
    (``group_of = arange(m)``) this reduces exactly to the paper's
    formula — property-tested in ``tests/model``.
    """
    return float(
        grouped_stage_latencies(latencies, group_of, stage_of).sum()
    )


def validate_predecessors(
    predecessors: Sequence[Sequence[int]], n_stages: int
) -> Tuple[Tuple[int, ...], ...]:
    """Normalise a per-stage predecessor structure to int tuples.

    The one shared validator of the DAG invariant — each stage lists
    *distinct, earlier* stage indices (definition order is the
    topological order) — used by the composition functions here and by
    :class:`repro.model.matrix.MatrixInputs`, so the rule cannot
    drift between consumers.
    """
    preds = tuple(tuple(int(p) for p in ps) for ps in predecessors)
    if len(preds) != n_stages:
        raise ModelError(
            f"predecessors has {len(preds)} entries for {n_stages} stages"
        )
    for si, ps in enumerate(preds):
        if len(set(ps)) != len(ps) or any(not 0 <= p < si for p in ps):
            raise ModelError(
                f"stage {si} predecessors {ps} must be distinct earlier "
                "stage indices (definition order is the topological order)"
            )
    return preds


def exits_from_predecessors(
    preds: Tuple[Tuple[int, ...], ...]
) -> Tuple[int, ...]:
    """Exit stages (no successor) of a validated predecessor structure.

    The one shared derivation for the model layer — used by
    :func:`dag_overall_latency` per call and precomputed once by
    :class:`repro.model.matrix.PerformanceMatrix` — so exit semantics
    cannot drift between the objective and its hot-path inline.
    """
    has_successor = [False] * len(preds)
    for ps in preds:
        for p in ps:
            has_successor[p] = True
    return tuple(si for si, used in enumerate(has_successor) if not used)


def dag_completion_times(
    stage_lats: np.ndarray, predecessors: Sequence[Sequence[int]]
) -> np.ndarray:
    """Per-stage completion times along the stage DAG.

    ``stage_lats`` is ``(..., S)`` — per-stage latencies, with any
    leading batch dimensions (the matrix's ``(k, S)`` sheets reduce in
    one call).  ``predecessors[s]`` lists the earlier stage indices
    stage ``s`` waits on (empty = entry stage).  Returns the same-shape
    array of ``completion(s) = max_p completion(p) + stage_lats[s]``.
    """
    lats = np.asarray(stage_lats, dtype=np.float64)
    if lats.ndim < 1 or lats.shape[-1] == 0:
        raise ModelError("stage_lats must have a non-empty stage axis")
    preds = validate_predecessors(predecessors, lats.shape[-1])
    return _completion_times(lats, preds)


def _completion_times(lats: np.ndarray, preds) -> np.ndarray:
    """The completion recursion over already-validated predecessors."""
    completion = np.empty_like(lats)
    for si, ps in enumerate(preds):
        if not ps:
            completion[..., si] = lats[..., si]
            continue
        ready = completion[..., ps[0]]
        for p in ps[1:]:
            ready = np.maximum(ready, completion[..., p])
        completion[..., si] = ready + lats[..., si]
    return completion


def dag_overall_latency(
    stage_lats: np.ndarray, predecessors: Sequence[Sequence[int]]
) -> np.ndarray:
    """Critical-path overall latency over the stage DAG (Eq. 4's DAG form).

    The max over the completion times of the exit stages (stages no
    other stage waits on).  For a chain (``predecessors[s] == (s−1,)``)
    the single exit's completion is exactly the running sum of stage
    latencies — the paper's Eq. 4.  Shape: ``stage_lats`` minus its
    last axis (a scalar ``float`` for 1-D input).
    """
    lats = np.asarray(stage_lats, dtype=np.float64)
    if lats.ndim < 1 or lats.shape[-1] == 0:
        raise ModelError("stage_lats must have a non-empty stage axis")
    preds = validate_predecessors(predecessors, lats.shape[-1])
    completion = _completion_times(lats, preds)
    exits = exits_from_predecessors(preds)
    overall = completion[..., exits[0]]
    for si in exits[1:]:
        overall = np.maximum(overall, completion[..., si])
    if overall.ndim == 0:
        return float(overall)
    return overall


def mixed_class_overall_latency(
    stage_lats: np.ndarray,
    class_weights: np.ndarray,
    class_stage_participation: np.ndarray,
    predecessors: "Sequence[Sequence[int]] | None" = None,
    class_service_scales: "np.ndarray | None" = None,
) -> np.ndarray:
    """Mix-weighted overall latency under class-conditional stage DAGs.

    Each request class ``c`` sees stage ``s`` with probability
    ``class_stage_participation[c, s]``; its expected contribution from
    that stage is the participation-weighted stage latency, and its
    overall latency composes those per Eq. 4 — the chain sum when
    ``predecessors`` is ``None``, the DAG critical path otherwise.  The
    service-level prediction is the mix-weighted average over classes::

        l_overall = Σ_c w_c · Compose(stage_lats ∘ participation[c] · σ_c)

    ``stage_lats`` is ``(..., S)`` with any leading batch dimensions
    (the matrix's ``(k, S)`` sheets go through in one call per class);
    ``class_weights`` is ``(C,)`` summing to 1; participation is
    ``(C, S)`` in ``[0, 1]``.  ``class_service_scales`` is an optional
    ``(C,)`` positive multiplier ``σ_c`` on each class's service demand
    (:attr:`repro.service.classes.RequestClass.service_scale` — a heavy
    class works every stage it visits ``σ_c×`` longer); ``None`` means
    all ones.  With one class at full participation and unit scale this
    is exactly :func:`dag_overall_latency` / the chain sum.
    """
    lats = np.asarray(stage_lats, dtype=np.float64)
    w = np.asarray(class_weights, dtype=np.float64)
    part = np.asarray(class_stage_participation, dtype=np.float64)
    if lats.ndim < 1 or lats.shape[-1] == 0:
        raise ModelError("stage_lats must have a non-empty stage axis")
    s = lats.shape[-1]
    if w.ndim != 1 or w.size == 0:
        raise ModelError("class_weights must be a non-empty 1-D array")
    if part.shape != (w.size, s):
        raise ModelError(
            f"class_stage_participation must be (C, S) = ({w.size}, {s}), "
            f"got {part.shape}"
        )
    if np.any(w < 0) or not np.isclose(w.sum(), 1.0):
        raise ModelError("class_weights must be non-negative and sum to 1")
    if np.any(part < 0) or np.any(part > 1):
        raise ModelError("class_stage_participation must lie in [0, 1]")
    scales = None
    if class_service_scales is not None:
        scales = np.asarray(class_service_scales, dtype=np.float64)
        if scales.shape != (w.size,):
            raise ModelError(
                f"class_service_scales must be (C,) = ({w.size},), "
                f"got {scales.shape}"
            )
        if np.any(scales <= 0) or not np.all(np.isfinite(scales)):
            raise ModelError("class_service_scales must be finite and > 0")
    preds = (
        None
        if predecessors is None
        else validate_predecessors(predecessors, s)
    )
    exits = None if preds is None else exits_from_predecessors(preds)
    overall = np.zeros(lats.shape[:-1], dtype=np.float64)
    for c in range(w.size):
        class_lats = lats * part[c]
        if scales is not None:
            class_lats = class_lats * scales[c]
        if preds is None:
            per_class = class_lats.sum(axis=-1)
        else:
            completion = _completion_times(class_lats, preds)
            per_class = completion[..., exits[0]]
            for si in exits[1:]:
                per_class = np.maximum(per_class, completion[..., si])
        overall = overall + w[c] * per_class
    if overall.ndim == 0:
        return float(overall)
    return overall
