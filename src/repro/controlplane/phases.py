"""The four control-plane phases: monitor → predict → decide → act.

Each phase is the named, separately-drivable form of a body that used
to be inlined in ``ExperimentRunner._schedule_interval``; together they
are one PCS control step.  The decomposition is *statement-preserving*:
the monitor phase performs exactly the RNG draws (node windows, in
cluster order) and the predict phase exactly the float arithmetic of
the pre-refactor code, so driving them in sequence is bit-identical to
the historical inline body — the golden pins enforce this.

Live-mode extras (the gauge feed and the rolling retrain) are strictly
opt-in: a replay-constructed phase set performs no additional RNG
draws and no additional arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

import numpy as np

from repro.baselines.policies import InducedLoad
from repro.errors import ControlPlaneError
from repro.model.matrix import MatrixInputs
from repro.model.predictor import LatencyPredictor, TrainedPredictor
from repro.model.training import TrainingSet, train_combined_model
from repro.monitoring.monitor import OnlineMonitor
from repro.monitoring.samples import FrozenSampleWindow
from repro.monitoring.streaming import ReissueThresholdFeed, RollingGauge
from repro.scheduler.migration import MigrationExecutor
from repro.scheduler.pcs import SchedulingOutcome
from repro.service.topology import ResolvedClassMix

__all__ = [
    "MonitorSnapshot",
    "MonitorPhase",
    "PredictPhase",
    "DecidePhase",
    "ActuatePhase",
]

#: Fewest rolling observations per component class before a live
#: retrain is attempted (Eq. 1 fits four contention features plus an
#: intercept; fewer pairs than this would fit noise).
MIN_RETRAIN_SAMPLES = 8


@dataclass(frozen=True)
class MonitorSnapshot:
    """What one monitoring window hands to the predict phase.

    Immutable by construction: the windows are frozen views
    (:meth:`~repro.monitoring.monitor.OnlineMonitor.snapshot`) and the
    node matrix is the one freshly drawn array — later monitor activity
    cannot mutate a snapshot already taken.
    """

    #: Zero-based index of the window that produced this snapshot.
    interval: int
    #: Requests the window actually served.
    n_requests: int
    #: Arrival rate estimated from the window's own request count —
    #: the paper's log-profiling (counting a Poisson stream).
    service_arrival_rate: float
    #: ``(n_nodes, 4)`` noisy windowed node-total contention (Table
    #: III's ``U_nj``), rows in cluster-node order.
    node_totals: np.ndarray
    #: Frozen per-component sampling windows at snapshot time.
    windows: Mapping[str, FrozenSampleWindow]


class MonitorPhase:
    """Phase 1: read the monitored state of the world.

    Wraps :class:`~repro.monitoring.monitor.OnlineMonitor` (the noisy
    two-cadence contention windows) and, in live mode, a
    :class:`~repro.monitoring.streaming.RollingGauge` of incremental
    per-window latency summaries.  The replay path constructs this
    phase without a gauge, so it draws exactly the monitor RNG the
    historical inline code drew — nothing more.
    """

    def __init__(
        self,
        monitor: OnlineMonitor,
        cluster,
        interval_s: float,
        gauge: Optional[RollingGauge] = None,
        threshold_feed: Optional[ReissueThresholdFeed] = None,
    ) -> None:
        self.monitor = monitor
        self.cluster = cluster
        self.interval_s = float(interval_s)
        self.gauge = gauge
        #: Streaming reissue-threshold estimate shared with the run's
        #: adaptive routing kernel (None for fixed-threshold policies).
        #: The kernel writes per-window tail observations into it during
        #: simulation; the monitor phase owns it so the control plane
        #: can report the currently tuned threshold.
        self.threshold_feed = threshold_feed

    def observe(self, interval: int, outcome) -> MonitorSnapshot:
        """One windowed observation of every node and component.

        The node-window draws consume the monitor's named RNG stream in
        cluster-node order — the exact sequence the pre-refactor
        ``_schedule_interval`` consumed.
        """
        lam_service = outcome.n_requests / self.interval_s
        node_totals = np.stack(
            [
                self.monitor.observe_node_window(node, self.interval_s).as_array()
                for node in self.cluster.nodes
            ]
        )
        return MonitorSnapshot(
            interval=interval,
            n_requests=outcome.n_requests,
            service_arrival_rate=lam_service,
            node_totals=node_totals,
            windows=self.monitor.snapshot(),
        )

    def record_window(self, p99: float, mean: float, n: int) -> None:
        """Feed one completed window's latency summary to the gauge
        (no-op without one — the replay path)."""
        if self.gauge is not None and n:
            self.gauge.observe_window(p99, mean, n)

    def adaptive_threshold_s(self) -> Optional[float]:
        """The routing kernel's currently tuned reissue/hedge threshold
        — ``None`` for fixed-threshold policies or before the feed has
        warmed up."""
        if self.threshold_feed is None:
            return None
        return self.threshold_feed.current_threshold_s()


class PredictPhase:
    """Phase 2: turn monitored state into performance-matrix inputs.

    Owns the Eq. 1 predictor's *refresh* seam: in live mode it
    accumulates rolling (contention, mean service time) pairs per
    component class via :class:`~repro.model.training.TrainingSet` and
    periodically refits :func:`~repro.model.training.train_combined_model`,
    handing the new :class:`~repro.model.predictor.TrainedPredictor` to
    the decide phase.  In replay mode (``retrain_every=0``) it is a
    pure function of the snapshot.
    """

    def __init__(
        self,
        service,
        cluster,
        classes: Optional[ResolvedClassMix],
        interval_s: float,
        service_slots: int,
        group_ids: np.ndarray,
        retrain_every: int = 0,
        training_window: int = 256,
        induced_load: Optional[InducedLoad] = None,
    ) -> None:
        if retrain_every < 0:
            raise ControlPlaneError(
                f"retrain_every must be >= 0, got {retrain_every}"
            )
        self.service = service
        self.cluster = cluster
        self.classes = classes
        self.interval_s = float(interval_s)
        self.service_slots = int(service_slots)
        self.group_ids = group_ids
        #: Duplicate-load model of the active routing policy; the
        #: predicted per-replica arrival rates are inflated by its
        #: group-capped multiplier so Algorithm 1 sees the load the
        #: policy actually induces.  ``None`` keeps the historical
        #: policy-blind expression bit-for-bit.
        self.induced_load = induced_load
        #: Refit cadence in windows; 0 disables the rolling retrain.
        self.retrain_every = int(retrain_every)
        self._training: Dict[object, TrainingSet] = {}
        self._training_window = int(training_window)
        self._windows_observed = 0
        self.n_retrains = 0

    def inputs(self, snapshot: MonitorSnapshot) -> MatrixInputs:
        """Build Algorithm 1's inputs from one monitor snapshot."""
        service = self.service
        classes = self.classes
        components = service.components
        lam_service = snapshot.service_arrival_rate
        expected_part = None
        if classes is not None:
            expected_part = {
                name: float(p)
                for name, p in zip(
                    classes.group_names,
                    classes.expected_group_participation(),
                )
            }
        lam = np.empty(len(components))
        for idx, comp in enumerate(components):
            group = service.topology.stages[comp.stage_index].groups[
                comp.group_index
            ]
            # Optional groups receive only their participation share
            # (exactly lam_service / n_replicas on chain topologies);
            # under a class mix, the mix-weighted expected share.
            participation = (
                group.participation
                if expected_part is None
                else expected_part[group.name]
            )
            if self.induced_load is None:
                lam[idx] = participation * lam_service / group.n_replicas
            else:
                # Redundancy/reissue executes extra copies: each replica
                # sees the group-capped multiple of its nominal share.
                lam[idx] = (
                    participation
                    * self.induced_load.group_multiplier(group.n_replicas)
                    * lam_service
                    / group.n_replicas
                )
        topology = service.topology
        return MatrixInputs(
            stage_of=np.array([c.stage_index for c in components]),
            classes=[c.cls for c in components],
            demands=np.stack([c.demand.as_array() for c in components]),
            assignment=np.array(self.cluster.placement_indices(components)),
            node_totals=snapshot.node_totals,
            arrival_rates=lam,
            node_limits=np.full(len(self.cluster), self.service_slots),
            group_of=self.group_ids,
            # DAG topologies weight stragglers by critical-path
            # membership; None keeps the exact chain-sum objective.
            stage_predecessors=(
                None if topology.is_chain else topology.predecessor_indices
            ),
            # A class mix turns the objective into the mix-weighted
            # average of per-class critical paths (chain sums stay
            # chain sums, scaled by each class's stage participation).
            class_weights=None if classes is None else classes.weights,
            class_stage_participation=(
                None if classes is None else classes.stage_participation
            ),
            # Heavy classes work every stage they visit service_scale×
            # longer (the simulators already apply this); folding the
            # same multiplier into the objective keeps the predictor
            # honest about where a mixed workload's latency comes from.
            class_service_scales=(
                None if classes is None else classes.service_scales
            ),
        )

    # ------------------------------------------------------------------
    # rolling retrain (live mode only)
    # ------------------------------------------------------------------
    def observe_truth(
        self, monitor: OnlineMonitor, dists: Mapping[str, object]
    ) -> None:
        """Record one window's (contention, mean service time) pair per
        component class — a live deployment's log-profiling.

        The contention reading comes through the noisy monitor (never
        ground truth directly); the mean service time is the window's
        realized per-class service distribution mean, what averaging a
        window's worth of request logs estimates.
        """
        if not self.retrain_every:
            return
        for cls in self.service.classes():
            rep = self.service.representative(cls)
            contention = monitor.observe_window(rep, self.interval_s)
            self._training.setdefault(
                cls, TrainingSet(max_samples=self._training_window)
            ).add(contention, dists[rep.name].mean)
        self._windows_observed += 1

    def retrain_due(self) -> bool:
        """Whether enough fresh windows accumulated for a refit."""
        return bool(
            self.retrain_every
            and self._windows_observed
            and self._windows_observed % self.retrain_every == 0
        )

    def refresh(self) -> Optional[TrainedPredictor]:
        """Refit Eq. 1 on the rolling windows; ``None`` until every
        class has enough observations."""
        if not self._training:
            return None
        if any(
            len(ts) < MIN_RETRAIN_SAMPLES for ts in self._training.values()
        ):
            return None
        models, scvs = {}, {}
        for cls, training in self._training.items():
            models[cls], scvs[cls] = train_combined_model(training)
        self.n_retrains += 1
        return TrainedPredictor(models, scvs)


class DecidePhase:
    """Phase 3: run the scheduling policy (Algorithm 1) on the inputs."""

    def __init__(self, scheduler) -> None:
        #: A PCS/Hierarchical scheduler, or None for non-scheduling
        #: policies (the phase is then inert).
        self.scheduler = scheduler
        self.n_decisions = 0
        self.last_outcome: Optional[SchedulingOutcome] = None

    @property
    def active(self) -> bool:
        """Whether this run's policy schedules at all."""
        return self.scheduler is not None

    def decide(self, inputs: MatrixInputs) -> SchedulingOutcome:
        """One scheduling decision (mutates ``inputs`` to the final
        allocation, as :meth:`PCSScheduler.schedule` documents)."""
        if self.scheduler is None:
            raise ControlPlaneError(
                "decide phase is inert: this policy does not schedule"
            )
        outcome = self.scheduler.schedule(inputs)
        self.n_decisions += 1
        self.last_outcome = outcome
        return outcome

    def rebind_predictor(self, predictor: LatencyPredictor) -> None:
        """Swap in a freshly retrained predictor (live mode).

        Both scheduler shapes are covered: ``PCSScheduler`` holds the
        predictor directly, ``HierarchicalScheduler`` inside its inner
        scheduler.  The swap takes effect at the next decision — a
        decision never sees a mid-flight predictor change.
        """
        if self.scheduler is None:
            return
        if hasattr(self.scheduler, "predictor"):
            self.scheduler.predictor = predictor
        elif hasattr(self.scheduler, "_inner"):
            self.scheduler._inner.predictor = predictor
        else:  # pragma: no cover - no known scheduler shape lacks both
            raise ControlPlaneError(
                f"cannot rebind predictor on {type(self.scheduler).__name__}"
            )


class ActuatePhase:
    """Phase 4: enforce the decided migrations on the cluster."""

    def __init__(self, executor: Optional[MigrationExecutor]) -> None:
        self.executor = executor
        #: component name -> destination node of the last actuation.
        self.last_moved: Dict[str, object] = {}

    def apply(self, outcome: SchedulingOutcome) -> Set[str]:
        """Enforce ``outcome``; returns the warm-up set (the components
        that physically moved and pay the migration penalty next
        window)."""
        if self.executor is None:
            raise ControlPlaneError(
                "actuate phase is inert: this policy does not schedule"
            )
        moved = self.executor.enforce(outcome)
        self.last_moved = dict(moved)
        return set(moved)

    @property
    def enforced(self) -> int:
        """Total migrations enforced across the run."""
        return 0 if self.executor is None else self.executor.enforced
