"""The composed control loop: one window = simulate → monitor →
predict → decide → act.

:class:`ControlLoop` owns the four phase objects
(:mod:`repro.controlplane.phases`) and a :class:`Clock`
(:mod:`repro.controlplane.clock`), and is the single implementation of
the interval loop: ``ExperimentRunner.run_interval`` /
``_schedule_interval`` / ``collect`` all delegate here, with the batch
replay being the :class:`VirtualClock` degenerate case.

**Bit-identity contract.**  With a virtual clock and ``live=False``
the loop performs exactly the statements (RNG draws, float arithmetic,
list appends) of the pre-refactor inline code — golden pins and the
tier-2 identity matrices enforce that ``metrics_dict()`` is
byte-identical.  Everything live-mode adds (gauges, rolling retrain,
history bounding, cyclic trace profiles) is gated on ``live=True``.

The simulator is invoked through the :mod:`repro.sim.runner` module
attribute (``runner_mod.simulate_service_interval``), preserving the
long-standing test seam that monkeypatches it there.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set

from repro.controlplane.clock import Clock, VirtualClock
from repro.controlplane.phases import (
    ActuatePhase,
    DecidePhase,
    MonitorPhase,
    MonitorSnapshot,
    PredictPhase,
)
from repro.baselines.policies import routing_kernel_for
from repro.errors import ControlPlaneError, ExperimentError
from repro.monitoring.streaming import ReissueThresholdFeed, RollingGauge
from repro.sim import runner as runner_mod
from repro.sim.estimators import IntervalAccumulatorSet, LatencyAccumulator
from repro.sim.metrics import LatencySummary, percentile
from repro.workloads.traces import arrival_rate_multiplier

__all__ = ["ControlLoop"]


class ControlLoop:
    """Drives one policy evaluation window by window.

    Parameters
    ----------
    runner:
        The :class:`~repro.sim.runner.ExperimentRunner` owning the
        config and the service-distribution helper.
    state:
        The :class:`~repro.sim.runner.RunState` built by ``setup``.
    clock:
        Pacing seam; defaults to a :class:`VirtualClock` on the run's
        engine (the deterministic replay).
    live:
        Open-loop service mode: windows run forever (the config's
        ``n_intervals`` becomes the trace profile's cycle length), a
        decision fires after *every* window, gauges and the rolling
        retrain engage, and history is bounded.
    history_limit:
        Keep only this many per-window records (live mode's memory
        bound); ``None`` keeps everything (replay).
    retrain_every / training_window:
        Rolling-retrain cadence and window for the predict phase
        (live mode; 0 disables).
    gauge_horizon:
        Rolling horizon of the live latency gauge, in windows.
    """

    def __init__(
        self,
        runner,
        state,
        clock: Optional[Clock] = None,
        live: bool = False,
        history_limit: Optional[int] = None,
        retrain_every: int = 0,
        training_window: int = 256,
        gauge_horizon: int = 60,
    ) -> None:
        if history_limit is not None and history_limit < 1:
            raise ControlPlaneError(
                f"history_limit must be >= 1 or None, got {history_limit}"
            )
        self.runner = runner
        self.state = state
        self.config = runner.config
        self.clock = clock if clock is not None else VirtualClock(state.engine)
        self.live = bool(live)
        self.history_limit = history_limit
        cfg = runner.config
        # Service slots left per node after reserving the batch-VM
        # budget — same derivation as the historical inline code.
        service_slots = max(
            1, cfg.machine_slots - cfg.generator.max_batch_jobs_per_node
        )
        self.monitor = MonitorPhase(
            state.monitor,
            state.cluster,
            cfg.interval_s,
            gauge=RollingGauge(horizon=gauge_horizon) if self.live else None,
            threshold_feed=state.threshold_feed,
        )
        self.predict = PredictPhase(
            state.service,
            state.cluster,
            state.classes,
            cfg.interval_s,
            service_slots,
            runner._global_group_ids(state.service),
            retrain_every=retrain_every if self.live else 0,
            training_window=training_window,
            induced_load=state.policy.induced_load(),
        )
        self.decide = DecidePhase(state.scheduler)
        self.actuate = ActuatePhase(state.executor)
        self.windows_completed = 0
        self.last_decision_latency_s: Optional[float] = None
        self.last_snapshot: Optional[MonitorSnapshot] = None

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def window_end_time(self, interval: int) -> float:
        """Sim time at which window ``interval`` closes."""
        cfg = self.config
        return cfg.churn_prewarm_s + (interval + 1) * cfg.interval_s

    # ------------------------------------------------------------------
    # one window
    # ------------------------------------------------------------------
    def run_window(self, interval: int):
        """Wait for the window boundary, then compute the window."""
        self.clock.advance_to(self.window_end_time(interval))
        return self.compute_window(interval)

    async def run_window_async(self, interval: int):
        """Async pacing variant (live mode's driver); the compute is
        synchronous — callers offload it to a thread if the event loop
        must stay responsive."""
        await self.clock.wait_until(self.window_end_time(interval))
        return self.compute_window(interval)

    def compute_window(self, interval: int):
        """Advance churn, serve one window, record, maybe decide.

        The replay body of the historical ``run_interval``, statement
        for statement; live-only extensions are gated on ``self.live``.
        """
        cfg = self.config
        state = self.state
        state.engine.run_until(self.window_end_time(interval))
        dists = self.runner._service_distributions(
            state.cluster,
            state.service.components,
            state.drift_rng,
            state.warmup_set,
        )
        # The trace profile shapes the rate interval by interval; the
        # stationary profile's multiplier is exactly 1.0 (bit-identical
        # arrivals to the pre-profile runner).  A live stream is
        # unbounded and replays the profile cyclically.
        if self.live:
            rate = cfg.arrival_rate * arrival_rate_multiplier(
                cfg.trace_profile, interval, cfg.n_intervals
            )
        else:
            rate = cfg.arrival_rate * float(state.rate_multipliers[interval])
        interval_stream: Optional[IntervalAccumulatorSet] = None
        if state.summary_mode == "streaming":
            # Fresh per-interval accumulators; their reservoirs draw
            # priorities from persistent named streams, so the whole
            # run is reproducible from the root seed.
            multi = state.classes is not None and state.classes.multi_class
            interval_stream = IntervalAccumulatorSet.create(
                rng_for=lambda role: state.rngs.get(f"estimator-{role}"),
                class_names=state.classes.names if multi else None,
            )
        # The chunk/stream kwargs are only passed when engaged, so the
        # default path keeps the historical call signature (tests stub
        # the simulator with positional-compatible fakes).
        sim_kwargs: Dict[str, object] = {}
        if cfg.chunk_requests is not None:
            sim_kwargs["chunk_requests"] = cfg.chunk_requests
        if interval_stream is not None:
            sim_kwargs["stream_into"] = interval_stream
        if state.threshold_feed is not None:
            # Adaptive policies: the kernel reads the tuned threshold
            # from the shared feed and pushes this window's own tail
            # observation back into it — closing the loop per window.
            sim_kwargs["threshold_feed"] = state.threshold_feed
        outcome = runner_mod.simulate_service_interval(
            state.service.topology,
            state.policy,
            rate,
            cfg.interval_s,
            dists,
            state.request_rng,
            classes=state.classes,
            **sim_kwargs,
        )
        if interval >= cfg.warmup_intervals and outcome.n_requests:
            label = f"interval {interval} pooled component latencies"
            if interval_stream is not None:
                state.per_interval_p99.append(
                    interval_stream.component_pool.summary(label=label).p99
                )
                state.per_interval_mean.append(interval_stream.overall.mean)
                state.run_stream = (
                    interval_stream
                    if state.run_stream is None
                    else state.run_stream.merge(interval_stream)
                )
            else:
                pooled = outcome.pooled_component_latencies()
                state.component_acc.add(pooled)
                state.overall_acc.add(outcome.request_latencies)
                if state.classes is not None and state.classes.multi_class:
                    for name, lats in outcome.per_class_latencies().items():
                        state.per_class_accs.setdefault(
                            name, LatencyAccumulator()
                        ).add(lats)
                # Shared metric kernel: nearest-rank, never interpolated
                # (must match the pooled LatencySummary convention).
                state.per_interval_p99.append(percentile(pooled, 99, label=label))
                state.per_interval_mean.append(
                    float(outcome.request_latencies.mean())
                )
            if state.per_interval_duplicate_load is not None:
                state.per_interval_duplicate_load.append(
                    outcome.duplicate_load
                )
            state.n_requests += outcome.n_requests
            if self.live:
                self.monitor.record_window(
                    state.per_interval_p99[-1],
                    state.per_interval_mean[-1],
                    outcome.n_requests,
                )
                if self.history_limit is not None:
                    del state.per_interval_p99[: -self.history_limit]
                    del state.per_interval_mean[: -self.history_limit]
                    if state.per_interval_duplicate_load is not None:
                        del state.per_interval_duplicate_load[
                            : -self.history_limit
                        ]
        # Replay decides between windows (never after the last); a live
        # stream has no last window and decides after every one.
        if self.decide.active and (
            self.live or interval + 1 < cfg.n_intervals
        ):
            t0 = time.perf_counter()
            state.warmup_set = self.control_step(interval, outcome)
            dt = time.perf_counter() - t0
            state.scheduling_time_s += dt
            self.last_decision_latency_s = dt
            state.n_migrations = state.executor.enforced
        if self.live and self.predict.retrain_every:
            self.predict.observe_truth(state.monitor, dists)
            if self.predict.retrain_due():
                refreshed = self.predict.refresh()
                if refreshed is not None:
                    self.decide.rebind_predictor(refreshed)
        self.windows_completed += 1
        return outcome

    def control_step(self, interval: int, outcome) -> Set[str]:
        """One full monitor → predict → decide → act pass."""
        snapshot = self.monitor.observe(interval, outcome)
        self.last_snapshot = snapshot
        inputs = self.predict.inputs(snapshot)
        decision = self.decide.decide(inputs)
        return self.actuate.apply(decision)

    # ------------------------------------------------------------------
    # live policy switching
    # ------------------------------------------------------------------
    def switch_policy(self, policy) -> None:
        """Swap the active routing policy between windows (live serve).

        Re-derives everything the policy determines: the components'
        induced demand (:meth:`ExperimentRunner._apply_induced_load`),
        the predict phase's duplicate-load model, a fresh adaptive
        threshold feed (stale tail estimates from the old policy must
        not seed the new one), and the chunk-fallback flag.  Callers
        synchronise with the window loop (the service layer holds its
        compute lock), so the swap is only ever observed at a window
        boundary.  Scheduling policies cannot be switched in or out:
        their predictor/scheduler/executor stack is built in ``setup``.
        """
        state = self.state
        if policy.schedules or state.policy.schedules:
            raise ControlPlaneError(
                f"cannot switch between scheduling and routing policies "
                f"mid-run ({state.policy.name!r} -> {policy.name!r}); "
                f"scheduling runs are configured at setup"
            )
        expected_part = None
        if state.classes is not None:
            expected_part = {
                name: float(p)
                for name, p in zip(
                    state.classes.group_names,
                    state.classes.expected_group_participation(),
                )
            }
        self.runner._apply_induced_load(state.service, policy, expected_part)
        state.policy = policy
        state.threshold_feed = (
            ReissueThresholdFeed() if policy.adapts_threshold else None
        )
        state.chunk_fallback = state.chunk_fallback or (
            self.config.chunk_requests is not None
            and not routing_kernel_for(policy).supports_chunking
        )
        self.monitor.threshold_feed = state.threshold_feed
        self.predict.induced_load = policy.induced_load()

    # ------------------------------------------------------------------
    # the composed run + reduction
    # ------------------------------------------------------------------
    def run(self):
        """Replay all configured windows and reduce — the batch run."""
        for interval in range(self.config.n_intervals):
            self.run_window(interval)
        return self.collect()

    def collect(self):
        """Reduce the recorded windows into a ``PolicyResult``.

        Both summary modes flow through the same
        :class:`~repro.sim.estimators.LatencyAccumulator` seam; the
        exact mode's reduction is bit-identical to the historical
        pool-then-summarise code, and a streamed run records its
        provenance in ``PolicyResult.summary_mode``.
        """
        cfg = self.config
        state = self.state
        streaming = state.summary_mode == "streaming"
        measured = (
            state.run_stream is not None
            if streaming
            else state.component_acc.n_batches > 0
        )
        if not measured:
            raise ExperimentError(
                f"no measured intervals produced requests "
                f"({state.policy.name} @ {cfg.arrival_rate:g} req/s, "
                f"seed {cfg.seed})"
            )
        run_label = f"{state.policy.name} @ {cfg.arrival_rate:g} req/s"
        if streaming:
            component_acc = state.run_stream.component_pool
            overall_acc = state.run_stream.overall
            class_accs = state.run_stream.per_class or {}
        else:
            component_acc = state.component_acc
            overall_acc = state.overall_acc
            class_accs = state.per_class_accs
        per_class: Optional[Dict[str, LatencySummary]] = None
        if class_accs:
            per_class = {
                name: acc.summary(
                    label=f"{run_label} class {name!r} latencies"
                )
                for name, acc in class_accs.items()
                if acc.n
            }
        return runner_mod.PolicyResult(
            policy_name=state.policy.name,
            arrival_rate=cfg.arrival_rate,
            component_latency=component_acc.summary(
                label=f"{run_label} component latencies"
            ),
            overall_latency=overall_acc.summary(
                label=f"{run_label} overall latencies"
            ),
            per_interval_component_p99=state.per_interval_p99,
            per_interval_overall_mean=state.per_interval_mean,
            n_requests=state.n_requests,
            n_migrations=state.n_migrations,
            scheduling_time_s=state.scheduling_time_s,
            wall_time_s=time.perf_counter() - state.t_wall,
            per_class=per_class,
            summary_mode="streaming" if streaming else None,
            chunk_fallback=state.chunk_fallback,
            per_interval_duplicate_load=state.per_interval_duplicate_load,
        )

    # ------------------------------------------------------------------
    # introspection (the service layer's /status)
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-serialisable progress digest."""
        state = self.state
        last_decision = self.decide.last_outcome
        return {
            "active_policy": state.policy.name,
            "adaptive_threshold_s": self.monitor.adaptive_threshold_s(),
            "windows_completed": self.windows_completed,
            "n_requests": state.n_requests,
            "n_decisions": self.decide.n_decisions,
            "n_migrations": self.actuate.enforced,
            "n_retrains": self.predict.n_retrains,
            "last_window_p99_s": (
                state.per_interval_p99[-1] if state.per_interval_p99 else None
            ),
            "last_window_mean_s": (
                state.per_interval_mean[-1] if state.per_interval_mean else None
            ),
            "last_decision_latency_s": self.last_decision_latency_s,
            "last_decision": (
                None if last_decision is None else last_decision.summary()
            ),
            "sim_time_s": state.engine.now,
        }
