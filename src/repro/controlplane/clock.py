"""The control loop's clock seam: virtual (replay) vs wall (live).

Both clocks speak **simulation time** — the loop always asks "advance
to sim time ``t``", never "sleep N seconds" — so the loop body is
identical in both modes and the batch replay stays the degenerate case:

:class:`VirtualClock`
    wraps the run's :class:`~repro.simcore.engine.SimulationEngine`;
    ``advance_to`` runs the engine to the target and returns
    immediately.  Seeded and deterministic — the existing replay,
    bit-identical.

:class:`WallClock`
    a linear map between sim time and the host's monotonic clock:
    ``sim = origin + (monotonic - t0) * dilation``.  ``advance_to``
    blocks (``wait_until`` awaits) until the wall reaches the target;
    the *environment* (engine, churn) is then advanced separately by
    the loop, so a live service replays the same seeded world, just
    paced against real time.  ``dilation`` is sim seconds per wall
    second — large values fast-forward a live session (benchmarks, CI).
"""

from __future__ import annotations

import asyncio
import time as _time
from abc import ABC, abstractmethod
from typing import Optional

from repro.errors import ControlPlaneError
from repro.simcore.engine import SimulationEngine

__all__ = ["Clock", "VirtualClock", "WallClock"]


class Clock(ABC):
    """When the control loop may compute the next window."""

    #: The simulation engine this clock *drives*, if any.  The loop
    #: advances the environment itself when the clock doesn't.
    engine: Optional[SimulationEngine] = None

    @abstractmethod
    def now(self) -> float:
        """Current simulation time."""

    @abstractmethod
    def advance_to(self, sim_time: float) -> None:
        """Block until the clock reaches ``sim_time`` (no-op if past)."""

    async def wait_until(self, sim_time: float) -> None:
        """Async variant; the default delegates to :meth:`advance_to`
        (instantaneous for a virtual clock)."""
        self.advance_to(sim_time)


class VirtualClock(Clock):
    """Deterministic replay time: the engine's clock, advanced eagerly."""

    def __init__(self, engine: SimulationEngine) -> None:
        self.engine = engine

    def now(self) -> float:
        return self.engine.now

    def advance_to(self, sim_time: float) -> None:
        """Fire every event up to ``sim_time`` and land the clock there.

        Exactly the replay loop's historical ``engine.run_until`` call;
        asking for a time already reached is a no-op.
        """
        if sim_time > self.engine.now:
            self.engine.run_until(sim_time)


class WallClock(Clock):
    """Real time, linearly mapped onto simulation time."""

    def __init__(self, origin: float = 0.0, dilation: float = 1.0) -> None:
        if dilation <= 0:
            raise ControlPlaneError(
                f"dilation must be positive, got {dilation}"
            )
        #: Sim time corresponding to the instant this clock was built
        #: (a live run starts its wall at the end of the churn prewarm).
        self.origin = float(origin)
        #: Sim seconds per wall second.
        self.dilation = float(dilation)
        self._t0 = _time.monotonic()
        self.engine = None

    def now(self) -> float:
        return self.origin + (_time.monotonic() - self._t0) * self.dilation

    def _delay_s(self, sim_time: float) -> float:
        return (sim_time - self.now()) / self.dilation

    def advance_to(self, sim_time: float) -> None:
        delay = self._delay_s(sim_time)
        if delay > 0:
            _time.sleep(delay)

    async def wait_until(self, sim_time: float) -> None:
        delay = self._delay_s(sim_time)
        if delay > 0:
            await asyncio.sleep(delay)
