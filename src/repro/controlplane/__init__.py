"""The PCS control plane: an explicit monitor→predict→decide→act loop.

The paper's scheduler is an *online* control loop; this package is
that loop as a first-class architecture, with the batch replay and the
live ``repro serve`` mode as two drivers of the same body.

The four phases (:mod:`repro.controlplane.phases`)
--------------------------------------------------
``MonitorPhase``
    reads the world: the noisy two-cadence contention windows of
    :mod:`repro.monitoring.monitor` (node windows drawn in cluster
    order — the bit-pinned RNG sequence), frozen window snapshots, and
    — live only — :mod:`repro.monitoring.streaming` incremental
    latency gauges over a rolling window.
``PredictPhase``
    turns a monitor snapshot into Algorithm 1's
    :class:`~repro.model.matrix.MatrixInputs`, and owns the Eq. 1
    predictor's rolling retrain/refresh seam
    (:mod:`repro.model.training`) for long-running sessions.
``DecidePhase``
    runs the scheduling policy — PCS / hierarchical / threshold
    policies from :mod:`repro.scheduler` — and counts decisions.
``ActuatePhase``
    enforces the decided migrations through
    :mod:`repro.scheduler.migration`'s executor and reports the
    warm-up set.

Layer boundaries
----------------
The control plane sits *above* :mod:`repro.sim.runner`: it imports the
runner (for the simulator seam and service-distribution helper), never
the reverse at import time — the runner reaches up only through a lazy
import inside ``ExperimentRunner.control_loop``.  Phases never touch
the event engine; time belongs to the :class:`Clock` seam
(:mod:`repro.controlplane.clock`): :class:`VirtualClock` replays the
seeded engine deterministically (the existing batch path,
bit-identical on ``metrics_dict()``), :class:`WallClock` paces the
same seeded world against real time.  The HTTP surface
(:mod:`repro.controlplane.http`) speaks only to the service layer
(:mod:`repro.controlplane.service`), never to phases directly.
"""

from repro.controlplane.clock import Clock, VirtualClock, WallClock
from repro.controlplane.loop import ControlLoop
from repro.controlplane.phases import (
    ActuatePhase,
    DecidePhase,
    MonitorPhase,
    MonitorSnapshot,
    PredictPhase,
)

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "ControlLoop",
    "MonitorSnapshot",
    "MonitorPhase",
    "PredictPhase",
    "DecidePhase",
    "ActuatePhase",
]
