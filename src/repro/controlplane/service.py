"""The live service layer: ``repro serve``'s control-plane session.

:class:`LiveControlPlane` owns one open-loop PCS session — a seeded
world (scenario + policy via :class:`~repro.sim.runner.ExperimentRunner`)
paced against real time by a :class:`~repro.controlplane.clock.WallClock`
and driven window by window through a live
:class:`~repro.controlplane.loop.ControlLoop`.  The asyncio driver keeps
the event loop responsive by offloading each window's compute to a
worker thread; the HTTP surface (:mod:`repro.controlplane.http`) reads
session state only through :meth:`LiveControlPlane.status_payload` and
:meth:`LiveControlPlane.metrics_text`.

Background sweeps ride along: :class:`SweepManager` runs
:class:`~repro.sim.sweep.ParallelSweepRunner` grids in daemon threads
(POST-started, cooperatively cancelled by raising out of the progress
callback), optionally routed through the distributed spool backend.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError, ControlPlaneError

__all__ = [
    "ServeConfig",
    "LiveControlPlane",
    "SweepManager",
    "SweepCancelled",
]


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one live control-plane session.

    Validation mirrors :class:`~repro.sim.runner.RunnerConfig`'s window
    shape checks: a nonpositive or non-finite ``window_s`` is a *named*
    :class:`~repro.errors.ConfigurationError` at construction, never a
    deep failure inside the running service.
    """

    #: Registered scenario name the live session serves.
    scenario: str = "fanout-feed"
    #: Policy name (``policy_from_name`` grammar: Basic, RED-k, RI-p,
    #: Hedge, PCS).
    policy: str = "PCS"
    #: Mean arrival rate of the open-loop stream (req/s, sim time).
    arrival_rate: float = 40.0
    #: Monitoring/decision window length in sim seconds (the live
    #: analogue of ``RunnerConfig.interval_s``).
    window_s: float = 8.0
    seed: int = 0
    #: Arrival trace profile replayed cyclically (stationary, diurnal,
    #: burst, flash-crowd).
    trace_profile: str = "burst"
    #: Profile cycle length in windows.
    trace_cycle: int = 12
    host: str = "127.0.0.1"
    #: TCP port for the control surface; 0 binds an ephemeral port
    #: (reported via :attr:`LiveControlPlane.bound_port`).
    port: int = 0
    #: Sim seconds per wall second — >1 runs the world faster than real
    #: time (useful for CI and benchmarks).
    dilation: float = 1.0
    #: Stop after this many windows (``None`` = run until /shutdown).
    max_windows: Optional[int] = None
    #: Rolling-retrain cadence in windows (0 disables).
    retrain_every: int = 0
    #: Rolling training-set bound per component class.
    training_window: int = 256
    #: Profiling campaign size for the initial Eq. 1 fit.
    n_profiling_conditions: int = 12
    #: Per-window history bound (live memory cap).
    history_limit: int = 240
    #: Rolling latency-gauge horizon, in windows.
    gauge_horizon: int = 60
    #: Shared spool directory offered to POSTed distributed sweeps.
    spool: Optional[str] = None
    #: Scenario shape multiplier (non-Nutch scenarios).
    scale: float = 1.0
    #: Cluster size override (``None`` = scenario default).
    n_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.window_s) or self.window_s <= 0:
            raise ConfigurationError(
                f"ServeConfig.window_s must be a positive finite number "
                f"of seconds, got {self.window_s!r}"
            )
        if not math.isfinite(self.arrival_rate) or self.arrival_rate <= 0:
            raise ConfigurationError(
                f"ServeConfig.arrival_rate must be positive, "
                f"got {self.arrival_rate!r}"
            )
        if self.trace_cycle < 1:
            raise ConfigurationError(
                f"ServeConfig.trace_cycle must be >= 1, "
                f"got {self.trace_cycle!r}"
            )
        if not math.isfinite(self.dilation) or self.dilation <= 0:
            raise ConfigurationError(
                f"ServeConfig.dilation must be positive, "
                f"got {self.dilation!r}"
            )
        if self.max_windows is not None and self.max_windows < 1:
            raise ConfigurationError(
                f"ServeConfig.max_windows must be >= 1 or None, "
                f"got {self.max_windows!r}"
            )
        if self.retrain_every < 0:
            raise ConfigurationError(
                f"ServeConfig.retrain_every must be >= 0, "
                f"got {self.retrain_every!r}"
            )
        if self.history_limit < 1:
            raise ConfigurationError(
                f"ServeConfig.history_limit must be >= 1, "
                f"got {self.history_limit!r}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"ServeConfig.port must be in [0, 65535], got {self.port!r}"
            )


class SweepCancelled(ControlPlaneError):
    """Raised out of a sweep's progress callback to cancel it
    cooperatively (the sweep runner propagates callback exceptions)."""


@dataclass
class _SweepJob:
    """One background sweep's bookkeeping (mutated under the manager
    lock by the worker thread and the HTTP readers)."""

    id: str
    request: Dict[str, object]
    status: str = "running"
    done: int = 0
    total: int = 0
    error: Optional[str] = None
    wall_time_s: Optional[float] = None
    stop_flag: threading.Event = field(default_factory=threading.Event)
    thread: Optional[threading.Thread] = None
    #: ``PolicyResult.render()`` one-liners, filled when the grid
    #: completes.
    results: Optional[List[str]] = None

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "id": self.id,
            "status": self.status,
            "done": self.done,
            "total": self.total,
            "request": self.request,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.wall_time_s is not None:
            out["wall_time_s"] = self.wall_time_s
        if self.results is not None:
            out["results"] = self.results
        return out


class SweepManager:
    """POST-driven background sweeps for the live service.

    Each started sweep builds a :class:`~repro.sim.sweep.SweepSpec`
    from a registered scenario and runs it on a daemon thread through
    :class:`~repro.sim.sweep.ParallelSweepRunner` — the exact engine the
    batch CLI uses, so results are bit-identical to an offline
    ``repro sweep`` of the same grid.  ``backend="distributed"``
    requests route through the manager's spool directory.

    Cancellation is cooperative: the stop flag is checked in the
    progress callback, whose raised :class:`SweepCancelled` the sweep
    runner propagates between points (a running point finishes first).
    """

    def __init__(self, spool: Optional[str] = None) -> None:
        self.spool = spool
        self._jobs: Dict[str, _SweepJob] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, request: Dict[str, object]) -> Dict[str, object]:
        """Validate ``request`` and launch the sweep; returns the new
        job's summary.  Raises :class:`~repro.errors.ConfigurationError`
        on a malformed request (the HTTP layer maps that to a 400)."""
        from repro.scenarios import get_scenario
        from repro.sim.sweep import (
            ParallelSweepRunner,
            SweepSpec,
            policy_from_name,
        )

        if not isinstance(request, dict):
            raise ConfigurationError(
                f"sweep request must be a JSON object, got {type(request).__name__}"
            )
        known = {
            "scenario", "policies", "rates", "seeds", "intervals",
            "warmup_intervals", "window_s", "n_nodes", "workers",
            "backend", "scale",
        }
        unknown = set(request) - known
        if unknown:
            raise ConfigurationError(
                f"unknown sweep request keys {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        scenario = get_scenario(str(request.get("scenario", "nutch-search")))
        try:
            policies = tuple(
                policy_from_name(str(p))
                for p in request.get("policies", ["Basic", "PCS"])
            )
            rates = tuple(float(r) for r in request.get("rates", [40.0]))
            seeds = tuple(int(s) for s in request.get("seeds", [0]))
            intervals = int(request.get("intervals", 3))
            warmup = int(request.get("warmup_intervals", 1))
            window_s = float(request.get("window_s", 8.0))
            workers = int(request.get("workers", 1))
            scale = float(request.get("scale", 1.0))
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed sweep request: {exc}") from exc
        backend = request.get("backend")
        if backend is not None:
            backend = str(backend)
        if backend == "distributed" and self.spool is None:
            raise ConfigurationError(
                "distributed sweep requested but the service was started "
                "without --spool"
            )
        overrides: Dict[str, object] = dict(
            arrival_rate=rates[0] if rates else 40.0,
            interval_s=window_s,
            n_intervals=intervals,
            warmup_intervals=warmup,
            scale=scale,
        )
        if request.get("n_nodes") is not None:
            overrides["n_nodes"] = int(request["n_nodes"])  # type: ignore[index]
        spec = SweepSpec(
            base=scenario.runner_config(**overrides),
            policies=policies,
            arrival_rates=rates,
            seeds=seeds,
        )
        job = _SweepJob(
            id=f"sweep-{next(self._ids)}",
            request=dict(request),
            total=spec.n_points,
        )

        def progress(p) -> None:
            if job.stop_flag.is_set():
                raise SweepCancelled(f"{job.id} stopped via the control surface")
            with self._lock:
                job.done = p.done
                job.total = p.total

        runner = ParallelSweepRunner(
            spec,
            workers=workers,
            progress=progress,
            backend=backend,
            spool=self.spool if backend == "distributed" else None,
        )

        def work() -> None:
            t0 = time.perf_counter()
            try:
                result = runner.run()
            except SweepCancelled:
                with self._lock:
                    job.status = "stopped"
                    job.wall_time_s = time.perf_counter() - t0
            except Exception as exc:  # noqa: BLE001 - surfaced via /sweeps
                with self._lock:
                    job.status = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.wall_time_s = time.perf_counter() - t0
            else:
                with self._lock:
                    job.status = "done"
                    job.done = job.total
                    job.wall_time_s = time.perf_counter() - t0
                    job.results = [
                        result.results[point].render()
                        for point in spec.points()
                    ]

        job.thread = threading.Thread(
            target=work, name=job.id, daemon=True
        )
        with self._lock:
            self._jobs[job.id] = job
        job.thread.start()
        return job.summary()

    def stop(self, job_id: str) -> Dict[str, object]:
        """Request cooperative cancellation of one sweep."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        job.stop_flag.set()
        with self._lock:
            if job.status == "running":
                job.status = "stopping"
            return job.summary()

    def stop_all(self) -> None:
        """Flag every running sweep to stop (service shutdown)."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            job.stop_flag.set()

    def drain(self, timeout_s: float = 30.0) -> None:
        """Join every worker thread (bounded); for clean shutdown."""
        deadline = time.monotonic() + timeout_s
        with self._lock:
            threads = [j.thread for j in self._jobs.values() if j.thread]
        for thread in threads:
            thread.join(max(0.0, deadline - time.monotonic()))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Dict[str, object]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(job_id)
            return job.summary()

    def summary(self) -> List[Dict[str, object]]:
        with self._lock:
            return [job.summary() for job in self._jobs.values()]


class LiveControlPlane:
    """One ``repro serve`` session: seeded world, wall clock, control
    loop, HTTP surface, background sweeps.

    The blocking parts (world setup, per-window compute) run in worker
    threads via ``asyncio.to_thread``; the event loop only paces
    windows and serves HTTP.  All cross-thread reads of loop state go
    through :attr:`_lock`.
    """

    def __init__(
        self,
        config: ServeConfig,
        announce: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config
        self._announce = announce
        self._lock = threading.Lock()
        self.status = "starting"
        self.loop = None  # ControlLoop once built
        self.sweeps = SweepManager(spool=config.spool)
        #: Set once the HTTP server is bound (tests wait on this).
        self.ready = threading.Event()
        self.bound_port: Optional[int] = None
        self.error: Optional[str] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # world construction (blocking; offloaded to a thread)
    # ------------------------------------------------------------------
    def build_loop(self):
        """Build the seeded world and its live control loop."""
        from repro.controlplane.clock import WallClock
        from repro.controlplane.loop import ControlLoop
        from repro.scenarios import get_scenario
        from repro.sim.runner import ExperimentRunner
        from repro.sim.sweep import policy_from_name

        cfg = self.config
        scenario = get_scenario(cfg.scenario)
        overrides: Dict[str, object] = dict(
            arrival_rate=cfg.arrival_rate,
            interval_s=cfg.window_s,
            # Live mode replays the trace profile cyclically with the
            # config's n_intervals as the cycle length (see ControlLoop).
            n_intervals=cfg.trace_cycle,
            warmup_intervals=0,
            seed=cfg.seed,
            trace_profile=cfg.trace_profile,
            # Bounded-memory summaries: a live stream must never hold
            # every latency sample.
            summary_mode="streaming",
            n_profiling_conditions=cfg.n_profiling_conditions,
            scale=cfg.scale,
        )
        if cfg.n_nodes is not None:
            overrides["n_nodes"] = cfg.n_nodes
        runner_config = scenario.runner_config(**overrides)
        runner = ExperimentRunner(runner_config)
        policy = policy_from_name(cfg.policy)
        state = runner.setup(policy)
        # The wall clock starts at the end of the churn prewarm, so the
        # service pays no real-time cost for the simulated warm start.
        clock = WallClock(
            origin=runner_config.churn_prewarm_s, dilation=cfg.dilation
        )
        return ControlLoop(
            runner,
            state,
            clock=clock,
            live=True,
            history_limit=cfg.history_limit,
            retrain_every=cfg.retrain_every,
            training_window=cfg.training_window,
            gauge_horizon=cfg.gauge_horizon,
        )

    # ------------------------------------------------------------------
    # the async driver
    # ------------------------------------------------------------------
    async def run(self) -> int:
        """Serve until /shutdown (or ``max_windows``); returns an exit
        status (0 clean, 1 if the world failed to build)."""
        from repro.controlplane.http import start_http_server

        self._shutdown = asyncio.Event()
        server = await start_http_server(self, self.config.host, self.config.port)
        self.bound_port = server.sockets[0].getsockname()[1]
        self.ready.set()
        if self._announce is not None:
            self._announce(
                f"repro serve: listening on "
                f"http://{self.config.host}:{self.bound_port} "
                f"({self.config.scenario} / {self.config.policy}, "
                f"window {self.config.window_s:g}s, "
                f"profile {self.config.trace_profile})"
            )
        try:
            async with server:
                await self._session()
        finally:
            self.ready.clear()
            self.sweeps.stop_all()
            self.sweeps.drain()
        return 0 if self.error is None else 1

    async def _session(self) -> None:
        assert self._shutdown is not None
        with self._lock:
            self.status = "warming"
        try:
            loop = await asyncio.to_thread(self.build_loop)
        except Exception as exc:  # noqa: BLE001 - surfaced via /status
            with self._lock:
                self.status = "failed"
                self.error = f"{type(exc).__name__}: {exc}"
            # Stay up long enough for a client to read the failure,
            # unless someone already asked us to go away.
            await self._shutdown.wait()
            return
        with self._lock:
            self.loop = loop
            self.status = "running"
        window = 0
        while not self._shutdown.is_set():
            if (
                self.config.max_windows is not None
                and window >= self.config.max_windows
            ):
                with self._lock:
                    self.status = "drained"
                await self._shutdown.wait()
                break
            await self._pace(loop.window_end_time(window))
            if self._shutdown.is_set():
                break
            await asyncio.to_thread(self._compute_window, window)
            window += 1
        with self._lock:
            if self.status != "drained":
                self.status = "stopped"

    async def _pace(self, sim_target: float) -> None:
        """Wait until the wall clock reaches ``sim_target`` or a
        shutdown is requested, whichever first."""
        assert self._shutdown is not None
        wait = asyncio.ensure_future(self.loop.clock.wait_until(sim_target))
        stop = asyncio.ensure_future(self._shutdown.wait())
        done, pending = await asyncio.wait(
            {wait, stop}, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        for task in done:
            # Re-raise a failed clock wait (a cancelled one is fine).
            if not task.cancelled() and task.exception() is not None:
                raise task.exception()

    def _compute_window(self, window: int) -> None:
        with self._lock:
            self.loop.compute_window(window)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (the POST /shutdown handler)."""
        if self._shutdown is not None:
            self._shutdown.set()

    def switch_policy(self, policy_name: str) -> Dict[str, object]:
        """Swap the live loop's routing policy (the POST /policy
        handler).

        Resolves ``policy_name`` through the sweep grammar
        (``policy_from_name``), then swaps under the compute lock — the
        same lock every window's compute holds — so the new policy only
        ever takes effect at a window boundary.  Raises
        :class:`~repro.errors.ConfigurationError` on an unknown name
        and :class:`~repro.errors.ControlPlaneError` when there is no
        running loop or the swap crosses the scheduling/routing divide
        (both map to a 400 at the HTTP layer).
        """
        from repro.sim.sweep import policy_from_name

        policy = policy_from_name(str(policy_name))
        with self._lock:
            if self.loop is None:
                raise ControlPlaneError(
                    f"cannot switch policy while the session is "
                    f"{self.status!r}: the live loop is not running yet"
                )
            self.loop.switch_policy(policy)
            return {
                "ok": True,
                "active_policy": policy.name,
                "adapts_threshold": bool(policy.adapts_threshold),
                "windows_completed": self.loop.windows_completed,
            }

    # ------------------------------------------------------------------
    # read surface (what HTTP exposes)
    # ------------------------------------------------------------------
    def status_payload(self) -> Dict[str, object]:
        """The /status JSON document."""
        cfg = self.config
        with self._lock:
            payload: Dict[str, object] = {
                "status": self.status,
                "scenario": cfg.scenario,
                "policy": cfg.policy,
                "arrival_rate": cfg.arrival_rate,
                "window_s": cfg.window_s,
                "trace_profile": cfg.trace_profile,
                "trace_cycle": cfg.trace_cycle,
                "dilation": cfg.dilation,
                "uptime_s": time.monotonic() - self._t0,
            }
            if self.error is not None:
                payload["error"] = self.error
            if self.loop is not None:
                payload["loop"] = self.loop.summary()
                # The configured policy never changes; POST /policy can
                # swap the *active* one, so surface it at top level too.
                payload["active_policy"] = payload["loop"]["active_policy"]
                gauge = self.loop.monitor.gauge
                if gauge is not None and gauge.windows:
                    payload["rolling"] = gauge.rolling()
        payload["sweeps"] = self.sweeps.summary()
        return payload

    def metrics_text(self) -> str:
        """The /metrics document (Prometheus text exposition format).

        The latency gauges appear only once at least one measured
        window completed — scrapers (and the CI poll) key on that.
        """
        lines: List[str] = []

        def emit(name: str, kind: str, help_text: str, value) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {float(value):.9g}")

        with self._lock:
            up = 1 if self.status == "running" else 0
            emit("pcs_up", "gauge", "1 while the live loop is running.", up)
            if self.loop is not None:
                s = self.loop.summary()
                emit(
                    "pcs_windows_completed_total", "counter",
                    "Monitoring windows completed.", s["windows_completed"],
                )
                emit(
                    "pcs_requests_total", "counter",
                    "Requests served across all windows.", s["n_requests"],
                )
                emit(
                    "pcs_decisions_total", "counter",
                    "Scheduling decisions fired.", s["n_decisions"],
                )
                emit(
                    "pcs_migrations_total", "counter",
                    "Component migrations enforced.", s["n_migrations"],
                )
                emit(
                    "pcs_retrains_total", "counter",
                    "Rolling predictor retrains applied.", s["n_retrains"],
                )
                emit(
                    "pcs_sim_time_seconds", "gauge",
                    "Simulated time of the live world.", s["sim_time_s"],
                )
                if s["last_window_p99_s"] is not None:
                    emit(
                        "pcs_window_p99_seconds", "gauge",
                        "Component p99 latency of the last window.",
                        s["last_window_p99_s"],
                    )
                if s["last_window_mean_s"] is not None:
                    emit(
                        "pcs_window_mean_seconds", "gauge",
                        "Overall mean latency of the last window.",
                        s["last_window_mean_s"],
                    )
                if s["last_decision_latency_s"] is not None:
                    emit(
                        "pcs_decision_latency_seconds", "gauge",
                        "Wall time of the last monitor->predict->decide->"
                        "act pass.",
                        s["last_decision_latency_s"],
                    )
                gauge = self.loop.monitor.gauge
                if gauge is not None and gauge.windows:
                    rolling = gauge.rolling()
                    emit(
                        "pcs_rolling_p99_seconds", "gauge",
                        "Max per-window p99 over the rolling horizon.",
                        rolling["p99"],
                    )
                    emit(
                        "pcs_rolling_mean_seconds", "gauge",
                        "Request-weighted mean latency over the rolling "
                        "horizon.",
                        rolling["mean"],
                    )
        running = sum(
            1 for j in self.sweeps.summary() if j["status"] == "running"
        )
        emit(
            "pcs_sweeps_running", "gauge",
            "Background sweeps currently executing.", running,
        )
        return "\n".join(lines) + "\n"
