"""Stdlib HTTP control surface for the live control plane.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no keep-alive, JSON in/out — that speaks only to the service
layer (:class:`~repro.controlplane.service.LiveControlPlane`), never to
phases or the simulator directly.

Routes
------
``GET /status``
    The session's JSON progress digest (loop summary, rolling gauges,
    sweep jobs).
``GET /scenarios``
    The registered scenario catalog.
``GET /metrics``
    Prometheus text exposition (``pcs_*`` gauges/counters).
``GET /sweeps`` / ``POST /sweeps`` / ``POST /sweeps/<id>/stop``
    List, start, and cooperatively cancel background sweep grids.
``POST /policy``
    Swap the active routing policy between windows
    (``{"policy": "RI-95"}``, ``policy_from_name`` grammar).
``POST /shutdown``
    Clean shutdown of the whole service.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError, ControlPlaneError

__all__ = ["start_http_server"]

#: Largest accepted request body; a control surface has no business
#: receiving more.
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response(
    status: int, body: bytes, content_type: str
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: object) -> bytes:
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    return _response(status, body, "application/json; charset=utf-8")


def _text_response(status: int, text: str) -> bytes:
    return _response(
        status, text.encode("utf-8"), "text/plain; version=0.0.4; charset=utf-8"
    )


def _error(status: int, message: str) -> bytes:
    return _json_response(status, {"error": message})


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request; returns ``(method, path, body)`` or ``None``
    on a connection closed before a full request line."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise ControlPlaneError(
            f"malformed request line {request_line!r}"
        )
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ControlPlaneError(f"request body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method, path, body


def _route(plane, method: str, path: str, body: bytes) -> bytes:
    """Dispatch one parsed request against the service layer."""
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path == "/status":
        if method != "GET":
            return _error(405, "use GET /status")
        return _json_response(200, plane.status_payload())
    if path == "/metrics":
        if method != "GET":
            return _error(405, "use GET /metrics")
        return _text_response(200, plane.metrics_text())
    if path == "/scenarios":
        if method != "GET":
            return _error(405, "use GET /scenarios")
        from repro.scenarios import all_scenarios

        catalog = [
            {
                "name": spec.name,
                "description": spec.description,
                "tags": list(spec.tags),
            }
            for spec in all_scenarios()
        ]
        return _json_response(200, {"scenarios": catalog})
    if path == "/sweeps":
        if method == "GET":
            return _json_response(200, {"sweeps": plane.sweeps.summary()})
        if method == "POST":
            try:
                request = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return _error(400, f"body is not valid JSON: {exc}")
            try:
                return _json_response(200, plane.sweeps.start(request))
            except ConfigurationError as exc:
                return _error(400, str(exc))
        return _error(405, "use GET or POST /sweeps")
    if path.startswith("/sweeps/") and path.endswith("/stop"):
        if method != "POST":
            return _error(405, "use POST /sweeps/<id>/stop")
        job_id = path[len("/sweeps/") : -len("/stop")]
        try:
            return _json_response(200, plane.sweeps.stop(job_id))
        except KeyError:
            return _error(404, f"no such sweep {job_id!r}")
    if path == "/policy":
        if method != "POST":
            return _error(405, "use POST /policy")
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error(400, f"body is not valid JSON: {exc}")
        if not isinstance(request, dict) or "policy" not in request:
            return _error(
                400, 'body must be a JSON object like {"policy": "RI-95"}'
            )
        try:
            return _json_response(
                200, plane.switch_policy(str(request["policy"]))
            )
        except (ConfigurationError, ControlPlaneError) as exc:
            return _error(400, str(exc))
    if path == "/shutdown":
        if method != "POST":
            return _error(405, "use POST /shutdown")
        plane.request_shutdown()
        return _json_response(200, {"ok": True, "status": "shutting down"})
    return _error(
        404,
        f"no route {path!r} (have /status, /scenarios, /metrics, "
        f"/sweeps, /policy, /shutdown)",
    )


async def start_http_server(
    plane, host: str, port: int
) -> asyncio.base_events.Server:
    """Bind the control surface and return the (not yet awaited)
    server; the caller owns its lifetime."""

    async def handle(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await _read_request(reader)
            if parsed is None:
                return
            method, path, body = parsed
            try:
                # Handlers take the plane lock, which a computing
                # window can hold for a while — route in a worker
                # thread so a slow window never stalls the event loop
                # (and /shutdown stays responsive).
                response = await asyncio.to_thread(
                    _route, plane, method, path, body
                )
            except Exception as exc:  # noqa: BLE001 - must answer 500
                response = _error(500, f"{type(exc).__name__}: {exc}")
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except ControlPlaneError as exc:
            try:
                writer.write(_error(400, str(exc)))
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    return await asyncio.start_server(handle, host=host, port=port)
