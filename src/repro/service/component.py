"""Service components: the schedulable unit of PCS.

A component is a logical server (one FIFO queue, one VM) belonging to a
replica group of a stage.  It carries

- a *base* service-time distribution — its speed on an idle node; the
  interference model inflates it under contention;
- its own resource demand ``U_ci`` (Table III's migration quantum);
- identity within the topology (stage / group / replica index), which
  the scheduler and the performance matrix use.

Components satisfy the cluster's ``Resident`` protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.resources import ResourceVector
from repro.errors import TopologyError
from repro.simcore.distributions import Distribution

__all__ = ["ComponentClass", "Component"]


class ComponentClass(enum.Enum):
    """Functional role of a component in the Nutch-like service (Fig. 1).

    §VI-D exploits homogeneity within a class: "only one out of all
    homogeneous components needs to be profiled".
    """

    SEGMENTING = "segmenting"
    SEARCHING = "searching"
    AGGREGATING = "aggregating"
    GENERIC = "generic"


@dataclass(eq=False)
class Component:
    """A single service component (Resident protocol: name + demand).

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"searching-g03-r1"``.
    cls:
        The component's :class:`ComponentClass` (profiling equivalence
        class).
    base_service:
        Service-time distribution on an *idle* node, in seconds.
    demand:
        The component's resource footprint ``U_ci`` *at the reference
        request rate* ``reference_rps``.
    reference_rps / idle_fraction / max_demand_scale:
        Load model of the footprint: serving requests costs resources,
        so the *effective* demand scales affinely with the component's
        current request rate —
        ``demand · clip(idle_fraction + (1 − idle_fraction)·rps/reference,
        idle_fraction, max_demand_scale)``.
        This is the feedback loop that makes request redundancy
        expensive: a replica executing k× the requests burns ~k× the
        shared resources and interferes with its co-runners (the
        paper's §VI-C observation that redundancy "adversely
        deteriorates the service performance when load gets heavier").
    stage_index / group_index / replica_index:
        Position inside the service topology; filled by the topology
        constructor.

    Notes
    -----
    The ``demand`` attribute read by the cluster's contention
    accounting is the *effective* (load-scaled) demand; the constructor
    argument is stored as :attr:`base_demand`.  With the default
    ``load_rps == reference_rps`` the two coincide.
    """

    name: str
    cls: ComponentClass
    base_service: Distribution
    demand: ResourceVector = field(default_factory=ResourceVector.zero)
    reference_rps: float = 10.0
    idle_fraction: float = 0.4
    max_demand_scale: float = 3.0
    stage_index: int = -1
    group_index: int = -1
    replica_index: int = -1

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("component name must be non-empty")
        if self.base_service.mean <= 0:
            raise TopologyError(
                f"component {self.name} base service mean must be positive"
            )
        if self.reference_rps <= 0:
            raise TopologyError("reference_rps must be positive")
        if not 0 <= self.idle_fraction <= 1:
            raise TopologyError("idle_fraction must be in [0, 1]")
        if self.max_demand_scale < 1:
            raise TopologyError("max_demand_scale must be >= 1")
        # Reinterpret the constructor's `demand` as the base footprint
        # and make the public attribute load-aware.
        self.base_demand: ResourceVector = self.demand
        self.load_rps: float = self.reference_rps
        self._refresh_effective_demand()

    def _refresh_effective_demand(self) -> None:
        scale = self.idle_fraction + (1.0 - self.idle_fraction) * (
            self.load_rps / self.reference_rps
        )
        scale = min(max(scale, self.idle_fraction), self.max_demand_scale)
        self.demand = self.base_demand * scale

    def set_load(self, rps: float) -> None:
        """Update the component's request rate; rescales its demand."""
        if rps < 0:
            raise TopologyError(f"load must be >= 0, got {rps}")
        self.load_rps = float(rps)
        self._refresh_effective_demand()

    @property
    def demand_scale(self) -> float:
        """Current effective-demand multiplier."""
        base = self.base_demand.norm()
        return self.demand.norm() / base if base > 0 else 1.0

    @property
    def base_mean(self) -> float:
        """Mean idle-node service time (seconds)."""
        return self.base_service.mean

    @property
    def base_scv(self) -> float:
        """Squared coefficient of variation of the base service time."""
        return self.base_service.scv

    def positioned(
        self, stage_index: int, group_index: int, replica_index: int
    ) -> "Component":
        """Fill in topology coordinates (called by the topology builder)."""
        self.stage_index = stage_index
        self.group_index = group_index
        self.replica_index = replica_index
        return self

    def __repr__(self) -> str:
        return (
            f"Component({self.name}, {self.cls.value}, "
            f"base={self.base_service.mean * 1e3:.2f}ms)"
        )
