"""Request records for the fine-grained event-driven simulator.

The vectorised interval simulator never materialises these (it works on
NumPy arrays); the DES reference simulator uses them to track each
request's journey through the topology so integration tests can compare
both paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SimulationError

__all__ = ["SubRequestOutcome", "Request"]


@dataclass
class SubRequestOutcome:
    """One copy of a request at one component."""

    component_name: str
    arrival_time: float
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    cancelled: bool = False

    @property
    def latency(self) -> Optional[float]:
        """Sojourn time (queueing + service), or None if unfinished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def wait(self) -> Optional[float]:
        """Queueing delay, or None if not started."""
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time


@dataclass
class Request:
    """A user request traversing the whole service."""

    request_id: int
    arrival_time: float
    stage_arrivals: Dict[int, float] = field(default_factory=dict)
    stage_finishes: Dict[int, float] = field(default_factory=dict)
    outcomes: Dict[str, SubRequestOutcome] = field(default_factory=dict)
    finish_time: Optional[float] = None
    #: Request-class name under a mixed-class scenario (None when the
    #: run is single-class — the homogeneous paper population).
    class_name: Optional[str] = None

    @property
    def overall_latency(self) -> float:
        """End-to-end latency; raises if the request is still in flight."""
        if self.finish_time is None:
            raise SimulationError(
                f"request {self.request_id} has not finished"
            )
        return self.finish_time - self.arrival_time

    def stage_latency(self, stage_index: int) -> float:
        """Latency of one stage for this request."""
        if (
            stage_index not in self.stage_arrivals
            or stage_index not in self.stage_finishes
        ):
            raise SimulationError(
                f"request {self.request_id} has no completed stage {stage_index}"
            )
        return self.stage_finishes[stage_index] - self.stage_arrivals[stage_index]

    def record_outcome(self, key: str, outcome: SubRequestOutcome) -> None:
        """Attach a sub-request outcome under a unique key."""
        if key in self.outcomes:
            raise SimulationError(f"duplicate outcome key {key!r}")
        self.outcomes[key] = outcome
