"""The online service: topology + identity + deployment helpers."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.cluster.placement import (
    least_loaded_placement,
    random_placement,
    round_robin_placement,
)
from repro.errors import TopologyError
from repro.service.component import Component, ComponentClass
from repro.service.topology import ServiceTopology

__all__ = ["OnlineService"]


class OnlineService:
    """A named, deployable multi-stage online service.

    Wraps a :class:`~repro.service.topology.ServiceTopology` with the
    operations the experiment harness needs: deploying onto a cluster,
    looking components up per class (the §VI-D profiling trick), and
    exposing the component list in performance-matrix row order.
    """

    def __init__(self, name: str, topology: ServiceTopology) -> None:
        if not name:
            raise TopologyError("service name must be non-empty")
        self.name = name
        self.topology = topology

    # ------------------------------------------------------------------
    # component views
    # ------------------------------------------------------------------
    @property
    def components(self) -> List[Component]:
        """All components in matrix row order."""
        return self.topology.components

    @property
    def n_components(self) -> int:
        """The paper's ``m``."""
        return self.topology.n_components

    def components_of_class(self, cls: ComponentClass) -> List[Component]:
        """All components of a profiling equivalence class."""
        return [c for c in self.components if c.cls is cls]

    def classes(self) -> List[ComponentClass]:
        """Distinct component classes, in first-appearance order."""
        seen: Dict[ComponentClass, None] = {}
        for c in self.components:
            seen.setdefault(c.cls)
        return list(seen)

    def representative(self, cls: ComponentClass) -> Component:
        """One component per class — '§VI-D: only one out of all
        homogeneous components needs to be profiled'."""
        for c in self.components:
            if c.cls is cls:
                return c
        raise TopologyError(f"service has no component of class {cls.value}")

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        cluster: Cluster,
        strategy: str = "round_robin",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Place every component on the cluster.

        ``strategy`` ∈ {"round_robin", "random", "least_loaded"}; the
        random strategy needs ``rng``.
        """
        comps: Sequence[Component] = self.components
        if strategy == "round_robin":
            round_robin_placement(cluster, comps, MachineKind.SERVICE)
        elif strategy == "random":
            if rng is None:
                raise TopologyError("random deployment needs an rng")
            random_placement(cluster, comps, rng, MachineKind.SERVICE)
        elif strategy == "least_loaded":
            least_loaded_placement(cluster, comps, MachineKind.SERVICE)
        else:
            raise TopologyError(f"unknown deployment strategy {strategy!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OnlineService({self.name}, {self.topology.describe()})"
