"""Factory for the paper's Fig. 1 Nutch-like search service.

Three sequential stages:

1. **segmenting** — one load-shared group of query segmenters;
2. **searching** — ``n_search_groups`` index shards, each replicated
   ``replicas_per_group`` times (defaults give the paper's 100
   searching VMs as 20 shards × 5 replicas);
3. **aggregating** — one load-shared group of result aggregators.

Base service-time distributions are log-normal (positively skewed, as
measured RPC handlers are), with means chosen so the service is stable
for the paper's whole arrival-rate sweep (10–500 req/s) under light
interference, but saturates exactly where the paper's baselines do: a
request-redundancy policy multiplying per-replica load at 500 req/s
drives searching replicas past ``rho = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourceVector
from repro.errors import TopologyError
from repro.service.component import Component, ComponentClass
from repro.service.service import OnlineService
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.units import ms

__all__ = ["NutchConfig", "build_nutch_service"]


@dataclass(frozen=True)
class NutchConfig:
    """Shape and speed of the generated Nutch-like service."""

    n_search_groups: int = 20
    replicas_per_group: int = 5
    n_segmenters: int = 4
    n_aggregators: int = 4
    segment_mean_s: float = ms(1.0)
    search_mean_s: float = ms(3.5)
    aggregate_mean_s: float = ms(1.2)
    segment_scv: float = 0.3
    search_scv: float = 0.5
    aggregate_scv: float = 0.3

    def __post_init__(self) -> None:
        if min(self.n_search_groups, self.replicas_per_group) < 1:
            raise TopologyError("searching stage needs >= 1 group and replica")
        if min(self.n_segmenters, self.n_aggregators) < 1:
            raise TopologyError("segmenting/aggregating stages need >= 1 replica")
        for mean in (self.segment_mean_s, self.search_mean_s, self.aggregate_mean_s):
            if mean <= 0:
                raise TopologyError("service-time means must be positive")
        for scv in (self.segment_scv, self.search_scv, self.aggregate_scv):
            if scv <= 0:
                raise TopologyError("service-time SCVs must be positive")

    @property
    def n_searching(self) -> int:
        """Total searching components (the paper's '100 VMs')."""
        return self.n_search_groups * self.replicas_per_group


# Per-class resource footprints at the reference request rate (the
# component's own U_ci in Table III): searching components hammer the
# shared cache and disk (index lookups), segmenters are CPU-lean,
# aggregators network-lean.  Sized so that the full service at the
# paper's top arrival rate (500 req/s) consumes roughly 40 % of the
# cluster's cores when perfectly balanced — leaving interference from
# batch jobs, not raw capacity, as the latency driver.
_DEMANDS = {
    ComponentClass.SEGMENTING: ResourceVector(
        core=0.030, cache_mpki=0.5, disk_bw=0.5, net_bw=1.0
    ),
    ComponentClass.SEARCHING: ResourceVector(
        core=0.040, cache_mpki=1.0, disk_bw=4.0, net_bw=1.5
    ),
    ComponentClass.AGGREGATING: ResourceVector(
        core=0.025, cache_mpki=0.4, disk_bw=0.5, net_bw=2.0
    ),
}


def _component(cls: ComponentClass, name: str, mean: float, scv: float) -> Component:
    from repro.simcore.distributions import LogNormal

    return Component(
        name=name,
        cls=cls,
        base_service=LogNormal(mean, scv),
        demand=_DEMANDS[cls],
    )


def build_nutch_service(config: NutchConfig | None = None) -> OnlineService:
    """Build the Fig. 1 three-stage search service."""
    cfg = config or NutchConfig()

    segmenting = Stage(
        name="segmenting",
        groups=[
            ReplicaGroup(
                name="segment-g0",
                components=[
                    _component(
                        ComponentClass.SEGMENTING,
                        f"segmenting-r{r}",
                        cfg.segment_mean_s,
                        cfg.segment_scv,
                    )
                    for r in range(cfg.n_segmenters)
                ],
            )
        ],
    )
    searching = Stage(
        name="searching",
        groups=[
            ReplicaGroup(
                name=f"search-g{g:02d}",
                components=[
                    _component(
                        ComponentClass.SEARCHING,
                        f"searching-g{g:02d}-r{r}",
                        cfg.search_mean_s,
                        cfg.search_scv,
                    )
                    for r in range(cfg.replicas_per_group)
                ],
            )
            for g in range(cfg.n_search_groups)
        ],
    )
    aggregating = Stage(
        name="aggregating",
        groups=[
            ReplicaGroup(
                name="aggregate-g0",
                components=[
                    _component(
                        ComponentClass.AGGREGATING,
                        f"aggregating-r{r}",
                        cfg.aggregate_mean_s,
                        cfg.aggregate_scv,
                    )
                    for r in range(cfg.n_aggregators)
                ],
            )
        ],
    )
    topology = ServiceTopology([segmenting, searching, aggregating])
    return OnlineService("nutch-search", topology)
