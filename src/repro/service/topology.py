"""Service topology: stages of replica groups (paper Eqs. 3–4 shape).

Semantics
---------
- A request traverses the stages **sequentially**; the overall latency
  is the sum of stage latencies (Eq. 4).
- Within a stage, the request fans out to **every replica group**
  (search shards all hold different index partitions) and the stage
  completes when the slowest group responds (Eq. 3's max).
- Within a group, replicas are interchangeable; which replica(s)
  receive a copy of the request is the *policy's* decision (Basic sends
  to one, RED-k to k, RI-p reissues conditionally).  Load-sharing a
  stage over several equivalent servers is therefore modeled as one
  group with several replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import networkx as nx

from repro.errors import TopologyError
from repro.service.component import Component

__all__ = ["ReplicaGroup", "Stage", "ServiceTopology"]


@dataclass
class ReplicaGroup:
    """Interchangeable replicas of one shard/partition."""

    name: str
    components: List[Component]

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("group name must be non-empty")
        if not self.components:
            raise TopologyError(f"group {self.name} must have >= 1 replica")

    @property
    def n_replicas(self) -> int:
        """Number of interchangeable replicas in this group."""
        return len(self.components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)


@dataclass
class Stage:
    """One sequential stage: a set of groups the request fans out to."""

    name: str
    groups: List[ReplicaGroup]

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("stage name must be non-empty")
        if not self.groups:
            raise TopologyError(f"stage {self.name} must have >= 1 group")

    @property
    def components(self) -> List[Component]:
        """All components of the stage, group-major order."""
        return [c for g in self.groups for c in g.components]

    @property
    def n_groups(self) -> int:
        """Fan-out width of the stage."""
        return len(self.groups)

    @property
    def max_replicas(self) -> int:
        """Largest replica count over the stage's groups."""
        return max(g.n_replicas for g in self.groups)

    def __iter__(self) -> Iterator[ReplicaGroup]:
        return iter(self.groups)


class ServiceTopology:
    """A validated chain of stages.

    Construction assigns every component its
    ``(stage_index, group_index, replica_index)`` coordinates and
    checks name uniqueness — the invariants everything downstream
    (performance matrix rows, scheduler candidate sets) relies on.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise TopologyError("a service needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate stage names in {names}")
        self._stages = list(stages)
        seen: set[str] = set()
        for si, stage in enumerate(self._stages):
            for gi, group in enumerate(stage.groups):
                for ri, comp in enumerate(group.components):
                    if comp.name in seen:
                        raise TopologyError(
                            f"duplicate component name {comp.name!r}"
                        )
                    seen.add(comp.name)
                    comp.positioned(si, gi, ri)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def stages(self) -> List[Stage]:
        """Stages in request-traversal order."""
        return list(self._stages)

    @property
    def n_stages(self) -> int:
        """Number of sequential stages (paper's S)."""
        return len(self._stages)

    @property
    def components(self) -> List[Component]:
        """All components, stage-major order — the matrix row order."""
        return [c for s in self._stages for c in s.components]

    @property
    def n_components(self) -> int:
        """Total number of components (paper's m)."""
        return len(self.components)

    def stage(self, name: str) -> Stage:
        """Look a stage up by name."""
        for s in self._stages:
            if s.name == name:
                return s
        raise TopologyError(f"no stage named {name!r}")

    def component(self, name: str) -> Component:
        """Look a component up by name."""
        for c in self.components:
            if c.name == name:
                return c
        raise TopologyError(f"no component named {name!r}")

    def component_index(self, component: Component) -> int:
        """Performance-matrix row index of ``component``."""
        for i, c in enumerate(self.components):
            if c is component:
                return i
        raise TopologyError(f"{component.name} is not part of this topology")

    # ------------------------------------------------------------------
    # graph view
    # ------------------------------------------------------------------
    def to_graph(self) -> nx.DiGraph:
        """Request-flow DAG: entry → stage fan-outs → exit.

        Useful for visualisation and for asserting structural properties
        in tests; nodes are component names plus ``__entry__`` and
        ``__exit__`` sentinels.
        """
        g = nx.DiGraph()
        prev_layer = ["__entry__"]
        g.add_node("__entry__", kind="sentinel")
        for stage in self._stages:
            layer = []
            for comp in stage.components:
                g.add_node(comp.name, kind="component", stage=stage.name)
                for p in prev_layer:
                    g.add_edge(p, comp.name)
                layer.append(comp.name)
            prev_layer = layer
        g.add_node("__exit__", kind="sentinel")
        for p in prev_layer:
            g.add_edge(p, "__exit__")
        return g

    def describe(self) -> str:
        """Human-readable ``stage(name): groups x replicas`` summary."""
        parts = []
        for s in self._stages:
            reps = {g.n_replicas for g in s.groups}
            reps_s = str(reps.pop()) if len(reps) == 1 else "var"
            parts.append(f"{s.name}[{s.n_groups}x{reps_s}]")
        return " -> ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceTopology({self.describe()})"
