"""Service topology: a validated request DAG of stages (Eqs. 3–4, generalised).

Semantics
---------
- A request traverses the stages as a **DAG**: every stage lists the
  stages whose completion it waits on (:attr:`Stage.predecessors`).
  A stage starts when its *slowest* predecessor finishes, so the
  overall latency is the **critical-path composition** of stage
  latencies: ``completion(s) = max_p completion(p) + latency(s)``,
  with the overall latency the max over the exit stages' completions.
  When every stage's predecessor is simply the previous stage (the
  default), this degenerates exactly to the paper's Eq. 4 — the sum of
  stage latencies along the chain.  *Skip edges* (a later stage naming
  an earlier, non-adjacent predecessor) are allowed: predecessors must
  only appear earlier in the stage list, which keeps stage-major order
  a topological order of the DAG.
- Within a stage, the request fans out to the stage's **replica
  groups** (search shards all hold different index partitions) and the
  stage completes when the slowest *participating* group responds
  (Eq. 3's max).  A group with ``participation < 1`` is **optional**:
  each request includes it in the fan-out with that probability
  (probabilistic branching; the Bernoulli draws come from the
  caller's :class:`~repro.rng.RngRegistry`-derived request stream, so
  sample paths stay deterministic per seed).  A request that skips
  every group of a stage passes through it with zero added latency.
- Within a group, replicas are interchangeable; which replica(s)
  receive a copy of the request is the *policy's* decision (Basic sends
  to one, RED-k to k, RI-p reissues conditionally).  Load-sharing a
  stage over several equivalent servers is therefore modeled as one
  group with several replicas.

The stage-level DAG built here (``stage_graph``/:meth:`to_graph`) is
the source of truth for traversal order everywhere downstream: both
simulators walk :attr:`ServiceTopology.predecessor_indices`, and the
scheduler's performance matrix composes predicted stage latencies
along the same edges (:mod:`repro.model.service_latency`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.errors import TopologyError
from repro.service.component import Component

__all__ = [
    "ReplicaGroup",
    "Stage",
    "ServiceTopology",
    "RequestClass",
    "ResolvedClassMix",
]


@dataclass
class ReplicaGroup:
    """Interchangeable replicas of one shard/partition.

    ``participation`` is the probability that a request's stage fan-out
    includes this group (1.0 — the default — is the paper's
    deterministic fan-out; anything lower makes the group *optional*,
    drawn per request).
    """

    name: str
    components: List[Component]
    participation: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("group name must be non-empty")
        if not self.components:
            raise TopologyError(f"group {self.name} must have >= 1 replica")
        if not 0.0 < self.participation <= 1.0:
            raise TopologyError(
                f"group {self.name} participation must be in (0, 1], "
                f"got {self.participation}"
            )

    @property
    def n_replicas(self) -> int:
        """Number of interchangeable replicas in this group."""
        return len(self.components)

    @property
    def optional(self) -> bool:
        """Whether requests may skip this group (``participation < 1``)."""
        return self.participation < 1.0

    def __iter__(self) -> Iterator[Component]:
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)


@dataclass
class Stage:
    """One stage of the request DAG: a set of groups the request fans
    out to once every predecessor stage has completed.

    ``predecessors`` names the stages this one waits on.  ``None`` (the
    default) means *the previous stage in the list* — the paper's chain
    — or no predecessor for the first stage.  An explicit tuple may
    name any **earlier** stages (skip edges included); ``()`` marks an
    additional entry stage running in parallel from request arrival.
    """

    name: str
    groups: List[ReplicaGroup]
    predecessors: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("stage name must be non-empty")
        if not self.groups:
            raise TopologyError(f"stage {self.name} must have >= 1 group")
        if self.predecessors is not None:
            preds = tuple(self.predecessors)
            if len(set(preds)) != len(preds):
                raise TopologyError(
                    f"stage {self.name} lists duplicate predecessors {preds}"
                )
            if self.name in preds:
                raise TopologyError(f"stage {self.name} cannot precede itself")
            self.predecessors = preds

    @property
    def components(self) -> List[Component]:
        """All components of the stage, group-major order."""
        return [c for g in self.groups for c in g.components]

    @property
    def n_groups(self) -> int:
        """Fan-out width of the stage."""
        return len(self.groups)

    @property
    def max_replicas(self) -> int:
        """Largest replica count over the stage's groups."""
        return max(g.n_replicas for g in self.groups)

    def __iter__(self) -> Iterator[ReplicaGroup]:
        return iter(self.groups)


@dataclass(frozen=True)
class RequestClass:
    """One heterogeneous request population over a shared topology.

    A class restricts the topology's request DAG per request: its
    ``participation`` mapping overrides group participation
    probabilities by group name (``0.0`` means requests of this class
    never fan out to that group — a class-conditional DAG restriction;
    unnamed groups keep their topology default), ``service_scale``
    multiplies every service time the class's requests experience
    (autocomplete is lighter than full search), and ``weight`` is the
    class's share of the arrival stream.
    """

    name: str
    weight: float = 1.0
    service_scale: float = 1.0
    #: Group name -> participation probability in [0, 1] for this
    #: class (overrides the group's default; 0 removes the group from
    #: this class's DAG).
    participation: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("request class name must be non-empty")
        if self.weight < 0:
            raise TopologyError(
                f"class {self.name} weight must be >= 0, got {self.weight}"
            )
        if self.service_scale <= 0:
            raise TopologyError(
                f"class {self.name} service_scale must be positive, "
                f"got {self.service_scale}"
            )
        for group, p in self.participation.items():
            if not 0.0 <= p <= 1.0:
                raise TopologyError(
                    f"class {self.name} participation for group {group!r} "
                    f"must be in [0, 1], got {p}"
                )


@dataclass(frozen=True)
class ResolvedClassMix:
    """A class mix resolved against one topology (the simulator view).

    Built by :meth:`ServiceTopology.resolve_classes`; rows are classes,
    group columns follow the topology's stage-major group order (the
    same global-group order the performance matrix uses).  Pure data —
    both simulators, the runner's load model and the predictor compose
    from these arrays without re-deriving the mapping.
    """

    names: Tuple[str, ...]
    #: (C,) normalised mix weights, all > 0.
    weights: np.ndarray
    #: (C,) per-class service-time multipliers.
    service_scales: np.ndarray
    #: (C, G) effective participation per class and stage-major group.
    group_participation: np.ndarray
    #: Stage-major group names aligned with the columns above.
    group_names: Tuple[str, ...]
    #: (C, S) per-class stage membership weight: the max participation
    #: over the stage's groups — the model layer's critical-path weight.
    stage_participation: np.ndarray

    @property
    def n_classes(self) -> int:
        return len(self.names)

    @property
    def multi_class(self) -> bool:
        """Whether requests need a per-request class-assignment draw."""
        return self.n_classes > 1

    def expected_group_participation(self) -> np.ndarray:
        """(G,) mix-weighted participation per group (load model input)."""
        return self.weights @ self.group_participation

    def class_of(self, u: np.ndarray) -> np.ndarray:
        """Map uniforms in [0, 1) to class indices by mix weight."""
        cum = np.cumsum(self.weights)
        return np.minimum(
            np.searchsorted(cum, u, side="right"), self.n_classes - 1
        )

    def describe(self) -> str:
        """One line per class: weight, scale, DAG restrictions."""
        lines = []
        for c, name in enumerate(self.names):
            restricted = [
                f"{g}={self.group_participation[c, gi]:g}"
                for gi, g in enumerate(self.group_names)
                if not np.isclose(
                    self.group_participation[c, gi],
                    self._default_p[gi],
                )
            ]
            extra = f" [{', '.join(restricted)}]" if restricted else ""
            lines.append(
                f"{name}(w={self.weights[c]:.2f}, "
                f"x{self.service_scales[c]:g}){extra}"
            )
        return ", ".join(lines)

    # Stashed by resolve_classes so describe() can show only the
    # overrides that actually differ from the topology defaults.
    _default_p: np.ndarray = field(default=None, repr=False, compare=False)


class ServiceTopology:
    """A validated request DAG of stages.

    Construction resolves every stage's predecessors (``None`` → the
    previous stage), builds the stage-level DAG, assigns every
    component its ``(stage_index, group_index, replica_index)``
    coordinates and checks name uniqueness — the invariants everything
    downstream (performance matrix rows, scheduler candidate sets, the
    simulators' traversal order) relies on.  Predecessors must appear
    *earlier* in the stage list, so the definition order is always a
    topological order and the matrix's stage-major row layout is
    preserved for any DAG.
    """

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise TopologyError("a service needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate stage names in {names}")
        self._stages = list(stages)
        index_of = {name: i for i, name in enumerate(names)}

        # Resolve predecessor names to indices; None = chain default.
        preds: List[Tuple[int, ...]] = []
        for si, stage in enumerate(self._stages):
            if stage.predecessors is None:
                preds.append((si - 1,) if si > 0 else ())
                continue
            resolved = []
            for pname in stage.predecessors:
                pi = index_of.get(pname)
                if pi is None:
                    raise TopologyError(
                        f"stage {stage.name!r} names unknown predecessor "
                        f"{pname!r} (stages: {names})"
                    )
                if pi >= si:
                    raise TopologyError(
                        f"stage {stage.name!r} predecessor {pname!r} must be "
                        "defined earlier in the stage list (definition order "
                        "is the topological order)"
                    )
                resolved.append(pi)
            preds.append(tuple(resolved))
        self._predecessors: Tuple[Tuple[int, ...], ...] = tuple(preds)
        succs: List[List[int]] = [[] for _ in self._stages]
        for si, ps in enumerate(self._predecessors):
            for p in ps:
                succs[p].append(si)
        self._successors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(s) for s in succs
        )
        # The stage-level DAG — the structural source of truth.  The
        # earlier-only predecessor rule already guarantees acyclicity;
        # the networkx check is a belt against future refactors.
        self._stage_graph = nx.DiGraph()
        self._stage_graph.add_nodes_from(names)
        for si, ps in enumerate(self._predecessors):
            for p in ps:
                self._stage_graph.add_edge(names[p], names[si])
        if not nx.is_directed_acyclic_graph(self._stage_graph):
            raise TopologyError(  # pragma: no cover - unreachable belt
                "stage predecessor edges form a cycle"
            )

        seen: set[str] = set()
        for si, stage in enumerate(self._stages):
            for gi, group in enumerate(stage.groups):
                for ri, comp in enumerate(group.components):
                    if comp.name in seen:
                        raise TopologyError(
                            f"duplicate component name {comp.name!r}"
                        )
                    seen.add(comp.name)
                    comp.positioned(si, gi, ri)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def stages(self) -> List[Stage]:
        """Stages in definition (topological, matrix-row) order."""
        return list(self._stages)

    @property
    def n_stages(self) -> int:
        """Number of stages (paper's S)."""
        return len(self._stages)

    @property
    def predecessor_indices(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-stage predecessor stage indices (empty = entry stage)."""
        return self._predecessors

    @property
    def successor_indices(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-stage successor stage indices (empty = exit stage)."""
        return self._successors

    @property
    def exit_indices(self) -> Tuple[int, ...]:
        """Indices of the exit stages (no successors)."""
        return tuple(
            si for si, succ in enumerate(self._successors) if not succ
        )

    @property
    def is_chain(self) -> bool:
        """Whether this DAG is exactly the paper's sequential chain.

        True iff stage ``s`` waits on exactly stage ``s − 1`` (and the
        first stage on nothing) and no group is optional — the
        degenerate case every pre-DAG consumer assumed, kept on its own
        fast path so chain scenarios stay bit-identical.
        """
        chain_edges = all(
            ps == ((si - 1,) if si > 0 else ())
            for si, ps in enumerate(self._predecessors)
        )
        return chain_edges and not self.has_optional_groups

    @property
    def has_optional_groups(self) -> bool:
        """Whether any group is probabilistically skipped."""
        return any(g.optional for s in self._stages for g in s.groups)

    def resolve_classes(
        self,
        classes: Sequence[RequestClass],
        mix: Optional[Mapping[str, float]] = None,
    ) -> Optional[ResolvedClassMix]:
        """Resolve a class declaration list against this topology.

        ``mix`` optionally re-weights the declared classes by name (the
        CLI's ``--classes``); weights of 0 drop a class from the run.
        Returns ``None`` when the surviving mix is the **exact
        degenerate case** — no classes declared, or a single class with
        unit service scale and no participation overrides — so callers
        branch to the pre-class code path and stay bit-identical.
        Raises :class:`~repro.errors.TopologyError` on unknown class or
        group names, or when every class is weighted out.
        """
        classes = list(classes or ())
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate request class names in {names}")
        if mix is not None:
            unknown = set(mix) - set(names)
            if unknown:
                raise TopologyError(
                    f"mix names unknown classes {sorted(unknown)} "
                    f"(declared: {names or 'none'})"
                )
            for w in mix.values():
                if w < 0:
                    raise TopologyError("mix weights must be >= 0")
            classes = [
                RequestClass(
                    name=c.name,
                    weight=float(mix.get(c.name, c.weight)),
                    service_scale=c.service_scale,
                    participation=c.participation,
                )
                for c in classes
            ]
        group_names = tuple(
            g.name for s in self._stages for g in s.groups
        )
        known = set(group_names)
        for c in classes:
            bad = set(c.participation) - known
            if bad:
                raise TopologyError(
                    f"class {c.name} overrides unknown groups {sorted(bad)}"
                )
        active = [c for c in classes if c.weight > 0]
        if classes and not active:
            raise TopologyError(
                "every request class has zero weight; at least one must "
                "remain in the mix"
            )
        if not active:
            return None
        default_p = np.array(
            [g.participation for s in self._stages for g in s.groups]
        )
        part = np.stack(
            [
                np.array(
                    [
                        float(c.participation.get(g, default_p[gi]))
                        for gi, g in enumerate(group_names)
                    ]
                )
                for c in active
            ]
        )
        scales = np.array([c.service_scale for c in active])
        if (
            len(active) == 1
            and scales[0] == 1.0
            and np.array_equal(part[0], default_p)
        ):
            # A single class that neither rescales nor restricts is the
            # homogeneous population — take the pre-class fast path.
            return None
        weights = np.array([c.weight for c in active])
        weights = weights / weights.sum()
        # Per-class stage membership: the strongest group participation
        # in the stage (a stage every group of which is skipped carries
        # zero critical-path weight for the class).
        offsets = []
        gi = 0
        for s in self._stages:
            offsets.append((gi, gi + len(s.groups)))
            gi += len(s.groups)
        stage_part = np.stack(
            [
                np.array([part[c, lo:hi].max() for lo, hi in offsets])
                for c in range(len(active))
            ]
        )
        return ResolvedClassMix(
            names=tuple(c.name for c in active),
            weights=weights,
            service_scales=scales,
            group_participation=part,
            group_names=group_names,
            stage_participation=stage_part,
            _default_p=default_p,
        )

    @property
    def components(self) -> List[Component]:
        """All components, stage-major order — the matrix row order."""
        return [c for s in self._stages for c in s.components]

    @property
    def n_components(self) -> int:
        """Total number of components (paper's m)."""
        return len(self.components)

    def stage(self, name: str) -> Stage:
        """Look a stage up by name."""
        for s in self._stages:
            if s.name == name:
                return s
        raise TopologyError(f"no stage named {name!r}")

    def component(self, name: str) -> Component:
        """Look a component up by name."""
        for c in self.components:
            if c.name == name:
                return c
        raise TopologyError(f"no component named {name!r}")

    def component_index(self, component: Component) -> int:
        """Performance-matrix row index of ``component``."""
        for i, c in enumerate(self.components):
            if c is component:
                return i
        raise TopologyError(f"{component.name} is not part of this topology")

    # ------------------------------------------------------------------
    # graph views
    # ------------------------------------------------------------------
    @property
    def stage_graph(self) -> nx.DiGraph:
        """The stage-level request DAG (nodes are stage names)."""
        return self._stage_graph.copy()

    def to_graph(self) -> nx.DiGraph:
        """Component-level request-flow DAG: entry → stages → exit.

        Expanded from the stage DAG: every predecessor stage's
        components feed every component of the dependent stage; entry
        stages hang off the ``__entry__`` sentinel and exit stages feed
        ``__exit__``.  Node attributes carry the component's stage and
        its group's participation probability.
        """
        g = nx.DiGraph()
        g.add_node("__entry__", kind="sentinel")
        g.add_node("__exit__", kind="sentinel")
        for stage in self._stages:
            for group in stage.groups:
                for comp in group.components:
                    g.add_node(
                        comp.name,
                        kind="component",
                        stage=stage.name,
                        participation=group.participation,
                    )
        for si, stage in enumerate(self._stages):
            sources = (
                [
                    c.name
                    for p in self._predecessors[si]
                    for c in self._stages[p].components
                ]
                if self._predecessors[si]
                else ["__entry__"]
            )
            for comp in stage.components:
                for src in sources:
                    g.add_edge(src, comp.name)
        for si in self.exit_indices:
            for comp in self._stages[si].components:
                g.add_edge(comp.name, "__exit__")
        return g

    def describe(self) -> str:
        """Human-readable summary.

        Chains keep the familiar ``stage[GxR] -> stage[GxR]`` arrow
        form; DAGs annotate each stage with its predecessors and each
        stage's optional-group count, e.g.
        ``blend[1x3 <- parse,web,ads]``.
        """
        chain = self.is_chain
        parts = []
        for si, s in enumerate(self._stages):
            reps = {g.n_replicas for g in s.groups}
            reps_s = str(reps.pop()) if len(reps) == 1 else "var"
            shape = f"{s.n_groups}x{reps_s}"
            n_opt = sum(1 for g in s.groups if g.optional)
            if n_opt:
                shape += f" {n_opt}opt"
            if chain:
                parts.append(f"{s.name}[{shape}]")
            else:
                preds = self._predecessors[si]
                origin = (
                    "entry"
                    if not preds
                    else ",".join(self._stages[p].name for p in preds)
                )
                parts.append(f"{s.name}[{shape} <- {origin}]")
        sep = " -> " if chain else " | "
        return sep.join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceTopology({self.describe()})"
