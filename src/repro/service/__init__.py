"""Online-service substrate: multi-stage, fan-out/fan-in services.

The paper's running example (Fig. 1) is a Nutch search engine whose
request processing has three sequential stages, the middle one
parallelised across ~100 *searching* components.  This subpackage models
the general shape:

- a :class:`~repro.service.component.Component` is a single-server FIFO
  queue hosted in its own VM (Resident protocol for the cluster);
- a :class:`~repro.service.topology.ReplicaGroup` is a set of
  interchangeable components (replicas of the same shard) — the unit
  request-redundancy and reissue policies act on;
- a :class:`~repro.service.topology.Stage` fans a request out to **all**
  of its groups and completes at the max (paper Eq. 3);
- a :class:`~repro.service.topology.ServiceTopology` chains stages
  sequentially (paper Eq. 4);
- :func:`~repro.service.nutch.build_nutch_service` builds the paper's
  Fig. 1 topology.
"""

from repro.service.component import Component, ComponentClass
from repro.service.nutch import NutchConfig, build_nutch_service
from repro.service.request import Request, SubRequestOutcome
from repro.service.service import OnlineService
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage

__all__ = [
    "Component",
    "ComponentClass",
    "ReplicaGroup",
    "Stage",
    "ServiceTopology",
    "OnlineService",
    "Request",
    "SubRequestOutcome",
    "NutchConfig",
    "build_nutch_service",
]
