"""``python -m repro`` → the CLI in :mod:`repro.cli`."""

import sys

from repro.cli import main

sys.exit(main())
