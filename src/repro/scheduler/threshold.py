"""Migration-threshold policies.

§VI-C: "the migration of components ... can be completed within 3
seconds ... we find out that 5 % of the accepted overall service
latency (100 ms) is a reasonable threshold value ... thus the threshold
in scheduling is set as 5 ms.  Applying an adaptive threshold to
improve the service performance is possible, but it is beyond the scope
of this paper."

We implement both: the paper's static ε and the adaptive extension
(ε as a fixed fraction of the currently predicted overall latency,
clamped to a sane band), which the ablation benchmark compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.units import ms

__all__ = ["ThresholdPolicy", "StaticThreshold", "AdaptiveThreshold"]


class ThresholdPolicy(ABC):
    """Maps the current predicted overall latency to a threshold ε."""

    @abstractmethod
    def epsilon(self, predicted_overall_s: float) -> float:
        """Threshold (seconds) below which migrations are not worth it."""


@dataclass(frozen=True)
class StaticThreshold(ThresholdPolicy):
    """The paper's fixed ε (default 5 ms)."""

    epsilon_s: float = ms(5)

    def __post_init__(self) -> None:
        if self.epsilon_s <= 0:
            raise SchedulingError(f"epsilon must be positive, got {self.epsilon_s}")

    def epsilon(self, predicted_overall_s: float) -> float:
        return self.epsilon_s


@dataclass(frozen=True)
class AdaptiveThreshold(ThresholdPolicy):
    """ε = ``fraction`` of the predicted overall latency, clamped.

    The paper's 5 ms is 5 % of the accepted 100 ms latency; the
    adaptive policy keeps that 5 % proportionality as load (and thus
    overall latency) moves, so light load doesn't over-migrate and
    heavy load doesn't under-migrate.
    """

    fraction: float = 0.05
    min_epsilon_s: float = ms(1)
    max_epsilon_s: float = ms(50)

    def __post_init__(self) -> None:
        if not 0 < self.fraction < 1:
            raise SchedulingError(f"fraction must be in (0, 1), got {self.fraction}")
        if not 0 < self.min_epsilon_s <= self.max_epsilon_s:
            raise SchedulingError(
                f"need 0 < min <= max, got [{self.min_epsilon_s}, "
                f"{self.max_epsilon_s}]"
            )

    def epsilon(self, predicted_overall_s: float) -> float:
        if predicted_overall_s < 0:
            raise SchedulingError(
                f"predicted overall latency must be >= 0, got {predicted_overall_s}"
            )
        return float(
            min(
                self.max_epsilon_s,
                max(self.min_epsilon_s, self.fraction * predicted_overall_s),
            )
        )
