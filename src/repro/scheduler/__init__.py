"""The PCS component-level scheduler — paper §V.

- :mod:`repro.scheduler.pcs` — Algorithm 1: the greedy migration loop
  over the performance matrix, with the paper's tie-breaking rule and
  migration threshold ε.
- :mod:`repro.scheduler.threshold` — static ε (the paper's 5 ms =
  5 % of the accepted 100 ms overall latency) and the adaptive variant
  the paper flags as possible future work.
- :mod:`repro.scheduler.hierarchical` — §VI-D's grouped strategy for
  services beyond ~640 components.
- :mod:`repro.scheduler.migration` — enforcement of the allocation
  array on a cluster, with the paper's migration-cost model.
"""

from repro.scheduler.hierarchical import HierarchicalScheduler
from repro.scheduler.migration import MigrationCostModel, MigrationExecutor
from repro.scheduler.pcs import (
    Migration,
    PCSScheduler,
    SchedulerConfig,
    SchedulingOutcome,
)
from repro.scheduler.threshold import AdaptiveThreshold, StaticThreshold

__all__ = [
    "SchedulerConfig",
    "Migration",
    "SchedulingOutcome",
    "PCSScheduler",
    "StaticThreshold",
    "AdaptiveThreshold",
    "HierarchicalScheduler",
    "MigrationExecutor",
    "MigrationCostModel",
]
