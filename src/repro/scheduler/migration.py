"""Migration enforcement and its cost model (paper §VI-C).

"Storm first uploads the source codes ... and the configuration
information of the component to ZooKeeper ... At each scheduling
interval, the migration of components (e.g. 10 to 20 components) can be
completed within 3 seconds without interrupting the running services
and only causes small consumptions of memory and I/O resources."

:class:`MigrationCostModel` turns that description into numbers the
experiment harness can apply: an enforcement wall-clock estimate and a
brief, small service-time penalty on freshly migrated components
(warm-up of caches on the destination node).
:class:`MigrationExecutor` applies a scheduling outcome to a live
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.errors import SchedulingError
from repro.scheduler.pcs import Migration, SchedulingOutcome
from repro.service.component import Component

__all__ = ["MigrationCostModel", "MigrationExecutor"]


@dataclass(frozen=True)
class MigrationCostModel:
    """Costs of enforcing migrations via the deployment APIs.

    Attributes
    ----------
    batch_time_s:
        Wall-clock to migrate a typical batch (the paper: ≤ 3 s for
        10–20 components) — modeled as affine: ``fixed + per_component·n``.
    per_component_s:
        Marginal per-component enforcement time.
    warmup_penalty:
        Multiplicative service-time penalty on a migrated component
        while its destination caches warm up.
    warmup_duration_s:
        How long the penalty lasts after enforcement.
    """

    fixed_s: float = 1.0
    per_component_s: float = 0.1
    warmup_penalty: float = 1.10
    warmup_duration_s: float = 10.0

    def __post_init__(self) -> None:
        if self.fixed_s < 0 or self.per_component_s < 0:
            raise SchedulingError("migration times must be >= 0")
        if self.warmup_penalty < 1.0:
            raise SchedulingError("warmup_penalty must be >= 1")
        if self.warmup_duration_s < 0:
            raise SchedulingError("warmup_duration_s must be >= 0")

    def enforcement_time_s(self, n_migrations: int) -> float:
        """Estimated wall-clock to enforce ``n_migrations``."""
        if n_migrations < 0:
            raise SchedulingError("n_migrations must be >= 0")
        if n_migrations == 0:
            return 0.0
        return self.fixed_s + self.per_component_s * n_migrations

    def paper_batch_consistent(self) -> bool:
        """Self-check: 10–20 components within 3 seconds (§VI-C)."""
        return self.enforcement_time_s(20) <= 3.0


class MigrationExecutor:
    """Applies a :class:`SchedulingOutcome` to a live cluster."""

    def __init__(
        self,
        cluster: Cluster,
        components: Sequence[Component],
        cost_model: MigrationCostModel | None = None,
    ) -> None:
        self.cluster = cluster
        self.components = list(components)
        self.cost_model = cost_model or MigrationCostModel()
        self.enforced = 0
        self.total_enforcement_time_s = 0.0

    def enforce(self, outcome: SchedulingOutcome) -> Dict[str, int]:
        """Enforce every migration of ``outcome`` on the cluster.

        Returns ``{component name: destination node index}`` for the
        components actually moved.  The executor trusts the outcome's
        allocation array: a mismatch between the outcome and the
        cluster's current placement raises.
        """
        moved: Dict[str, int] = {}
        for mig in outcome.migrations:
            component = self.components[mig.component_index]
            current = self.cluster.node_of(component)
            current_idx = self.cluster.node_index(current)
            if current_idx != mig.origin:
                raise SchedulingError(
                    f"{component.name}: outcome says origin {mig.origin} "
                    f"but cluster has it on {current_idx}"
                )
            destination = self.cluster.nodes[mig.destination]
            self.cluster.migrate(component, destination, MachineKind.SERVICE)
            moved[component.name] = mig.destination
        self.enforced += len(moved)
        self.total_enforcement_time_s += self.cost_model.enforcement_time_s(
            len(moved)
        )
        return moved

    def warmup_components(self, outcome: SchedulingOutcome) -> List[Component]:
        """Components that pay the warm-up penalty next interval."""
        return [self.components[m.component_index] for m in outcome.migrations]
