"""Hierarchical scheduling for very large services (paper §VI-D).

"For services with more components, the scheduler could apply a
hierarchical strategy that divides the components into small groups of
640 components or less and finds the appropriate component-node
allocation between groups and then within groups.  The scheduling
overhead therefore can remain low even with a large number of
components."

Implementation: components are split into contiguous stage-major chunks
of at most ``group_size``.  Chunks are scheduled one after another with
a *shared, live* node-totals vector, so each chunk sees the allocations
the previous chunks enforced — the "between groups" coordination — and
runs plain Algorithm 1 "within groups".  The per-interval cost drops
from O(m²k) to O(m·group_size·k).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.model.matrix import MatrixInputs
from repro.model.predictor import LatencyPredictor
from repro.scheduler.pcs import (
    Migration,
    PCSScheduler,
    SchedulerConfig,
    SchedulingOutcome,
)

__all__ = ["HierarchicalScheduler", "chunk_predecessors"]


def chunk_predecessors(
    preds: Tuple[Tuple[int, ...], ...], s_first: int, s_last: int
) -> Tuple[Tuple[int, ...], ...]:
    """Restrict a stage DAG to the chunk's stage range, renumbered.

    Edges into stages before the chunk are dropped — those stages'
    contributions are fixed from the chunk's point of view, the same
    cross-chunk approximation the hierarchy already makes for stage
    maxima — which turns their dependents into local entry stages.
    Within the range every edge survives (a predecessor of stage ``s``
    is always earlier, so it can only fall before the chunk, never
    after), keeping the chunk's objective the critical path over its
    own slice of the DAG instead of silently reverting to a chain sum.
    """
    return tuple(
        tuple(p - s_first for p in preds[s] if p >= s_first)
        for s in range(s_first, s_last + 1)
    )


class HierarchicalScheduler:
    """Chunked Algorithm 1 with shared node state."""

    def __init__(
        self,
        predictor: LatencyPredictor,
        config: Optional[SchedulerConfig] = None,
        group_size: int = 640,
    ) -> None:
        if group_size < 1:
            raise SchedulingError(f"group_size must be >= 1, got {group_size}")
        self.group_size = int(group_size)
        self._inner = PCSScheduler(predictor, config)

    def schedule(self, inputs: MatrixInputs) -> SchedulingOutcome:
        """Run chunked scheduling; mutates ``inputs`` to the final
        allocation, like :meth:`PCSScheduler.schedule`."""
        m = inputs.m
        if m <= self.group_size:
            return self._inner.schedule(inputs)

        migrations: List[Migration] = []
        analysis_time = 0.0
        search_time = 0.0
        initial_overall: Optional[float] = None
        final_overall = 0.0
        for start in range(0, m, self.group_size):
            rows = np.arange(start, min(start + self.group_size, m))
            sub_limits = None
            if inputs.node_limits is not None:
                # Slots taken by components outside this chunk still count.
                outside = np.bincount(
                    inputs.assignment, minlength=inputs.k
                ) - np.bincount(inputs.assignment[rows], minlength=inputs.k)
                sub_limits = inputs.node_limits - outside
            s_first = int(inputs.stage_of[rows[0]])
            s_last = int(inputs.stage_of[rows[-1]])
            sub = MatrixInputs(
                # Chunk stages renumbered from 0 so stage_offsets holds;
                # chunks are stage-major contiguous so this is exact
                # *within* the chunk (cross-chunk stage maxima are the
                # approximation the hierarchy buys speed with).
                stage_of=inputs.stage_of[rows] - s_first,
                classes=[inputs.classes[int(r)] for r in rows],
                demands=inputs.demands[rows],
                assignment=inputs.assignment[rows].copy(),
                node_totals=inputs.node_totals,  # shared live view
                arrival_rates=inputs.arrival_rates[rows],
                node_limits=sub_limits,
                # DAG topologies keep their critical-path objective
                # within the chunk (edges to pre-chunk stages drop —
                # the same fixed-outside approximation as above).
                stage_predecessors=(
                    None
                    if inputs.stage_predecessors is None
                    else chunk_predecessors(
                        inputs.stage_predecessors, s_first, s_last
                    )
                ),
            )
            outcome = self._inner.schedule(sub)
            if initial_overall is None:
                initial_overall = outcome.initial_overall_s
            final_overall = outcome.final_overall_s
            analysis_time += outcome.analysis_time_s
            search_time += outcome.search_time_s
            # Fold sub-allocation back into the global arrays; node
            # totals were already updated in place by apply_migration.
            inputs.assignment[rows] = sub.assignment
            for mig in outcome.migrations:
                migrations.append(
                    Migration(
                        component_index=int(rows[mig.component_index]),
                        origin=mig.origin,
                        destination=mig.destination,
                        predicted_gain_s=mig.predicted_gain_s,
                        self_gain_s=mig.self_gain_s,
                    )
                )
        return SchedulingOutcome(
            migrations=migrations,
            initial_overall_s=float(initial_overall or 0.0),
            final_overall_s=float(final_overall),
            analysis_time_s=analysis_time,
            search_time_s=search_time,
            assignment=inputs.assignment.copy(),
        )
