"""Algorithm 1: Predictive Component-level Scheduling.

The greedy loop, as in the paper:

1. construct the performance matrix ``L`` (line 2);
2. all components start as migration candidates (line 3);
3. while candidates remain and the best predicted reduction exceeds
   the threshold ε (line 5):

   a. find the entry set ``SL`` with the largest ``L`` value (line 6);
   b. among ties, pick the migration that most reduces the migrated
      component's *own* latency (line 7) — the ``R`` matrix;
   c. enforce the migration in the allocation array, remove the
      component from the candidates (lines 10–12);
   d. update the matrix (line 13 / Algorithm 2).

Complexity O(m²·k) per scheduling interval (§V), which Fig. 7 measures;
the scheduler therefore separates *analysis time* (matrix construction)
from *search time* (the greedy loop) in its outcome record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import SchedulingError
from repro.model.matrix import MatrixInputs, PerformanceMatrix
from repro.model.predictor import LatencyPredictor
from repro.scheduler.threshold import StaticThreshold, ThresholdPolicy

__all__ = ["SchedulerConfig", "Migration", "SchedulingOutcome", "PCSScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of Algorithm 1.

    Attributes
    ----------
    threshold:
        The ε policy (paper default: static 5 ms).
    update_mode:
        ``"algorithm2"`` — the paper's partial matrix update;
        ``"full"`` — exact rebuild of all candidate rows each loop
        (slower, used as the fidelity reference in ablations).
    build_method:
        ``"fast"`` (vectorised) or ``"reference"`` matrix construction.
    max_migrations:
        Optional hard cap per interval (the paper observes 10–20).
    tie_tolerance:
        Relative tolerance for "entries with the largest value" —
        floating-point ties within this factor form the set SL.
    """

    threshold: ThresholdPolicy = field(default_factory=StaticThreshold)
    update_mode: str = "algorithm2"
    build_method: str = "fast"
    max_migrations: Optional[int] = None
    tie_tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.update_mode not in ("algorithm2", "full"):
            raise SchedulingError(f"unknown update_mode {self.update_mode!r}")
        if self.build_method not in ("fast", "reference"):
            raise SchedulingError(f"unknown build_method {self.build_method!r}")
        if self.max_migrations is not None and self.max_migrations < 0:
            raise SchedulingError("max_migrations must be >= 0")
        if self.tie_tolerance < 0:
            raise SchedulingError("tie_tolerance must be >= 0")


@dataclass(frozen=True)
class Migration:
    """One enforced component-node migration."""

    component_index: int
    origin: int
    destination: int
    predicted_gain_s: float
    self_gain_s: float


@dataclass
class SchedulingOutcome:
    """Everything one scheduling interval produced."""

    migrations: List[Migration]
    initial_overall_s: float
    final_overall_s: float
    analysis_time_s: float
    search_time_s: float
    assignment: np.ndarray

    @property
    def n_migrations(self) -> int:
        """Number of migrations enforced."""
        return len(self.migrations)

    @property
    def predicted_reduction_s(self) -> float:
        """Total predicted overall-latency reduction."""
        return self.initial_overall_s - self.final_overall_s

    @property
    def total_time_s(self) -> float:
        """Analysis + search wall-clock (the Fig. 7 quantity)."""
        return self.analysis_time_s + self.search_time_s

    def summary(self) -> dict:
        """JSON-serialisable digest for status surfaces.

        What a control plane reports about one decision without
        shipping the full migration list or the allocation array: how
        many moves, the predicted overall before/after, and where the
        time went (the control surface's ``/status`` consumes this).
        """
        return {
            "n_migrations": self.n_migrations,
            "initial_overall_s": self.initial_overall_s,
            "final_overall_s": self.final_overall_s,
            "predicted_reduction_s": self.predicted_reduction_s,
            "analysis_time_s": self.analysis_time_s,
            "search_time_s": self.search_time_s,
            "total_time_s": self.total_time_s,
        }


class PCSScheduler:
    """Algorithm 1 over a :class:`PerformanceMatrix`."""

    def __init__(
        self, predictor: LatencyPredictor, config: Optional[SchedulerConfig] = None
    ) -> None:
        self.predictor = predictor
        self.config = config or SchedulerConfig()

    def schedule(self, inputs: MatrixInputs) -> SchedulingOutcome:
        """Run one scheduling interval; ``inputs`` is mutated in place to
        the final allocation (callers pass a copy if they need the
        original)."""
        cfg = self.config
        t0 = time.perf_counter()
        pm = PerformanceMatrix(inputs, self.predictor).build(cfg.build_method)
        analysis_time = time.perf_counter() - t0
        initial_overall = pm.current_overall

        t1 = time.perf_counter()
        candidates = set(range(inputs.m))
        migrations: List[Migration] = []
        counts = inputs.component_counts()
        while candidates:
            if (
                cfg.max_migrations is not None
                and len(migrations) >= cfg.max_migrations
            ):
                break
            epsilon = cfg.threshold.epsilon(pm.current_overall)
            cand_rows = np.fromiter(candidates, dtype=np.int64)
            sub = pm.L[cand_rows].copy()
            if inputs.node_limits is not None:
                # Never propose a migration into a node with no free slot.
                sub[:, counts >= inputs.node_limits] = -np.inf
            lmax = float(sub.max())
            if lmax <= epsilon:
                break  # line 5/9: no migration clears the threshold
            # Line 6: the set SL of entries sharing the largest value.
            tol = cfg.tie_tolerance * max(1.0, abs(lmax))
            tie_rows, tie_cols = np.nonzero(sub >= lmax - tol)
            # Line 7: break ties on the migrated component's own gain.
            self_gains = pm.R[cand_rows[tie_rows], tie_cols]
            best = int(np.argmax(self_gains))
            cmax = int(cand_rows[tie_rows[best]])
            destination = int(tie_cols[best])
            origin = int(inputs.assignment[cmax])
            if destination == origin:  # pragma: no cover - L diagonal is 0
                raise SchedulingError("greedy selected a no-op migration")
            migrations.append(
                Migration(
                    component_index=cmax,
                    origin=origin,
                    destination=destination,
                    predicted_gain_s=lmax,
                    self_gain_s=float(self_gains[best]),
                )
            )
            # Lines 10-13: enforce, retire the component, update matrix.
            pm.apply_migration(cmax, destination)
            counts[origin] -= 1
            counts[destination] += 1
            candidates.discard(cmax)
            if not candidates:
                break
            if cfg.update_mode == "algorithm2":
                pm.algorithm2_update(cmax, origin, destination, candidates)
            else:
                pm.rebuild_rows(sorted(candidates))
        search_time = time.perf_counter() - t1

        return SchedulingOutcome(
            migrations=migrations,
            initial_overall_s=initial_overall,
            final_overall_s=pm.current_overall,
            analysis_time_s=analysis_time,
            search_time_s=search_time,
            assignment=inputs.assignment.copy(),
        )


def exhaustive_best_single_migration(
    inputs: MatrixInputs, predictor: LatencyPredictor
) -> Migration:
    """Brute-force best single migration (test oracle for tiny instances).

    The paper notes exhaustive search over allocations is O(k^m); even
    one exhaustive *step* validates the greedy's first pick.
    """
    pm = PerformanceMatrix(inputs.copy(), predictor).build("reference")
    i, j = np.unravel_index(np.argmax(pm.L), pm.L.shape)
    return Migration(
        component_index=int(i),
        origin=int(inputs.assignment[int(i)]),
        destination=int(j),
        predicted_gain_s=float(pm.L[i, j]),
        self_gain_s=float(pm.R[i, j]),
    )
