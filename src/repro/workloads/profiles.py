"""Resource-demand profiles for the paper's batch workloads.

The paper's workload taxonomy (§II-B) has two axes:

* **computation semantics** — Sort is I/O-intensive, Bayes is
  CPU-intensive (floating point), WordCount is CPU-intensive (integer),
  Page Index has similar CPU and I/O demands;
* **software stack** — the same semantics implemented on Hadoop vs
  Spark shifts the bottleneck (the paper's example: Hadoop Bayes is
  CPU-intensive, Spark Bayes is I/O-intensive).

Demand as a function of input size follows a saturating Michaelis–Menten
curve ``u(s) = u_max · s / (s + K)``.  The WordCount CPU curve is
calibrated to the paper's measured anchors (31 %, 61 %, 79 % CPU
utilisation at 500 MB, 2 GB, 8 GB on a 12-core Xeon E5635), which a
least-squares fit turns into ``u_max = 0.90, K = 952 MB``; the other
curves keep the same functional form with parameters chosen to realise
the taxonomy above.

Durations are calibrated to the paper's claim that these batch jobs run
"from a few seconds to several minutes" (§VI-A) and, over a whole
trace, to the Google statistics quoted in §I (see
:mod:`repro.workloads.traces`).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.cluster.resources import ResourceKind, ResourceVector
from repro.errors import WorkloadError

__all__ = [
    "Framework",
    "Semantics",
    "SaturatingCurve",
    "WorkloadProfile",
    "HADOOP_PROFILES",
    "SPARK_PROFILES",
    "ALL_PROFILES",
    "get_profile",
]


class Framework(enum.Enum):
    """Software stack a batch job is implemented on (§II-B)."""

    HADOOP = "hadoop"
    SPARK = "spark"


class Semantics(enum.Enum):
    """Dominant resource class of a workload's computation semantics."""

    CPU_INTENSIVE = "cpu"
    IO_INTENSIVE = "io"
    BALANCED = "balanced"


@dataclass(frozen=True)
class SaturatingCurve:
    """``u(s) = u_max · s / (s + half_size_mb)`` — demand vs input size.

    ``u_max`` is the asymptotic demand (fraction of cores, MPKI, or
    MB/s depending on the resource) and ``half_size_mb`` the input size
    at which half of it is reached.
    """

    u_max: float
    half_size_mb: float

    def __post_init__(self) -> None:
        if self.u_max < 0:
            raise WorkloadError(f"u_max must be >= 0, got {self.u_max}")
        if self.half_size_mb <= 0:
            raise WorkloadError(
                f"half_size_mb must be > 0, got {self.half_size_mb}"
            )

    def __call__(self, input_mb):
        """Evaluate the curve (scalar or NumPy array input)."""
        s = np.asarray(input_mb, dtype=np.float64)
        if np.any(s < 0):
            raise WorkloadError(f"input size must be >= 0 MB, got {input_mb}")
        out = self.u_max * s / (s + self.half_size_mb)
        return float(out) if np.isscalar(input_mb) else out


@dataclass(frozen=True)
class WorkloadProfile:
    """A batch workload's demand curves and duration model.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"hadoop.wordcount"``.
    framework / semantics:
        Taxonomy axes from §II-B.
    curves:
        One :class:`SaturatingCurve` per :class:`ResourceKind`.
    base_duration_s / duration_per_mb_s:
        Affine job-duration model before multiplicative noise:
        ``duration = base + per_mb · size``.
    duration_sigma:
        Log-normal sigma of the multiplicative duration noise.
    """

    name: str
    framework: Framework
    semantics: Semantics
    curves: Mapping[ResourceKind, SaturatingCurve]
    base_duration_s: float
    duration_per_mb_s: float
    duration_sigma: float = 0.35

    def __post_init__(self) -> None:
        missing = [k for k in ResourceKind if k not in self.curves]
        if missing:
            raise WorkloadError(f"profile {self.name} missing curves for {missing}")
        if self.base_duration_s <= 0 or self.duration_per_mb_s < 0:
            raise WorkloadError(f"invalid duration model in profile {self.name}")
        if self.duration_sigma < 0:
            raise WorkloadError(f"duration_sigma must be >= 0 in {self.name}")

    def demand(self, input_mb: float) -> ResourceVector:
        """Resource demand of a job of this type at ``input_mb``."""
        return ResourceVector(
            core=self.curves[ResourceKind.CORE](input_mb),
            cache_mpki=self.curves[ResourceKind.CACHE](input_mb),
            disk_bw=self.curves[ResourceKind.DISK_BW](input_mb),
            net_bw=self.curves[ResourceKind.NET_BW](input_mb),
        )

    def mean_duration(self, input_mb: float) -> float:
        """Expected duration in seconds (before noise)."""
        return self.base_duration_s + self.duration_per_mb_s * float(input_mb)

    def sample_duration(self, input_mb: float, rng: np.random.Generator) -> float:
        """Noisy duration: mean × LogNormal(1, sigma)."""
        mean = self.mean_duration(input_mb)
        if self.duration_sigma == 0:
            return mean
        sigma = self.duration_sigma
        # E[lognormal(mu, sigma)] = 1 when mu = -sigma^2/2.
        noise = rng.lognormal(-0.5 * sigma * sigma, sigma)
        return mean * float(noise)

    @property
    def dominant_resource(self) -> ResourceKind:
        """Resource with the largest asymptotic demand relative to a
        default node capacity — used in tests to check the taxonomy."""
        from repro.cluster.node import NodeCapacity

        cap = NodeCapacity().vector.as_array()
        maxima = np.array([self.curves[k].u_max for k in _KIND_ORDER])
        return _KIND_ORDER[int(np.argmax(maxima / cap))]


_KIND_ORDER = (
    ResourceKind.CORE,
    ResourceKind.CACHE,
    ResourceKind.DISK_BW,
    ResourceKind.NET_BW,
)


def _curves(core, cache, disk, net) -> Dict[ResourceKind, SaturatingCurve]:
    """Shorthand: each argument is a ``(u_max, half_size_mb)`` pair."""
    return {
        ResourceKind.CORE: SaturatingCurve(*core),
        ResourceKind.CACHE: SaturatingCurve(*cache),
        ResourceKind.DISK_BW: SaturatingCurve(*disk),
        ResourceKind.NET_BW: SaturatingCurve(*net),
    }


HADOOP_PROFILES: Dict[str, WorkloadProfile] = {
    # CPU-intensive, dominated by floating-point operations (§II-B).
    "hadoop.bayes": WorkloadProfile(
        name="hadoop.bayes",
        framework=Framework.HADOOP,
        semantics=Semantics.CPU_INTENSIVE,
        curves=_curves(
            core=(0.95, 800.0),
            cache=(14.0, 1000.0),
            disk=(25.0, 1200.0),
            net=(8.0, 1500.0),
        ),
        base_duration_s=25.0,
        duration_per_mb_s=0.050,
    ),
    # CPU-intensive integer workload; CPU curve calibrated to the
    # paper's 31 %/61 %/79 % anchors at 500 MB/2 GB/8 GB.
    "hadoop.wordcount": WorkloadProfile(
        name="hadoop.wordcount",
        framework=Framework.HADOOP,
        semantics=Semantics.CPU_INTENSIVE,
        curves=_curves(
            core=(0.90, 952.0),
            cache=(10.0, 900.0),
            disk=(40.0, 1100.0),
            net=(10.0, 1500.0),
        ),
        base_duration_s=20.0,
        duration_per_mb_s=0.040,
    ),
    # "similar demands for CPU and I/O resources" (§II-B).
    "hadoop.pageindex": WorkloadProfile(
        name="hadoop.pageindex",
        framework=Framework.HADOOP,
        semantics=Semantics.BALANCED,
        curves=_curves(
            core=(0.55, 900.0),
            cache=(15.0, 1000.0),
            disk=(130.0, 1400.0),
            net=(30.0, 1200.0),
        ),
        base_duration_s=30.0,
        duration_per_mb_s=0.055,
    ),
}

SPARK_PROFILES: Dict[str, WorkloadProfile] = {
    # Same semantics as hadoop.bayes but I/O-bound on Spark (§II-B's
    # software-stack example).
    "spark.bayes": WorkloadProfile(
        name="spark.bayes",
        framework=Framework.SPARK,
        semantics=Semantics.IO_INTENSIVE,
        curves=_curves(
            core=(0.35, 900.0),
            cache=(8.0, 1000.0),
            disk=(150.0, 1100.0),
            net=(40.0, 1200.0),
        ),
        base_duration_s=10.0,
        duration_per_mb_s=0.018,
    ),
    "spark.wordcount": WorkloadProfile(
        name="spark.wordcount",
        framework=Framework.SPARK,
        semantics=Semantics.IO_INTENSIVE,
        curves=_curves(
            core=(0.40, 950.0),
            cache=(8.0, 900.0),
            disk=(140.0, 1000.0),
            net=(35.0, 1300.0),
        ),
        base_duration_s=8.0,
        duration_per_mb_s=0.015,
    ),
    # Sort: the canonical I/O-intensive workload, shuffle-heavy.
    "spark.sort": WorkloadProfile(
        name="spark.sort",
        framework=Framework.SPARK,
        semantics=Semantics.IO_INTENSIVE,
        curves=_curves(
            core=(0.30, 1000.0),
            cache=(6.0, 900.0),
            disk=(180.0, 1000.0),
            net=(80.0, 1100.0),
        ),
        base_duration_s=12.0,
        duration_per_mb_s=0.020,
    ),
}

ALL_PROFILES: Dict[str, WorkloadProfile] = {**HADOOP_PROFILES, **SPARK_PROFILES}


def get_profile(name: str) -> WorkloadProfile:
    """Look a profile up by registry name (``"spark.sort"`` etc.)."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload profile {name!r}; known: {sorted(ALL_PROFILES)}"
        ) from None
