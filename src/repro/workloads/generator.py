"""Batch-job churn over the cluster.

Drives the dynamic interference PCS reacts to: short batch jobs arrive
at each node as a Poisson process, occupy a batch VM for their sampled
duration, and leave.  Between two scheduling intervals the mix of jobs
on every node — and therefore every component's contention vector —
changes, exactly the "continuously changing performance interference"
of §I.

Two driving modes:

``start(engine, cluster)``
    event-driven churn on a :class:`~repro.simcore.engine.SimulationEngine`;

``sample_stationary_jobs(node, rng)``
    an M/G/∞ stationary snapshot (number of concurrent jobs is Poisson
    with mean ``arrival rate × mean duration``) used by snapshot-style
    experiments such as the Fig. 5 profiling runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind
from repro.cluster.node import Node
from repro.errors import CapacityError, WorkloadError
from repro.simcore.engine import SimulationEngine
from repro.units import gb, mb
from repro.workloads.batch import BatchJob, BatchJobSpec
from repro.workloads.profiles import ALL_PROFILES, get_profile
from repro.workloads.traces import JobRecord

__all__ = ["GeneratorConfig", "BatchJobGenerator"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for :class:`BatchJobGenerator`.

    Attributes
    ----------
    jobs_per_node_per_s:
        Poisson arrival rate of batch jobs at each node.
    mix:
        ``{profile name: weight}``; ``None`` = uniform over all six
        paper workloads.
    size_range_mb:
        Log-uniform input-size range; the paper's Fig. 6 setting is
        1 MB – 10 GB.
    max_batch_jobs_per_node:
        Batch VMs available per node; arrivals beyond it are dropped
        (and counted), as an admission controller would.
    """

    jobs_per_node_per_s: float = 0.02
    mix: Optional[Mapping[str, float]] = None
    size_range_mb: tuple = (mb(1), gb(10))
    max_batch_jobs_per_node: int = 4

    def __post_init__(self) -> None:
        if self.jobs_per_node_per_s <= 0:
            raise WorkloadError("jobs_per_node_per_s must be positive")
        lo, hi = self.size_range_mb
        if not 0 < lo < hi:
            raise WorkloadError(f"invalid size range {self.size_range_mb}")
        if self.max_batch_jobs_per_node <= 0:
            raise WorkloadError("max_batch_jobs_per_node must be positive")
        if self.mix is not None:
            unknown = set(self.mix) - set(ALL_PROFILES)
            if unknown:
                raise WorkloadError(f"unknown profiles in mix: {sorted(unknown)}")

    def profile_names(self) -> List[str]:
        """Profiles in sampling order."""
        return sorted(self.mix) if self.mix is not None else sorted(ALL_PROFILES)

    def profile_weights(self) -> np.ndarray:
        """Normalised sampling weights aligned with :meth:`profile_names`."""
        names = self.profile_names()
        if self.mix is None:
            w = np.ones(len(names))
        else:
            w = np.array([self.mix[n] for n in names], dtype=np.float64)
        total = w.sum()
        if total <= 0:
            raise WorkloadError("mix weights must sum to a positive value")
        return w / total

    def mean_duration_s(self) -> float:
        """Mix-weighted mean job duration at the geometric-mean size."""
        names = self.profile_names()
        weights = self.profile_weights()
        size = float(np.sqrt(self.size_range_mb[0] * self.size_range_mb[1]))
        return float(
            sum(
                w * get_profile(n).mean_duration(size)
                for n, w in zip(names, weights)
            )
        )


class BatchJobGenerator:
    """Poisson churn of batch jobs over a cluster's batch VMs."""

    def __init__(self, config: GeneratorConfig, rng: np.random.Generator) -> None:
        self.config = config
        self._rng = rng
        self.active_jobs: Dict[str, List[BatchJob]] = {}
        self.arrived = 0
        self.dropped = 0
        self.completed = 0
        self._next_arrival: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # sampling primitives
    # ------------------------------------------------------------------
    def sample_spec(self) -> BatchJobSpec:
        """Sample one job spec from the configured mix and size range."""
        names = self.config.profile_names()
        weights = self.config.profile_weights()
        name = names[int(self._rng.choice(len(names), p=weights))]
        lo, hi = self.config.size_range_mb
        size = float(np.exp(self._rng.uniform(np.log(lo), np.log(hi))))
        return BatchJobSpec.of(name, size)

    def sample_job(self, arrival_time: float) -> BatchJob:
        """Sample a full job (spec + duration) arriving at ``arrival_time``."""
        spec = self.sample_spec()
        return BatchJob(
            spec=spec,
            arrival_time=arrival_time,
            duration=spec.sample_duration(self._rng),
        )

    # ------------------------------------------------------------------
    # event-driven churn
    # ------------------------------------------------------------------
    def start(self, engine: SimulationEngine, cluster: Cluster) -> None:
        """Begin Poisson arrivals on every node of ``cluster``."""
        for node in cluster:
            self.active_jobs.setdefault(node.name, [])
            self._schedule_next_arrival(engine, cluster, node)

    def stop(self) -> None:
        """Cancel all pending arrival events (running jobs still depart)."""
        for event in self._next_arrival.values():
            event.cancel()
        self._next_arrival.clear()

    def _schedule_next_arrival(
        self, engine: SimulationEngine, cluster: Cluster, node: Node
    ) -> None:
        gap = float(self._rng.exponential(1.0 / self.config.jobs_per_node_per_s))
        self._next_arrival[node.name] = engine.schedule(
            gap,
            lambda: self._on_arrival(engine, cluster, node),
            label=f"batch-arrival@{node.name}",
        )

    def _on_arrival(
        self, engine: SimulationEngine, cluster: Cluster, node: Node
    ) -> None:
        self.arrived += 1
        job = self.sample_job(engine.now)
        jobs_here = self.active_jobs[node.name]
        if len(jobs_here) >= self.config.max_batch_jobs_per_node:
            self.dropped += 1
        else:
            try:
                cluster.place(job, node, MachineKind.BATCH)
            except CapacityError:
                self.dropped += 1
            else:
                jobs_here.append(job)
                engine.schedule(
                    job.duration,
                    lambda: self._on_departure(cluster, node, job),
                    label=f"batch-departure@{node.name}",
                )
        self._schedule_next_arrival(engine, cluster, node)

    def _on_departure(self, cluster: Cluster, node: Node, job: BatchJob) -> None:
        cluster.remove(job)
        self.active_jobs[node.name].remove(job)
        self.completed += 1

    # ------------------------------------------------------------------
    # stationary snapshots and trace replay
    # ------------------------------------------------------------------
    def sample_stationary_jobs(self, at_time: float = 0.0) -> List[BatchJob]:
        """Sample one node's stationary concurrent-job set (M/G/∞).

        The number of concurrently running jobs on a node whose jobs
        arrive Poisson(λ) and run for i.i.d. durations with mean D is
        Poisson(λ·D); we truncate at the batch-VM budget.
        """
        mean_inflight = (
            self.config.jobs_per_node_per_s * self.config.mean_duration_s()
        )
        n = int(
            min(
                self._rng.poisson(mean_inflight),
                self.config.max_batch_jobs_per_node,
            )
        )
        jobs = []
        for _ in range(n):
            job = self.sample_job(arrival_time=at_time)
            # Stationarity: the job is mid-flight, so shift its arrival
            # back by a uniform fraction of its duration.
            job.arrival_time = at_time - float(self._rng.uniform(0, job.duration))
            jobs.append(job)
        return jobs

    def replay(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        records: Sequence[JobRecord],
        node_assignment: Optional[Sequence[int]] = None,
    ) -> None:
        """Replay a trace: each record becomes one job on an assigned node.

        ``node_assignment[i]`` gives the node index for record ``i``
        (default: uniform random).
        """
        nodes = cluster.nodes
        for node in nodes:
            self.active_jobs.setdefault(node.name, [])
        for i, record in enumerate(records):
            if node_assignment is not None:
                node = nodes[node_assignment[i] % len(nodes)]
            else:
                node = nodes[int(self._rng.integers(len(nodes)))]
            job = BatchJob(
                spec=BatchJobSpec.of(record.profile_name, record.input_mb),
                arrival_time=record.arrival_time,
                duration=record.duration,
            )
            engine.schedule_at(
                record.arrival_time,
                lambda n=node, j=job: self._admit_replayed(engine, cluster, n, j),
                label="trace-arrival",
            )

    def _admit_replayed(
        self,
        engine: SimulationEngine,
        cluster: Cluster,
        node: Node,
        job: BatchJob,
    ) -> None:
        self.arrived += 1
        jobs_here = self.active_jobs[node.name]
        if len(jobs_here) >= self.config.max_batch_jobs_per_node:
            self.dropped += 1
            return
        try:
            cluster.place(job, node, MachineKind.BATCH)
        except CapacityError:
            self.dropped += 1
            return
        jobs_here.append(job)
        engine.schedule(
            job.duration,
            lambda: self._on_departure(cluster, node, job),
            label=f"trace-departure@{node.name}",
        )
