"""Batch-job workload substrate.

Models the offline batch jobs that co-locate with service components and
cause the time-varying interference PCS reacts to (§II-B):

- :mod:`repro.workloads.profiles` — per-workload resource-demand curves
  for the six BigDataBench jobs the paper uses (Hadoop Bayes, WordCount,
  PageIndex; Spark Bayes, WordCount, Sort), calibrated to the anchor
  points quoted in the paper (e.g. WordCount CPU utilisation of
  31 %/61 %/79 % at 500 MB/2 GB/8 GB on a 12-core Xeon).
- :mod:`repro.workloads.batch` — job specs and live job objects.
- :mod:`repro.workloads.generator` — Poisson churn of short jobs over
  the cluster's batch VMs.
- :mod:`repro.workloads.traces` — synthetic cluster traces matching the
  Google/Facebook statistics quoted in §I (≥90 % small jobs, ~50 %
  complete within 10 minutes, ~94 % within 3 hours) and replay.
"""

from repro.workloads.batch import BatchJob, BatchJobSpec
from repro.workloads.generator import BatchJobGenerator, GeneratorConfig
from repro.workloads.profiles import (
    ALL_PROFILES,
    HADOOP_PROFILES,
    SPARK_PROFILES,
    Framework,
    SaturatingCurve,
    Semantics,
    WorkloadProfile,
    get_profile,
)
from repro.workloads.traces import JobRecord, SyntheticTraceConfig, TraceStats, generate_trace, trace_stats

__all__ = [
    "Framework",
    "Semantics",
    "SaturatingCurve",
    "WorkloadProfile",
    "ALL_PROFILES",
    "HADOOP_PROFILES",
    "SPARK_PROFILES",
    "get_profile",
    "BatchJobSpec",
    "BatchJob",
    "BatchJobGenerator",
    "GeneratorConfig",
    "JobRecord",
    "SyntheticTraceConfig",
    "TraceStats",
    "generate_trace",
    "trace_stats",
]
