"""Batch job specs and live jobs.

A :class:`BatchJob` satisfies the cluster's ``Resident`` protocol: it
exposes a ``demand`` vector computed once from its profile and input
size, so node contention accounting stays O(residents).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.errors import WorkloadError
from repro.workloads.profiles import WorkloadProfile, get_profile

__all__ = ["BatchJobSpec", "BatchJob"]

_job_counter = itertools.count()


@dataclass(frozen=True)
class BatchJobSpec:
    """What to run: a workload profile at a given input size."""

    profile: WorkloadProfile
    input_mb: float

    def __post_init__(self) -> None:
        if self.input_mb <= 0:
            raise WorkloadError(f"input_mb must be positive, got {self.input_mb}")

    @classmethod
    def of(cls, profile_name: str, input_mb: float) -> "BatchJobSpec":
        """Build from a profile registry name."""
        return cls(get_profile(profile_name), input_mb)

    @property
    def demand(self) -> ResourceVector:
        """Resource demand implied by profile + input size."""
        return self.profile.demand(self.input_mb)

    def sample_duration(self, rng: np.random.Generator) -> float:
        """Draw a noisy duration for one run of this spec."""
        return self.profile.sample_duration(self.input_mb, rng)


@dataclass
class BatchJob:
    """A running batch job (Resident protocol: ``name`` + ``demand``).

    Attributes
    ----------
    spec:
        The job's workload profile and input size.
    arrival_time:
        Simulation time the job started (seconds).
    duration:
        Sampled run length (seconds).
    """

    spec: BatchJobSpec
    arrival_time: float
    duration: float
    name: str = field(default="")
    _demand: Optional[ResourceVector] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError(f"duration must be positive, got {self.duration}")
        if not self.name:
            self.name = f"{self.spec.profile.name}#{next(_job_counter)}"
        self._demand = self.spec.demand

    @property
    def demand(self) -> ResourceVector:
        """Constant resource demand over the job's lifetime."""
        return self._demand

    @property
    def departure_time(self) -> float:
        """Simulation time the job finishes."""
        return self.arrival_time + self.duration

    def active_at(self, time: float) -> bool:
        """Whether the job is running at simulation time ``time``."""
        return self.arrival_time <= time < self.departure_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BatchJob({self.name}, {self.spec.input_mb:.0f} MB, "
            f"t=[{self.arrival_time:.1f}, {self.departure_time:.1f}))"
        )
