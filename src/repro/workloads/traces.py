"""Synthetic cluster traces with the statistics quoted in the paper.

§I cites the Google and Facebook trace studies: *"small batch jobs form
a majority (over 90 %) of all jobs"* and *"approximately 50 % of Google
jobs complete in 10 minutes and 94 % of them complete within 3 hours"*.
We cannot ship those proprietary traces, so this module generates
synthetic ones matching exactly those published marginals:

- job arrivals: Poisson over the trace horizon;
- input sizes: a small/large mixture with ``small_fraction`` (default
  0.9) of jobs drawn log-uniformly from the *small* range;
- durations (``duration_mode="google"``): log-normal with median 600 s
  and sigma chosen so that P(duration ≤ 3 h) = 0.94, which pins
  ``sigma = ln(10800/600) / z_{0.94} ≈ 1.859``;
- durations (``duration_mode="profile"``): each job's own workload
  profile (seconds-to-minutes jobs, matching §VI-A's experiment setup).

:func:`trace_stats` recomputes the published marginals from a generated
trace so tests can assert the calibration holds.

Arrival-rate trace profiles
---------------------------
Besides the batch-job trace, this module owns the **request arrival
profiles** the experiment runner drives its intervals with: a profile
maps each scheduling interval to a deterministic multiplier on the
configured base arrival rate, so a run can replay a diurnal cycle, a
load burst, or a flash crowd instead of the stationary rate the paper
uses.  The ``stationary`` profile multiplies by exactly ``1.0`` every
interval, keeping stationary runs bit-identical to the pre-profile
code path (golden-pinned).  Profiles are pure functions of the
interval index and count — no RNG — so the request stream's draw order
is untouched and runs stay deterministic per seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.stats import norm_ppf
from repro.units import gb, mb, minutes
from repro.workloads.profiles import ALL_PROFILES, get_profile

__all__ = [
    "JobRecord",
    "SyntheticTraceConfig",
    "TraceStats",
    "generate_trace",
    "trace_stats",
    "GOOGLE_MEDIAN_DURATION_S",
    "GOOGLE_DURATION_SIGMA",
    "arrival_profile_names",
    "arrival_rate_multiplier",
    "arrival_rate_multipliers",
    "register_arrival_profile",
]

#: Median job duration implied by "50 % complete in 10 minutes".
GOOGLE_MEDIAN_DURATION_S: float = minutes(10)

#: Log-normal sigma implied by "94 % complete within 3 hours".
#: The quantile comes from the package's own Φ⁻¹ (:mod:`repro.stats`)
#: so the workload path carries no SciPy dependency.
GOOGLE_DURATION_SIGMA: float = math.log(
    minutes(180) / GOOGLE_MEDIAN_DURATION_S
) / norm_ppf(0.94)


@dataclass(frozen=True)
class JobRecord:
    """One trace row: what arrived, when, for how long."""

    profile_name: str
    input_mb: float
    arrival_time: float
    duration: float

    def __post_init__(self) -> None:
        if self.input_mb <= 0 or self.duration <= 0 or self.arrival_time < 0:
            raise WorkloadError(f"invalid trace record {self!r}")

    @property
    def is_small(self) -> bool:
        """Whether the job is 'small' by the trace convention (< 1 GB)."""
        return self.input_mb < gb(1)


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Knobs for :func:`generate_trace`."""

    horizon_s: float = 3600.0
    jobs_per_s: float = 0.5
    small_fraction: float = 0.9
    small_size_mb: tuple = (mb(1), gb(1))
    large_size_mb: tuple = (gb(1), gb(10))
    duration_mode: str = "google"  # "google" | "profile"
    mix: Optional[Mapping[str, float]] = None  # profile name -> weight

    def __post_init__(self) -> None:
        if self.horizon_s <= 0 or self.jobs_per_s <= 0:
            raise WorkloadError("horizon_s and jobs_per_s must be positive")
        if not 0.0 <= self.small_fraction <= 1.0:
            raise WorkloadError(
                f"small_fraction must be in [0, 1], got {self.small_fraction}"
            )
        for lo, hi in (self.small_size_mb, self.large_size_mb):
            if not 0 < lo < hi:
                raise WorkloadError(f"invalid size range ({lo}, {hi})")
        if self.duration_mode not in ("google", "profile"):
            raise WorkloadError(f"unknown duration_mode {self.duration_mode!r}")
        if self.mix is not None:
            unknown = set(self.mix) - set(ALL_PROFILES)
            if unknown:
                raise WorkloadError(f"unknown profiles in mix: {sorted(unknown)}")
            if not self.mix or any(w < 0 for w in self.mix.values()):
                raise WorkloadError("mix weights must be non-negative, non-empty")


@dataclass(frozen=True)
class TraceStats:
    """The published marginals, recomputed from a trace."""

    n_jobs: int
    frac_small: float
    frac_le_10min: float
    frac_le_3h: float
    mean_duration_s: float
    mean_input_mb: float

    def render(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_jobs} jobs | small: {self.frac_small:.1%} | "
            f"<=10min: {self.frac_le_10min:.1%} | <=3h: {self.frac_le_3h:.1%} | "
            f"mean duration {self.mean_duration_s:.0f}s | "
            f"mean input {self.mean_input_mb:.0f} MB"
        )


def _sample_sizes(cfg: SyntheticTraceConfig, n: int, rng: np.random.Generator):
    small = rng.random(n) < cfg.small_fraction
    lo = np.where(small, cfg.small_size_mb[0], cfg.large_size_mb[0])
    hi = np.where(small, cfg.small_size_mb[1], cfg.large_size_mb[1])
    # Log-uniform inside each range.
    u = rng.random(n)
    return np.exp(np.log(lo) + u * (np.log(hi) - np.log(lo)))


def _sample_profiles(cfg: SyntheticTraceConfig, n: int, rng: np.random.Generator):
    if cfg.mix is None:
        names = sorted(ALL_PROFILES)
        weights = np.ones(len(names))
    else:
        names = sorted(cfg.mix)
        weights = np.array([cfg.mix[name] for name in names], dtype=np.float64)
    weights = weights / weights.sum()
    return [names[i] for i in rng.choice(len(names), size=n, p=weights)]


def generate_trace(
    cfg: SyntheticTraceConfig, rng: np.random.Generator
) -> List[JobRecord]:
    """Generate a synthetic trace per ``cfg``; sorted by arrival time."""
    n = int(rng.poisson(cfg.jobs_per_s * cfg.horizon_s))
    if n == 0:
        return []
    arrivals = np.sort(rng.uniform(0.0, cfg.horizon_s, n))
    sizes = _sample_sizes(cfg, n, rng)
    profiles = _sample_profiles(cfg, n, rng)
    if cfg.duration_mode == "google":
        mu = math.log(GOOGLE_MEDIAN_DURATION_S)
        durations = rng.lognormal(mu, GOOGLE_DURATION_SIGMA, n)
    else:
        durations = np.array(
            [
                get_profile(p).sample_duration(s, rng)
                for p, s in zip(profiles, sizes)
            ]
        )
    return [
        JobRecord(
            profile_name=p,
            input_mb=float(s),
            arrival_time=float(t),
            duration=float(d),
        )
        for p, s, t, d in zip(profiles, sizes, arrivals, durations)
    ]


def trace_stats(records: Sequence[JobRecord]) -> TraceStats:
    """Recompute the published marginals from a trace."""
    if not records:
        raise WorkloadError("cannot compute stats of an empty trace")
    durations = np.array([r.duration for r in records])
    sizes = np.array([r.input_mb for r in records])
    return TraceStats(
        n_jobs=len(records),
        frac_small=float(np.mean(sizes < gb(1))),
        frac_le_10min=float(np.mean(durations <= minutes(10))),
        frac_le_3h=float(np.mean(durations <= minutes(180))),
        mean_duration_s=float(durations.mean()),
        mean_input_mb=float(sizes.mean()),
    )


# ----------------------------------------------------------------------
# request arrival-rate trace profiles
# ----------------------------------------------------------------------
def _stationary(i: int, n: int) -> float:
    # Exactly 1.0: `rate * 1.0` is IEEE-identical to `rate`, so the
    # stationary profile is bit-for-bit the pre-profile code path.
    return 1.0


def _diurnal(i: int, n: int) -> float:
    # One full day-night cycle across the run: sinusoid around 1.0
    # with ±40 % swing, starting at the trough (overnight ramp-up).
    phase = 2.0 * math.pi * (i + 0.5) / max(n, 1)
    return 1.0 + 0.4 * -math.cos(phase)


def _burst(i: int, n: int) -> float:
    # A 2x plateau over the middle third of the run — the classic load
    # spike a scheduler must absorb and then recover from.
    lo, hi = n / 3.0, 2.0 * n / 3.0
    return 2.0 if lo <= i < hi else 1.0


def _flash_crowd(i: int, n: int) -> float:
    # Sudden 3x onset at 40 % of the run, decaying geometrically back
    # towards baseline — a flash crowd with a long cool-down tail.
    onset = int(0.4 * n)
    if i < onset:
        return 1.0
    return 1.0 + 2.0 * (0.5 ** (i - onset))


#: Profile name -> multiplier(interval_index, n_intervals).
_ARRIVAL_PROFILES: Dict[str, Callable[[int, int], float]] = {
    "stationary": _stationary,
    "diurnal": _diurnal,
    "burst": _burst,
    "flash-crowd": _flash_crowd,
}


def register_arrival_profile(
    name: str, fn: Callable[[int, int], float], replace_existing: bool = False
) -> None:
    """Register a named arrival profile ``fn(interval, n_intervals)``.

    Profiles must be pure (no RNG, no state): they are evaluated
    independently in every worker process and inside cache-key hashing
    paths, so the same name must always produce the same multipliers.
    """
    if not name:
        raise WorkloadError("arrival profile name must be non-empty")
    if not callable(fn):
        raise WorkloadError(f"arrival profile {name!r} must be callable")
    if name in _ARRIVAL_PROFILES and not replace_existing:
        raise WorkloadError(
            f"arrival profile {name!r} is already registered "
            "(pass replace_existing=True to shadow it)"
        )
    _ARRIVAL_PROFILES[name] = fn


def arrival_profile_names() -> List[str]:
    """Registered arrival-profile names, sorted."""
    return sorted(_ARRIVAL_PROFILES)


def arrival_rate_multipliers(profile: str, n_intervals: int) -> np.ndarray:
    """Per-interval rate multipliers for ``profile`` over a run.

    Deterministic and positive; the runner multiplies its configured
    base arrival rate by ``multipliers[interval]`` each interval.
    """
    if n_intervals < 1:
        raise WorkloadError(f"n_intervals must be >= 1, got {n_intervals}")
    try:
        fn = _ARRIVAL_PROFILES[profile]
    except KeyError:
        raise WorkloadError(
            f"unknown arrival profile {profile!r} "
            f"(registered: {', '.join(arrival_profile_names())})"
        ) from None
    out = np.array([float(fn(i, n_intervals)) for i in range(n_intervals)])
    if not np.all(np.isfinite(out)) or np.any(out <= 0):
        raise WorkloadError(
            f"arrival profile {profile!r} produced non-positive or "
            f"non-finite multipliers {out!r}"
        )
    return out


def arrival_rate_multiplier(profile: str, interval: int, cycle: int) -> float:
    """One multiplier for an *unbounded* open-loop stream.

    Profiles are defined over a finite horizon; a long-running service
    replays them cyclically, so window ``interval`` of a live stream
    maps to interval ``interval % cycle`` of a ``cycle``-interval run.
    For ``interval < cycle`` this is exactly
    ``arrival_rate_multipliers(profile, cycle)[interval]``.
    """
    if cycle < 1:
        raise WorkloadError(f"cycle must be >= 1, got {cycle}")
    if interval < 0:
        raise WorkloadError(f"interval must be >= 0, got {interval}")
    try:
        fn = _ARRIVAL_PROFILES[profile]
    except KeyError:
        raise WorkloadError(
            f"unknown arrival profile {profile!r} "
            f"(registered: {', '.join(arrival_profile_names())})"
        ) from None
    value = float(fn(interval % cycle, cycle))
    if not math.isfinite(value) or value <= 0:
        raise WorkloadError(
            f"arrival profile {profile!r} produced non-positive or "
            f"non-finite multiplier {value!r} at interval {interval}"
        )
    return value
