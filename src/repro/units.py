"""Unit conventions and conversion helpers.

The simulator uses **seconds** for every time quantity and **megabytes**
for every data quantity internally; these helpers exist so that call
sites can state their units explicitly instead of sprinkling magic
constants.  All helpers are trivially vectorised: they accept floats or
NumPy arrays and return the same shape.

Conventions
-----------
time
    seconds (``float``); helpers: :func:`ms`, :func:`us`, :func:`minutes`.
data
    megabytes (``float``); helpers: :func:`kb`, :func:`mb`, :func:`gb`.
rates
    requests/second, megabytes/second.
"""

from __future__ import annotations

MS_PER_S = 1_000.0
US_PER_S = 1_000_000.0
S_PER_MINUTE = 60.0
S_PER_HOUR = 3_600.0

MB_PER_KB = 1.0 / 1024.0
MB_PER_GB = 1024.0


def ms(value):
    """Convert milliseconds to seconds (``ms(10)`` → ``0.01``)."""
    return value / MS_PER_S


def us(value):
    """Convert microseconds to seconds."""
    return value / US_PER_S


def minutes(value):
    """Convert minutes to seconds."""
    return value * S_PER_MINUTE


def hours(value):
    """Convert hours to seconds."""
    return value * S_PER_HOUR


def to_ms(seconds):
    """Convert seconds to milliseconds (for reporting)."""
    return seconds * MS_PER_S


def to_us(seconds):
    """Convert seconds to microseconds (for reporting)."""
    return seconds * US_PER_S


def kb(value):
    """Convert kilobytes to megabytes."""
    return value * MB_PER_KB


def mb(value):
    """Identity helper so call sites can write ``mb(500)`` explicitly."""
    return float(value)


def gb(value):
    """Convert gigabytes to megabytes (``gb(2)`` → ``2048.0``)."""
    return value * MB_PER_GB


def to_gb(megabytes):
    """Convert megabytes to gigabytes (for reporting)."""
    return megabytes / MB_PER_GB
