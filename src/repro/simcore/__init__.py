"""Discrete-event simulation substrate.

This subpackage provides the machinery every higher layer builds on:

- :mod:`repro.simcore.events` — the event record and the time-ordered
  event queue (binary heap with deterministic FIFO tie-breaking).
- :mod:`repro.simcore.engine` — the simulation engine: a virtual clock,
  ``schedule``/``schedule_at`` and ``run_until``/``run`` drivers, and
  periodic-callback helpers used by the monitor and the scheduler.
- :mod:`repro.simcore.distributions` — service-time / interarrival
  distributions with analytic moments (mean, variance, squared
  coefficient of variation) needed by the M/G/1 model of paper Eq. 2.
- :mod:`repro.simcore.lindley` — the FIFO single-server queue sample
  path (Lindley recursion), as a legible pure-Python reference and as
  the NumPy-vectorised production kernel.
"""

from repro.simcore.distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    ShiftedExponential,
    Uniform,
    Weibull,
)
from repro.simcore.engine import SimulationEngine
from repro.simcore.events import Event, EventQueue
from repro.simcore.lindley import (
    lindley_waits,
    lindley_waits_reference,
    sojourn_times,
)

__all__ = [
    "Event",
    "EventQueue",
    "SimulationEngine",
    "Distribution",
    "Deterministic",
    "Exponential",
    "ShiftedExponential",
    "HyperExponential",
    "LogNormal",
    "Pareto",
    "Uniform",
    "Weibull",
    "Empirical",
    "lindley_waits",
    "lindley_waits_reference",
    "sojourn_times",
]
