"""Event records and the time-ordered event queue.

The queue is a plain binary heap (``heapq``) of ``(time, seq, Event)``
triples.  ``seq`` is a monotonically increasing counter that makes
same-time events pop in schedule order, which keeps the whole simulator
deterministic — an essential property for the reproducibility contract
stated in :mod:`repro.rng`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which to fire.
    callback:
        Zero-argument callable invoked when the event fires.
    label:
        Optional human-readable tag used in tracing and error messages.
    """

    time: float
    callback: Callable[[], Any]
    label: str = ""
    _cancelled: bool = field(default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue will skip it when popped.

        Cancellation is O(1); the record stays in the heap until its
        time comes and is then discarded.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled


class EventQueue:
    """A deterministic min-heap of :class:`Event` records."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> Event:
        """Insert ``event`` and return it (for later cancellation)."""
        if not callable(event.callback):
            raise SimulationError(
                f"event callback must be callable, got {event.callback!r}"
            )
        heapq.heappush(self._heap, (event.time, next(self._counter), event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event.

        Returns ``None`` when the queue holds no live events.
        """
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        """Number of records in the heap, including cancelled ones."""
        return len(self._heap)

    def live_count(self) -> int:
        """Number of non-cancelled events (O(n); for tests/debugging)."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def __bool__(self) -> bool:
        return self.peek_time() is not None
