"""FIFO single-server queue sample paths via the Lindley recursion.

The waiting time of request *n* in a work-conserving FIFO single-server
queue obeys Lindley's recursion::

    W_0 = w0                      (initial backlog at the first arrival)
    W_n = max(0, W_{n-1} + S_{n-1} - A_n)

where ``S`` are service times and ``A_n`` the interarrival gap before
request *n*.  Unrolling the recursion turns it into a running maximum of
prefix sums — with ``D_n = S_{n-1} - A_n`` and ``C_n = D_1 + … + D_n``::

    W_n = C_n - min(-w0, C_1, …, C_n)

which NumPy evaluates in O(n) with ``cumsum`` + ``minimum.accumulate``
and **no Python-level loop**.  This is the production kernel behind the
interval simulator in :mod:`repro.sim.queue_sim`; the legible loop form
is kept as :func:`lindley_waits_reference` and property-tested against
the vectorised form (see ``tests/simcore/test_lindley.py``).

This exactness matters: the queueing behaviour (Eq. 2 of the paper and
everything downstream of it) is reproduced from first principles, not
approximated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "lindley_waits",
    "lindley_waits_chunked",
    "LindleyCarry",
    "lindley_waits_reference",
    "sojourn_times",
    "fifo_departures",
    "busy_fraction",
]


def _validate(arrival_times: np.ndarray, service_times: np.ndarray) -> None:
    if arrival_times.ndim != 1 or service_times.ndim != 1:
        raise SimulationError("arrival_times and service_times must be 1-D")
    if arrival_times.shape != service_times.shape:
        raise SimulationError(
            f"shape mismatch: {arrival_times.shape} arrivals vs "
            f"{service_times.shape} services"
        )
    if arrival_times.size and np.any(np.diff(arrival_times) < 0):
        raise SimulationError("arrival_times must be non-decreasing")
    if np.any(service_times < 0):
        raise SimulationError("service_times must be non-negative")


def lindley_waits(
    arrival_times,
    service_times,
    initial_work: float = 0.0,
    *,
    validate: bool = True,
) -> np.ndarray:
    """Waiting times (time in queue, excluding service) for each request.

    Parameters
    ----------
    arrival_times:
        Non-decreasing absolute arrival instants, shape ``(n,)``.
    service_times:
        Non-negative service demands, shape ``(n,)``.
    initial_work:
        Unfinished work already in the server when the first request
        arrives (seconds).  Lets interval simulations carry queue
        backlog across scheduling-interval boundaries.
    validate:
        Disable input checking in hot loops that already guarantee it.

    Returns
    -------
    numpy.ndarray
        ``W`` with ``W[i]`` = queueing delay of request ``i``.
    """
    t = np.asarray(arrival_times, dtype=np.float64)
    s = np.asarray(service_times, dtype=np.float64)
    if validate:
        _validate(t, s)
        if initial_work < 0:
            raise SimulationError(f"initial_work must be >= 0, got {initial_work}")
    n = t.size
    waits = np.empty(n, dtype=np.float64)
    if n == 0:
        return waits
    waits[0] = initial_work
    if n == 1:
        return waits
    # D_n = S_{n-1} - A_n for n = 1..n-1 ; C = prefix sums of D.
    drift = s[:-1] - np.diff(t)
    c = np.cumsum(drift)
    # prefix_min[j] = min(-w0, C_1, ..., C_j)  (j = 1..n-1)
    prefix = np.empty(n, dtype=np.float64)
    prefix[0] = -float(initial_work)
    prefix[1:] = c
    np.minimum.accumulate(prefix, out=prefix)
    waits[1:] = c - prefix[1:]
    return waits


@dataclass
class LindleyCarry:
    """Queue state threaded across chunk boundaries — **bit-exactly**.

    A naive carry (resume with ``initial_work = last wait + service``)
    re-associates the floating-point prefix sums and drifts off the
    monolithic sample path in the last bits.  Instead we carry exactly
    the four scalars the unrolled recursion needs —

    - ``cumsum``: the drift prefix sum ``C`` at the last processed
      request (``0.0`` right after the first request, whose ``C_0`` is
      defined as zero),
    - ``prefix_min``: ``min(-w0, C_1, …, C_last)``,
    - ``last_arrival`` / ``last_service``: the boundary request's
      arrival instant and service demand (they parameterise the next
      chunk's first drift term)

    — and replay the *same* float operations: ``np.cumsum`` seeded by
    prepending ``cumsum`` (cumsum is strictly sequential, so the
    additions associate identically), ``np.minimum.accumulate`` seeded
    with ``prefix_min`` (min is exact), and the boundary drift computed
    as ``last_service - (t[0] - last_arrival)`` — the very expression
    the monolithic ``np.diff`` path evaluates.  Chunked waits are
    therefore bit-for-bit the monolithic waits for any chunking
    (property-tested in ``tests/simcore/test_lindley.py``).
    """

    cumsum: float
    prefix_min: float
    last_arrival: float
    last_service: float


def lindley_waits_chunked(
    arrival_times,
    service_times,
    carry: Optional[LindleyCarry] = None,
    initial_work: float = 0.0,
    *,
    validate: bool = True,
) -> Tuple[np.ndarray, Optional[LindleyCarry]]:
    """One chunk of the Lindley recursion, resumable across chunks.

    The first chunk of a stream passes ``carry=None`` (and optionally
    ``initial_work``, exactly as :func:`lindley_waits`); every later
    chunk passes the carry returned by the previous call.  Returns
    ``(waits, new_carry)``; concatenating the per-chunk waits is
    bit-identical to one :func:`lindley_waits` call over the whole
    stream.  An empty chunk returns the carry unchanged.
    """
    t = np.asarray(arrival_times, dtype=np.float64)
    s = np.asarray(service_times, dtype=np.float64)
    if validate:
        _validate(t, s)
        if carry is None and initial_work < 0:
            raise SimulationError(
                f"initial_work must be >= 0, got {initial_work}"
            )
        if carry is not None and t.size and t[0] < carry.last_arrival:
            raise SimulationError(
                "chunk arrivals must continue the carried stream "
                f"(first arrival {t[0]} < carried {carry.last_arrival})"
            )
    n = t.size
    if n == 0:
        return np.empty(0, dtype=np.float64), carry
    if carry is None:
        waits = lindley_waits(t, s, initial_work, validate=False)
        if n == 1:
            new = LindleyCarry(0.0, -float(initial_work), float(t[0]), float(s[0]))
            return waits, new
        # Recover C_last / prefix_min from the same intermediates the
        # monolithic kernel computes (recomputed here; the kernel stays
        # a single straight-line fast path).
        drift = s[:-1] - np.diff(t)
        c = np.cumsum(drift)
        prefix = np.empty(n, dtype=np.float64)
        prefix[0] = -float(initial_work)
        prefix[1:] = c
        np.minimum.accumulate(prefix, out=prefix)
        return waits, LindleyCarry(
            float(c[-1]), float(prefix[-1]), float(t[-1]), float(s[-1])
        )
    # Continuation: first drift spans the chunk boundary.
    boundary = carry.last_service - (t[0] - carry.last_arrival)
    if n == 1:
        drift = np.array([boundary], dtype=np.float64)
    else:
        drift = np.empty(n, dtype=np.float64)
        drift[0] = boundary
        drift[1:] = s[:-1] - np.diff(t)
    # Seeded cumsum: prepend the carried prefix sum so the sequential
    # additions replay the monolithic order exactly.
    c = np.cumsum(np.concatenate([[carry.cumsum], drift]))[1:]
    prefix = np.concatenate([[carry.prefix_min], c])
    np.minimum.accumulate(prefix, out=prefix)
    waits = c - prefix[1:]
    return waits, LindleyCarry(
        float(c[-1]), float(prefix[-1]), float(t[-1]), float(s[-1])
    )


def lindley_waits_reference(
    arrival_times, service_times, initial_work: float = 0.0
) -> np.ndarray:
    """Pure-Python Lindley recursion — the specification for tests.

    Mirrors the recursion as written in queueing textbooks, one request
    at a time.  O(n) but with Python-level overhead; never used on the
    hot path.
    """
    t = np.asarray(arrival_times, dtype=np.float64)
    s = np.asarray(service_times, dtype=np.float64)
    _validate(t, s)
    if initial_work < 0:
        raise SimulationError(f"initial_work must be >= 0, got {initial_work}")
    n = t.size
    waits = np.empty(n, dtype=np.float64)
    if n == 0:
        return waits
    w = float(initial_work)
    waits[0] = w
    for i in range(1, n):
        w = max(0.0, w + float(s[i - 1]) - (float(t[i]) - float(t[i - 1])))
        waits[i] = w
    return waits


def sojourn_times(
    arrival_times, service_times, initial_work: float = 0.0, *, validate: bool = True
) -> np.ndarray:
    """Per-request latency = queueing delay + own service time.

    This is the component *latency* ``l`` in the paper's terminology
    ("request response time including both the request queueing delay
    and the time of being processed", §I).
    """
    s = np.asarray(service_times, dtype=np.float64)
    return (
        lindley_waits(arrival_times, s, initial_work, validate=validate) + s
    )


def fifo_departures(
    arrival_times, service_times, initial_work: float = 0.0
) -> np.ndarray:
    """Absolute departure instants ``t + W + S`` for each request."""
    t = np.asarray(arrival_times, dtype=np.float64)
    s = np.asarray(service_times, dtype=np.float64)
    return t + lindley_waits(t, s, initial_work) + s


def busy_fraction(
    arrival_times, service_times, horizon: float, initial_work: float = 0.0
) -> float:
    """Fraction of ``[first arrival, first arrival + horizon]`` the server is busy.

    A sample-path utilisation estimate used in tests to cross-check the
    analytic ``rho = lambda / mu``.
    """
    t = np.asarray(arrival_times, dtype=np.float64)
    s = np.asarray(service_times, dtype=np.float64)
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive, got {horizon}")
    if t.size == 0:
        return 0.0
    end = t[0] + horizon
    dep = fifo_departures(t, s, initial_work)
    starts = dep - s
    busy = np.clip(np.minimum(dep, end) - np.clip(starts, t[0], end), 0.0, None)
    return float(busy.sum() / horizon)
