"""The discrete-event simulation engine.

A thin, deterministic driver over :class:`repro.simcore.events.EventQueue`:
it owns the virtual clock, fires events in time order, and offers the two
scheduling idioms the rest of the package uses —

``schedule(delay, fn)``
    fire ``fn`` after ``delay`` simulated seconds;

``every(period, fn)``
    fire ``fn`` every ``period`` seconds (used by the online monitor's
    1-second/60-second cadences and by the scheduling-interval loop).

The engine never advances past events it has not fired, so callbacks can
schedule further events freely, including at the current instant.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.simcore.events import Event, EventQueue

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Virtual clock plus event dispatch.

    Examples
    --------
    >>> eng = SimulationEngine()
    >>> fired = []
    >>> _ = eng.schedule(2.0, lambda: fired.append(eng.now))
    >>> _ = eng.schedule(1.0, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._events_fired = 0
        self._running = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events still queued."""
        return self._queue.live_count()

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self._now:.6f}"
            )
        return self._queue.push(Event(time=float(time), callback=callback, label=label))

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        *,
        start: Optional[float] = None,
        label: str = "",
    ) -> Callable[[], None]:
        """Fire ``callback`` every ``period`` seconds until cancelled.

        The first firing happens at ``start`` (default: ``now + period``).
        Returns a zero-argument function that stops the recurrence.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        state = {"stopped": False, "event": None}

        def fire() -> None:
            if state["stopped"]:
                return
            callback()
            if not state["stopped"]:
                state["event"] = self.schedule(period, fire, label=label)

        first = self._now + period if start is None else start
        state["event"] = self.schedule_at(first, fire, label=label)

        def stop() -> None:
            state["stopped"] = True
            if state["event"] is not None:
                state["event"].cancel()

        return stop

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest event.  Returns False when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - guarded by schedule_at
            raise SimulationError("event queue yielded an event in the past")
        self._now = event.time
        self._events_fired += 1
        event.callback()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fired).

        Returns the number of events fired by this call.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while max_events is None or fired < max_events:
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        return fired

    def run_until(self, time: float) -> int:
        """Fire every event with ``event.time <= time``; clock ends at ``time``.

        Returns the number of events fired by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"run_until target t={time:.6f} is before now={self._now:.6f}"
            )
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
                fired += 1
            self._now = float(time)
        finally:
            self._running = False
        return fired

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        self._queue.clear()
        self._now = float(start_time)
        self._events_fired = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationEngine(now={self._now:.3f}, pending={self.pending}, "
            f"fired={self._events_fired})"
        )
