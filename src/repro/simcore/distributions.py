"""Service-time and interarrival distributions with analytic moments.

The M/G/1 latency model of the paper (Eq. 2) needs the first two moments
of the service-time distribution — the mean ``x̄`` and the squared
coefficient of variation ``C²ₓ = var(x)/x̄²``.  Every distribution here
therefore exposes

``mean`` / ``var`` / ``scv``
    exact analytic moments, and

``sample(rng, size)``
    vectorised sampling from a caller-provided
    :class:`numpy.random.Generator` (distributions hold **no** RNG state
    of their own, which keeps them hashable, comparable and safe to
    share between components).

``scaled(factor)`` returns a new distribution whose samples are the
originals multiplied by ``factor`` — this is how the interference model
inflates a component's base service time without changing its shape
(``scv`` is scale-invariant).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.special import gamma as _gamma_fn

from repro.errors import ConfigurationError

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "ShiftedExponential",
    "HyperExponential",
    "LogNormal",
    "Pareto",
    "Uniform",
    "Weibull",
    "Empirical",
]


class Distribution(ABC):
    """A non-negative random variable with known first two moments."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected value E[X]."""

    @property
    @abstractmethod
    def var(self) -> float:
        """Variance Var[X]."""

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.var)

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``var / mean**2`` (paper C²ₓ)."""
        m = self.mean
        if m <= 0:
            raise ConfigurationError(f"scv undefined for mean={m}")
        return self.var / (m * m)

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw ``size`` iid samples (or a scalar when ``size`` is None)."""

    def scaled(self, factor: float) -> "Distribution":
        """Return the distribution of ``factor * X`` (``factor > 0``)."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        if factor == 1.0:
            return self
        return _Scaled(self, float(factor))

    def with_mean(self, mean: float) -> "Distribution":
        """Return a rescaled copy whose mean is exactly ``mean``."""
        if mean <= 0:
            raise ConfigurationError(f"target mean must be positive, got {mean}")
        return self.scaled(mean / self.mean)


@dataclass(frozen=True)
class _Scaled(Distribution):
    """``factor * base`` — used by :meth:`Distribution.scaled`."""

    base: Distribution
    factor: float

    @property
    def mean(self) -> float:
        return self.factor * self.base.mean

    @property
    def var(self) -> float:
        return self.factor * self.factor * self.base.var

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.factor * self.base.sample(rng, size)

    def scaled(self, factor: float) -> Distribution:
        # Collapse nested scalings so chains of inflation stay flat.
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return _Scaled(self.base, self.factor * factor)


@dataclass(frozen=True)
class Deterministic(Distribution):
    """A constant service time (C²ₓ = 0; M/G/1 becomes M/D/1)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(f"value must be >= 0, got {self.value}")

    @property
    def mean(self) -> float:
        return self.value

    @property
    def var(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        if size is None:
            return self.value
        return np.full(size, self.value, dtype=np.float64)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (C²ₓ = 1; M/G/1 = M/M/1)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ConfigurationError(f"mean must be > 0, got {self.mean_value}")

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def var(self) -> float:
        return self.mean_value**2

    @property
    def rate(self) -> float:
        """The rate parameter λ = 1/mean."""
        return 1.0 / self.mean_value

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.exponential(self.mean_value, size)


@dataclass(frozen=True)
class ShiftedExponential(Distribution):
    """``shift + Exp(mean_exp)`` — a minimum service time plus memoryless tail.

    A realistic shape for RPC handlers: there is an incompressible
    deserialisation/lookup floor plus a variable part.
    """

    shift: float
    mean_exp: float

    def __post_init__(self) -> None:
        if self.shift < 0:
            raise ConfigurationError(f"shift must be >= 0, got {self.shift}")
        if self.mean_exp <= 0:
            raise ConfigurationError(f"mean_exp must be > 0, got {self.mean_exp}")

    @property
    def mean(self) -> float:
        return self.shift + self.mean_exp

    @property
    def var(self) -> float:
        return self.mean_exp**2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.shift + rng.exponential(self.mean_exp, size)


@dataclass(frozen=True)
class HyperExponential(Distribution):
    """Mixture of exponentials (C²ₓ > 1; bursty / heavy-ish tails).

    ``probs[i]`` selects an exponential with mean ``means[i]``.
    """

    probs: tuple
    means: tuple

    def __post_init__(self) -> None:
        probs = tuple(float(p) for p in self.probs)
        means = tuple(float(m) for m in self.means)
        object.__setattr__(self, "probs", probs)
        object.__setattr__(self, "means", means)
        if len(probs) != len(means) or not probs:
            raise ConfigurationError("probs and means must be same non-zero length")
        if any(p < 0 for p in probs) or not math.isclose(sum(probs), 1.0, abs_tol=1e-9):
            raise ConfigurationError(f"probs must be a distribution, got {probs}")
        if any(m <= 0 for m in means):
            raise ConfigurationError(f"means must be positive, got {means}")

    @property
    def mean(self) -> float:
        return sum(p * m for p, m in zip(self.probs, self.means))

    @property
    def var(self) -> float:
        # E[X^2] for a mixture of exponentials: sum p_i * 2 m_i^2.
        second = sum(p * 2.0 * m * m for p, m in zip(self.probs, self.means))
        return second - self.mean**2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        n = 1 if size is None else int(size)
        branch = rng.choice(len(self.probs), size=n, p=np.asarray(self.probs))
        means = np.asarray(self.means)[branch]
        out = rng.exponential(1.0, n) * means
        return float(out[0]) if size is None else out


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterised by its *actual* mean and C²ₓ.

    The natural parameterisation for multiplicative interference noise;
    the underlying normal parameters are derived so that ``mean`` and
    ``scv`` are exact.
    """

    mean_value: float
    scv_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ConfigurationError(f"mean must be > 0, got {self.mean_value}")
        if self.scv_value <= 0:
            raise ConfigurationError(f"scv must be > 0, got {self.scv_value}")

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def var(self) -> float:
        return self.scv_value * self.mean_value**2

    @property
    def _sigma2(self) -> float:
        return math.log1p(self.scv_value)

    @property
    def _mu(self) -> float:
        return math.log(self.mean_value) - 0.5 * self._sigma2

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.lognormal(self._mu, math.sqrt(self._sigma2), size)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (Lomax-style, ``x >= xm``) with shape ``alpha > 2``.

    Heavy tails; ``alpha <= 2`` has infinite variance and is rejected
    because Eq. 2 requires a finite second moment.
    """

    xm: float
    alpha: float

    def __post_init__(self) -> None:
        if self.xm <= 0:
            raise ConfigurationError(f"xm must be > 0, got {self.xm}")
        if self.alpha <= 2:
            raise ConfigurationError(
                f"alpha must be > 2 for finite variance, got {self.alpha}"
            )

    @property
    def mean(self) -> float:
        return self.alpha * self.xm / (self.alpha - 1.0)

    @property
    def var(self) -> float:
        a = self.alpha
        return (self.xm**2 * a) / ((a - 1.0) ** 2 * (a - 2.0))

    def sample(self, rng: np.random.Generator, size: int | None = None):
        # numpy's pareto is the Lomax (shifted) form: xm * (1 + Lomax).
        return self.xm * (1.0 + rng.pareto(self.alpha, size))


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low < self.high:
            raise ConfigurationError(
                f"need 0 <= low < high, got [{self.low}, {self.high}]"
            )

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def var(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return rng.uniform(self.low, self.high, size)


@dataclass(frozen=True)
class Weibull(Distribution):
    """Weibull with scale ``lam`` and shape ``k`` (C²ₓ < 1 for k > 1)."""

    lam: float
    k: float

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.k <= 0:
            raise ConfigurationError(
                f"scale and shape must be > 0, got lam={self.lam}, k={self.k}"
            )

    @property
    def mean(self) -> float:
        return self.lam * float(_gamma_fn(1.0 + 1.0 / self.k))

    @property
    def var(self) -> float:
        g1 = float(_gamma_fn(1.0 + 1.0 / self.k))
        g2 = float(_gamma_fn(1.0 + 2.0 / self.k))
        return self.lam**2 * (g2 - g1 * g1)

    def sample(self, rng: np.random.Generator, size: int | None = None):
        return self.lam * rng.weibull(self.k, size)


class Empirical(Distribution):
    """Resampling distribution over observed values.

    Used by the monitor-driven predictor when only a window of measured
    service times is available: moments are the sample moments and
    sampling is bootstrap resampling.
    """

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ConfigurationError("Empirical needs a non-empty 1-D sequence")
        if np.any(arr < 0):
            raise ConfigurationError("Empirical values must be non-negative")
        self._values = arr
        self._mean = float(arr.mean())
        self._var = float(arr.var())

    @property
    def values(self) -> np.ndarray:
        """The observations backing this distribution (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def var(self) -> float:
        return self._var

    def sample(self, rng: np.random.Generator, size: int | None = None):
        n = 1 if size is None else int(size)
        out = rng.choice(self._values, size=n, replace=True)
        return float(out[0]) if size is None else out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Empirical(n={self._values.size}, mean={self._mean:.6g}, "
            f"var={self._var:.6g})"
        )
