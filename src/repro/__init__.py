"""repro — a full reproduction of *PCS: Predictive Component-level
Scheduling for Reducing Tail Latency in Cloud Online Services*
(Han et al., ICPP 2015).

Layering (bottom-up):

- :mod:`repro.simcore` — discrete-event engine, distributions, queues.
- :mod:`repro.cluster` — nodes, machines, shared resources.
- :mod:`repro.workloads` — batch-job profiles, churn, traces.
- :mod:`repro.service` — multi-stage online-service model (Nutch-like).
- :mod:`repro.scenarios` — named workload scenarios (service builder +
  workload profile + runner defaults); the paper's ``nutch-search``
  plus a deep pipeline and a heavy-tailed fan-out feed, all runnable
  end to end via ``RunnerConfig.scenario`` / ``--scenario``.
- :mod:`repro.interference` — ground-truth service-time inflation.
- :mod:`repro.monitoring` — online contention/arrival-rate monitors.
- :mod:`repro.model` — the performance predictor (paper Eqs. 1–5).
- :mod:`repro.scheduler` — PCS (paper Algorithms 1–2) and extensions.
- :mod:`repro.baselines` — Basic, RED-k, RI-p comparison policies.
- :mod:`repro.sim` — full-system simulation harness, including the
  shared latency-metric kernel (:mod:`repro.sim.metrics`, nearest-rank
  percentiles) and the parallel sweep-execution subsystem
  (:mod:`repro.sim.sweep`: policies × rates × seeds grids over
  multiprocessing workers with an on-disk resume cache).
- :mod:`repro.experiments` — drivers for the paper's Figures 5–7; all
  three route their independent grid points through
  :mod:`repro.sim.sweep`, so ``workers=N`` parallelises any figure
  without changing a single reported number.

Quickstart::

    from repro import quickstart_comparison
    result = quickstart_comparison(arrival_rate=100.0, seed=1)
    print(result.render())
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.errors import ReproError
from repro.rng import RngRegistry

__all__ = [
    "__version__",
    "ReproError",
    "RngRegistry",
    "quickstart_comparison",
    # convenience re-exports of the most-used entry points; the full
    # API lives in the subpackages.
    "build_nutch_service",
    "standard_policies",
    "PCSScheduler",
    "ExperimentRunner",
    "RunnerConfig",
    "SweepSpec",
    "ParallelSweepRunner",
    "ScenarioSpec",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]


def __getattr__(name):  # lazy re-exports keep `import repro` light
    if name == "build_nutch_service":
        from repro.service.nutch import build_nutch_service

        return build_nutch_service
    if name == "standard_policies":
        from repro.baselines.policies import standard_policies

        return standard_policies
    if name == "PCSScheduler":
        from repro.scheduler.pcs import PCSScheduler

        return PCSScheduler
    if name in ("ExperimentRunner", "RunnerConfig"):
        from repro.sim import runner as _runner

        return getattr(_runner, name)
    if name in ("SweepSpec", "ParallelSweepRunner"):
        from repro.sim import sweep as _sweep

        return getattr(_sweep, name)
    if name in (
        "ScenarioSpec", "get_scenario", "register_scenario", "scenario_names"
    ):
        from repro import scenarios as _scenarios

        return getattr(_scenarios, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def quickstart_comparison(arrival_rate: float = 100.0, seed: int = 0, **kwargs):
    """Run a small Basic-vs-PCS comparison and return its result table.

    A convenience wrapper around the Fig. 6 experiment driver with small
    defaults suitable for a laptop; see ``examples/quickstart.py``.
    """
    from repro.experiments.fig6 import run_quick_comparison

    return run_quick_comparison(arrival_rate=arrival_rate, seed=seed, **kwargs)
