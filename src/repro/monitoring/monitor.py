"""The online contention monitor.

Reads each component's ground-truth contention from the cluster and
reports it with relative measurement noise, at the paper's two cadences
(§VI-A: system-level counters once per second via /proc, micro-
architectural counters once per minute via Perf/Oprofile).

Two driving modes:

- ``attach(engine)`` — periodic sampling events on a simulation engine;
- ``observe(component)`` / ``observe_window(component, n_samples)`` —
  immediate one-shot / averaged readings for interval-driven harnesses
  that do not run a fine-grained event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.errors import MonitoringError
from repro.monitoring.samples import (
    ContentionSample,
    FrozenSampleWindow,
    SampleWindow,
)
from repro.service.component import Component
from repro.simcore.engine import SimulationEngine

__all__ = ["MonitorConfig", "OnlineMonitor"]


@dataclass(frozen=True)
class MonitorConfig:
    """Cadences and noise levels of the monitor.

    Noise values are relative standard deviations of unbiased Gaussian
    multiplicative noise (a 0.03 core noise means a true 50 % core usage
    is reported as N(0.50, 0.015²), floored at zero).
    """

    system_period_s: float = 1.0
    micro_period_s: float = 60.0
    core_noise: float = 0.03
    bw_noise: float = 0.05
    cache_noise: float = 0.08

    def __post_init__(self) -> None:
        if self.system_period_s <= 0 or self.micro_period_s <= 0:
            raise MonitoringError("monitor periods must be positive")
        if self.micro_period_s < self.system_period_s:
            raise MonitoringError(
                "micro-architectural sampling must not be faster than "
                "system-level sampling"
            )
        for name in ("core_noise", "bw_noise", "cache_noise"):
            if getattr(self, name) < 0:
                raise MonitoringError(f"{name} must be >= 0")


class OnlineMonitor:
    """Per-component contention windows with realistic sampling noise."""

    def __init__(
        self,
        config: MonitorConfig,
        cluster: Cluster,
        components: Sequence[Component],
        rng: np.random.Generator,
    ) -> None:
        self.config = config
        self.cluster = cluster
        self.components = list(components)
        if not self.components:
            raise MonitoringError("monitor needs at least one component")
        self._rng = rng
        self.windows: Dict[str, SampleWindow] = {
            c.name: SampleWindow() for c in self.components
        }
        self._stops: List[Callable[[], None]] = []
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # noise
    # ------------------------------------------------------------------
    def _noisy(self, truth: ResourceVector, fresh_cache: bool) -> ResourceVector:
        cfg = self.config
        t = truth.as_array()
        sigmas = np.array([cfg.core_noise, cfg.cache_noise, cfg.bw_noise, cfg.bw_noise])
        noisy = t * (1.0 + sigmas * self._rng.standard_normal(4))
        if not fresh_cache:
            noisy[1] = t[1]  # carried-over value, replaced by window logic
        return ResourceVector(*np.maximum(noisy, 0.0))

    # ------------------------------------------------------------------
    # one-shot observation (interval-driven harness)
    # ------------------------------------------------------------------
    def observe(self, component: Component, time: float = 0.0) -> ContentionSample:
        """One noisy reading of a component's current contention."""
        truth = self.cluster.contention_for(component)
        sample = ContentionSample(
            time=time, vector=self._noisy(truth, fresh_cache=True)
        )
        self.samples_taken += 1
        return sample

    def observe_window(
        self, component: Component, duration_s: float, start_time: float = 0.0
    ) -> ResourceVector:
        """Average of the readings one scheduling interval would collect.

        ``duration_s / system_period_s`` system samples and
        ``duration_s / micro_period_s`` micro samples — i.e. the
        variance reduction a real interval of monitoring provides,
        without paying for the event loop.
        """
        if duration_s <= 0:
            raise MonitoringError(f"duration must be positive, got {duration_s}")
        cfg = self.config
        n_sys = max(1, int(duration_s / cfg.system_period_s))
        n_micro = max(1, int(duration_s / cfg.micro_period_s))
        truth = self.cluster.contention_for(component).as_array()
        scaled_sigmas = np.array(
            [
                cfg.core_noise / np.sqrt(n_sys),
                cfg.cache_noise / np.sqrt(n_micro),
                cfg.bw_noise / np.sqrt(n_sys),
                cfg.bw_noise / np.sqrt(n_sys),
            ]
        )
        noisy = truth * (1.0 + scaled_sigmas * self._rng.standard_normal(4))
        self.samples_taken += n_sys
        return ResourceVector(*np.maximum(noisy, 0.0))

    def observe_node_window(self, node, duration_s: float) -> ResourceVector:
        """Windowed noisy estimate of a node's *total* resource use.

        The node view the performance matrix needs (Table III's
        ``U_nj``): all residents plus background, before capacity
        clipping.
        """
        if duration_s <= 0:
            raise MonitoringError(f"duration must be positive, got {duration_s}")
        cfg = self.config
        n_sys = max(1, int(duration_s / cfg.system_period_s))
        n_micro = max(1, int(duration_s / cfg.micro_period_s))
        truth = node.total_demand().as_array()
        scaled_sigmas = np.array(
            [
                cfg.core_noise / np.sqrt(n_sys),
                cfg.cache_noise / np.sqrt(n_micro),
                cfg.bw_noise / np.sqrt(n_sys),
                cfg.bw_noise / np.sqrt(n_sys),
            ]
        )
        noisy = truth * (1.0 + scaled_sigmas * self._rng.standard_normal(4))
        self.samples_taken += n_sys
        return ResourceVector(*np.maximum(noisy, 0.0))

    # ------------------------------------------------------------------
    # event-driven sampling
    # ------------------------------------------------------------------
    def attach(self, engine: SimulationEngine) -> None:
        """Start periodic sampling on ``engine`` (idempotent per call)."""
        cfg = self.config
        self._stops.append(
            engine.every(
                cfg.system_period_s,
                lambda: self._sample_all(engine.now, fresh_cache=False),
                label="monitor-system",
            )
        )
        self._stops.append(
            engine.every(
                cfg.micro_period_s,
                lambda: self._sample_all(engine.now, fresh_cache=True),
                label="monitor-micro",
            )
        )

    def detach(self) -> None:
        """Stop all periodic sampling."""
        for stop in self._stops:
            stop()
        self._stops.clear()

    def _sample_all(self, now: float, fresh_cache: bool) -> None:
        for component in self.components:
            truth = self.cluster.contention_for(component)
            window = self.windows[component.name]
            carried = window.last_fresh_cache()
            sample_vec = self._noisy(truth, fresh_cache)
            if not fresh_cache and carried is not None:
                arr = sample_vec.as_array().copy()
                arr[1] = carried
                sample_vec = ResourceVector(*arr)
            window.append(
                ContentionSample(
                    time=now, vector=sample_vec, cache_valid=fresh_cache
                )
            )
            self.samples_taken += 1

    # ------------------------------------------------------------------
    # window access
    # ------------------------------------------------------------------
    def window_mean(self, component: Component) -> ResourceVector:
        """Estimated contention vector over the current window."""
        window = self.windows[component.name]
        if window.empty:
            raise MonitoringError(
                f"no samples for {component.name}; monitor not attached?"
            )
        return window.mean()

    def snapshot(self) -> Dict[str, FrozenSampleWindow]:
        """Frozen point-in-time views of every component's window.

        The control loop's monitor phase hands this across the phase
        boundary instead of the live :attr:`windows`, so a decision is
        always made against a consistent set of readings: samples
        recorded (or windows cleared) after the snapshot never mutate
        a view already taken.
        """
        return {
            name: window.freeze() for name, window in self.windows.items()
        }

    def reset_windows(self) -> None:
        """Clear all windows at a scheduling-interval boundary."""
        for window in self.windows.values():
            window.clear()
