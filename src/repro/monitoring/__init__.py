"""Online monitors (paper §III, §VI-A "Measurement method").

The monitor is the only source of information the predictor is allowed
to use: system-level contention (core usage, disk/network bandwidth)
sampled every second, micro-architectural contention (shared-cache
MPKI) sampled every minute — the paper's Perf/Oprofile cadences — plus
the service's request arrival rate profiled from its logs.  All
samples carry configurable relative measurement noise; the predictor
therefore sees *estimates*, never the simulator's ground truth.
"""

from repro.monitoring.arrival import ArrivalRateEstimator
from repro.monitoring.monitor import MonitorConfig, OnlineMonitor
from repro.monitoring.samples import ContentionSample, SampleWindow
from repro.monitoring.streaming import P2Quantile, StreamingMoments

__all__ = [
    "ContentionSample",
    "SampleWindow",
    "MonitorConfig",
    "OnlineMonitor",
    "ArrivalRateEstimator",
    "StreamingMoments",
    "P2Quantile",
]
