"""Contention samples and per-component sampling windows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.errors import MonitoringError

__all__ = ["ContentionSample", "SampleWindow"]


@dataclass(frozen=True)
class ContentionSample:
    """One monitor reading for one component.

    ``cache_valid`` distinguishes the 1 Hz system-level readings (core,
    disk, net — cache carried over from the last micro sample) from the
    1/60 Hz micro-architectural readings that refresh the cache MPKI.
    """

    time: float
    vector: ResourceVector
    cache_valid: bool = True


class SampleWindow:
    """Samples accumulated over one scheduling interval for one component.

    The window mean weights the two cadences correctly: core/disk/net
    are averaged over *all* samples, cache MPKI only over samples whose
    cache reading was fresh.
    """

    def __init__(self) -> None:
        self._samples: List[ContentionSample] = []

    def append(self, sample: ContentionSample) -> None:
        """Record one reading (times must be non-decreasing)."""
        if self._samples and sample.time < self._samples[-1].time:
            raise MonitoringError(
                f"sample at t={sample.time} precedes last at "
                f"t={self._samples[-1].time}"
            )
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        """Whether no sample has been recorded since the last clear."""
        return not self._samples

    def clear(self) -> None:
        """Reset at a scheduling-interval boundary."""
        self._samples.clear()

    def mean(self) -> ResourceVector:
        """Cadence-aware mean contention vector over the window."""
        if not self._samples:
            raise MonitoringError("cannot average an empty sample window")
        arr = np.stack([s.vector.as_array() for s in self._samples])
        mean = arr.mean(axis=0)
        fresh = [s for s in self._samples if s.cache_valid]
        if fresh:
            mean[1] = float(
                np.mean([s.vector.cache_mpki for s in fresh])
            )
        return ResourceVector(*np.maximum(mean, 0.0))

    def last(self) -> ContentionSample:
        """Most recent sample."""
        if not self._samples:
            raise MonitoringError("sample window is empty")
        return self._samples[-1]

    def last_fresh_cache(self) -> Optional[float]:
        """Most recent fresh cache MPKI reading, if any."""
        for s in reversed(self._samples):
            if s.cache_valid:
                return s.vector.cache_mpki
        return None
