"""Contention samples and per-component sampling windows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.errors import MonitoringError

__all__ = ["ContentionSample", "FrozenSampleWindow", "SampleWindow"]


@dataclass(frozen=True)
class ContentionSample:
    """One monitor reading for one component.

    ``cache_valid`` distinguishes the 1 Hz system-level readings (core,
    disk, net — cache carried over from the last micro sample) from the
    1/60 Hz micro-architectural readings that refresh the cache MPKI.
    """

    time: float
    vector: ResourceVector
    cache_valid: bool = True


def _cadence_aware_mean(samples) -> ResourceVector:
    """Mean contention vector weighting the two cadences correctly."""
    if not samples:
        raise MonitoringError("cannot average an empty sample window")
    arr = np.stack([s.vector.as_array() for s in samples])
    mean = arr.mean(axis=0)
    fresh = [s for s in samples if s.cache_valid]
    if fresh:
        mean[1] = float(np.mean([s.vector.cache_mpki for s in fresh]))
    return ResourceVector(*np.maximum(mean, 0.0))


@dataclass(frozen=True)
class FrozenSampleWindow:
    """An immutable point-in-time view of one component's window.

    Produced by :meth:`SampleWindow.freeze` (and, for whole monitors,
    :meth:`~repro.monitoring.monitor.OnlineMonitor.snapshot`) so the
    control loop can hand a window across a phase boundary without
    aliasing the live, still-appending state: observations recorded
    after the freeze never appear in a frozen view.
    """

    samples: Tuple[ContentionSample, ...]

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def empty(self) -> bool:
        """Whether the window held no samples at freeze time."""
        return not self.samples

    def mean(self) -> ResourceVector:
        """Cadence-aware mean contention vector over the frozen view."""
        return _cadence_aware_mean(self.samples)

    def last(self) -> ContentionSample:
        """Most recent sample at freeze time."""
        if not self.samples:
            raise MonitoringError("sample window is empty")
        return self.samples[-1]


class SampleWindow:
    """Samples accumulated over one scheduling interval for one component.

    The window mean weights the two cadences correctly: core/disk/net
    are averaged over *all* samples, cache MPKI only over samples whose
    cache reading was fresh.
    """

    def __init__(self) -> None:
        self._samples: List[ContentionSample] = []

    def append(self, sample: ContentionSample) -> None:
        """Record one reading (times must be non-decreasing)."""
        if self._samples and sample.time < self._samples[-1].time:
            raise MonitoringError(
                f"sample at t={sample.time} precedes last at "
                f"t={self._samples[-1].time}"
            )
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def empty(self) -> bool:
        """Whether no sample has been recorded since the last clear."""
        return not self._samples

    def clear(self) -> None:
        """Reset at a scheduling-interval boundary."""
        self._samples.clear()

    def mean(self) -> ResourceVector:
        """Cadence-aware mean contention vector over the window."""
        return _cadence_aware_mean(self._samples)

    def freeze(self) -> FrozenSampleWindow:
        """An immutable view of the samples recorded so far.

        ``ContentionSample`` is a frozen dataclass, so sharing the
        sample objects is safe; the tuple decouples the view from any
        later :meth:`append` or :meth:`clear`.
        """
        return FrozenSampleWindow(samples=tuple(self._samples))

    def last(self) -> ContentionSample:
        """Most recent sample."""
        if not self._samples:
            raise MonitoringError("sample window is empty")
        return self._samples[-1]

    def last_fresh_cache(self) -> Optional[float]:
        """Most recent fresh cache MPKI reading, if any."""
        for s in reversed(self._samples):
            if s.cache_valid:
                return s.vector.cache_mpki
        return None
