"""Request arrival-rate estimation.

The paper's monitor "obtains the request arrival rate by profiling
service's running logs" (§III).  Counting a Poisson stream over a
window yields a noisy rate estimate whose relative error shrinks as
``1/sqrt(count)``; this estimator reproduces exactly that, plus
exponential smoothing across windows as a log profiler would apply.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MonitoringError

__all__ = ["ArrivalRateEstimator"]


class ArrivalRateEstimator:
    """Windowed Poisson-count rate estimator with EWMA smoothing.

    Parameters
    ----------
    window_s:
        Length of each counting window (seconds).
    smoothing:
        EWMA coefficient in (0, 1]; 1.0 = no smoothing (each window
        stands alone).
    """

    def __init__(self, window_s: float = 10.0, smoothing: float = 0.5) -> None:
        if window_s <= 0:
            raise MonitoringError(f"window_s must be positive, got {window_s}")
        if not 0 < smoothing <= 1:
            raise MonitoringError(f"smoothing must be in (0, 1], got {smoothing}")
        self.window_s = float(window_s)
        self.smoothing = float(smoothing)
        self._estimate: Optional[float] = None
        self.windows_observed = 0

    @property
    def estimate(self) -> float:
        """Current smoothed arrival-rate estimate (req/s)."""
        if self._estimate is None:
            raise MonitoringError("no arrivals observed yet")
        return self._estimate

    @property
    def has_estimate(self) -> bool:
        """Whether at least one window has been observed."""
        return self._estimate is not None

    def record_count(self, count: int) -> float:
        """Feed the request count of one window; returns the new estimate."""
        if count < 0:
            raise MonitoringError(f"count must be >= 0, got {count}")
        rate = count / self.window_s
        if self._estimate is None:
            self._estimate = rate
        else:
            a = self.smoothing
            self._estimate = a * rate + (1 - a) * self._estimate
        self.windows_observed += 1
        return self._estimate

    def observe_poisson(
        self, true_rate: float, rng: np.random.Generator, n_windows: int = 1
    ) -> float:
        """Simulate profiling ``n_windows`` windows of a Poisson stream.

        The estimator sees only counts, so its output carries the
        statistical error a real log profiler would have.
        """
        if true_rate < 0:
            raise MonitoringError(f"true_rate must be >= 0, got {true_rate}")
        if n_windows <= 0:
            raise MonitoringError(f"n_windows must be positive, got {n_windows}")
        out = 0.0
        for _ in range(n_windows):
            count = int(rng.poisson(true_rate * self.window_s))
            out = self.record_count(count)
        return out

    def reset(self) -> None:
        """Forget all history."""
        self._estimate = None
        self.windows_observed = 0
