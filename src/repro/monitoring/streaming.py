"""Streaming statistics for online latency monitoring.

A production PCS deployment cannot buffer every request latency to
compute tail percentiles at each scheduling interval; it needs constant
-memory estimators.  This module provides the two standard tools:

- :class:`StreamingMoments` — Welford's online mean/variance (exact),
  which is how a monitor maintains the ``x̄`` and ``var(x)`` that
  Eq. 2 consumes over a window;
- :class:`P2Quantile` — the Jain & Chlamtac (1985) P² algorithm: a
  five-marker parabolic estimator of an arbitrary quantile in O(1)
  memory and O(1) per observation, used for the 99th-percentile
  component-latency metric.

Both are deterministic, mergeable into the interval loop, and
property-tested against exact NumPy computations.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.errors import MonitoringError

__all__ = [
    "StreamingMoments",
    "P2Quantile",
    "RollingGauge",
    "ReissueThresholdFeed",
]


class StreamingMoments:
    """Welford's numerically stable online mean and variance."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        """Fold one observation in."""
        if not math.isfinite(x):
            raise MonitoringError(f"observation must be finite, got {x}")
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)

    def add_many(self, xs) -> None:
        """Fold a batch in (loops internally; order-independent result
        up to floating point)."""
        for x in np.asarray(xs, dtype=np.float64).ravel():
            self.add(float(x))

    def add_batch(self, xs) -> None:
        """Fold a batch in with O(1) Python work (vectorised).

        Computes the batch's moments with NumPy and Chan-merges them,
        so folding a million-observation chunk costs one reduction
        instead of a million :meth:`add` calls.  The result differs
        from element-wise :meth:`add` only by float rounding (both are
        numerically stable); the streaming simulator's at-scale
        accumulators (:mod:`repro.sim.estimators`) use this entry point.
        """
        arr = np.asarray(xs, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        if not np.all(np.isfinite(arr)):
            raise MonitoringError("batch observations must all be finite")
        batch = StreamingMoments()
        batch._n = int(arr.size)
        batch._mean = float(arr.mean())
        centered = arr - batch._mean
        batch._m2 = float(np.dot(centered, centered))
        self.merge(batch)

    @property
    def n(self) -> int:
        """Number of observations."""
        return self._n

    @property
    def mean(self) -> float:
        """Running mean."""
        if self._n == 0:
            raise MonitoringError("no observations yet")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance (matches ``numpy.var``)."""
        if self._n == 0:
            raise MonitoringError("no observations yet")
        return self._m2 / self._n

    @property
    def scv(self) -> float:
        """Squared coefficient of variation — Eq. 2's C²ₓ."""
        m = self.mean
        if m <= 0:
            raise MonitoringError("scv undefined for non-positive mean")
        return self.variance / (m * m)

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Combine two windows (Chan et al. parallel update)."""
        if other._n == 0:
            return self
        if self._n == 0:
            self._n, self._mean, self._m2 = other._n, other._mean, other._m2
            return self
        n = self._n + other._n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._n * other._n / n
        self._mean += delta * other._n / n
        self._n = n
        return self


class P2Quantile:
    """The P² single-quantile estimator (Jain & Chlamtac, CACM 1985).

    Maintains five markers whose heights track the quantile's position
    using piecewise-parabolic adjustment.  Exact for the first five
    observations; O(1) memory afterwards.

    Parameters
    ----------
    q:
        Target quantile in (0, 1), e.g. ``0.99`` for the paper's tail
        metric.
    """

    def __init__(self, q: float = 0.99) -> None:
        if not 0.0 < q < 1.0:
            raise MonitoringError(f"quantile must be in (0, 1), got {q}")
        self.q = float(q)
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [
            1.0,
            1.0 + 2.0 * q,
            1.0 + 4.0 * q,
            3.0 + 2.0 * q,
            5.0,
        ]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._n = 0

    @property
    def n(self) -> int:
        """Number of observations."""
        return self._n

    def add(self, x: float) -> None:
        """Fold one observation in."""
        if not math.isfinite(x):
            raise MonitoringError(f"observation must be finite, got {x}")
        self._n += 1
        h = self._heights
        if self._n <= 5:
            h.append(float(x))
            h.sort()
            return
        # Locate the cell and bump the marker positions.
        if x < h[0]:
            h[0] = float(x)
            cell = 0
        elif x >= h[4]:
            h[4] = float(x)
            cell = 3
        else:
            cell = 0
            while x >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers.
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            if (d >= 1.0 and self._positions[i + 1] - self._positions[i] > 1.0) or (
                d <= -1.0 and self._positions[i - 1] - self._positions[i] < -1.0
            ):
                sign = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                self._positions[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + sign / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + sign)
            * (h[i + 1] - h[i])
            / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - sign)
            * (h[i] - h[i - 1])
            / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, sign: float) -> float:
        h, p = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (p[j] - p[i])

    def add_many(self, xs) -> None:
        """Fold a batch in."""
        for x in np.asarray(xs, dtype=np.float64).ravel():
            self.add(float(x))

    @property
    def estimate(self) -> float:
        """Current quantile estimate.

        Before five observations have arrived, falls back to the exact
        small-sample quantile.
        """
        if self._n == 0:
            raise MonitoringError("no observations yet")
        if self._n <= 5:
            return float(
                np.percentile(self._heights, self.q * 100.0, method="higher")
            )
        return self._heights[2]


class RollingGauge:
    """Latency gauges over a rolling horizon of scheduling windows.

    The live control plane's monitor phase feeds one ``(p99, mean, n)``
    record per completed window.  The gauge keeps the last ``horizon``
    records exactly (the rolling window a dashboard reads) plus two
    constant-memory cumulative estimators over the whole stream: a
    :class:`P2Quantile` of the per-window p99 series — the incremental
    tail-of-tails a long-running service exposes without ever buffering
    raw latencies — and :class:`StreamingMoments` of the per-window
    means.  Deterministic, RNG-free, and never consulted by the batch
    replay path (bit-identity there is untouched).
    """

    def __init__(self, horizon: int = 60, q: float = 0.99) -> None:
        if horizon < 1:
            raise MonitoringError(f"horizon must be >= 1, got {horizon}")
        self.horizon = int(horizon)
        self._records: deque = deque(maxlen=self.horizon)
        self._p99_tail = P2Quantile(q)
        self._mean_moments = StreamingMoments()
        self._total_requests = 0
        self._windows = 0

    def observe_window(self, p99: float, mean: float, n: int) -> None:
        """Fold one completed window's summary in."""
        if n < 1:
            raise MonitoringError(f"window request count must be >= 1, got {n}")
        if not (math.isfinite(p99) and math.isfinite(mean)):
            raise MonitoringError(
                f"window summaries must be finite, got p99={p99}, mean={mean}"
            )
        self._records.append((float(p99), float(mean), int(n)))
        self._p99_tail.add(float(p99))
        self._mean_moments.add(float(mean))
        self._total_requests += int(n)
        self._windows += 1

    @property
    def windows(self) -> int:
        """Completed windows observed (including rolled-off ones)."""
        return self._windows

    @property
    def total_requests(self) -> int:
        """Requests observed across all windows."""
        return self._total_requests

    @property
    def last(self) -> Optional[Dict[str, float]]:
        """Latest window's record, or ``None`` before the first."""
        if not self._records:
            return None
        p99, mean, n = self._records[-1]
        return {"p99": p99, "mean": mean, "n": float(n)}

    def rolling(self) -> Optional[Dict[str, float]]:
        """Aggregates over the rolling horizon, or ``None`` when empty.

        The rolling mean is request-weighted (each window contributes
        its own traffic), the rolling p99 is the max of the per-window
        p99s — the conservative dashboard convention for "worst tail
        seen recently".
        """
        if not self._records:
            return None
        records: List = list(self._records)
        total = sum(n for _, _, n in records)
        return {
            "p99": max(p99 for p99, _, _ in records),
            "mean": sum(mean * n for _, mean, n in records) / total,
            "windows": float(len(records)),
        }

    @property
    def p99_tail_estimate(self) -> float:
        """P² estimate of the per-window p99 series' own tail."""
        return self._p99_tail.estimate

    @property
    def mean_of_window_means(self) -> float:
        """Cumulative mean of the per-window means (Welford)."""
        return self._mean_moments.mean


class ReissueThresholdFeed:
    """Streaming reissue-timer gauge behind the adaptive routing kernels.

    Implements the narrow ``ThresholdFeed`` protocol the kernel layer
    declares (:class:`repro.baselines.routing.ThresholdFeed` — this
    module deliberately does not import it; the coupling is structural).
    Each window every replica group pushes the own-window percentile
    the fixed kernel would have used; the feed streams a
    :class:`P2Quantile` *median* over those observations, so the
    threshold an adaptive kernel routes with is the cross-window
    consensus rather than any single group's noisy window.  O(1)
    memory, RNG-free, deterministic in observation order.
    """

    def __init__(self, min_observations: int = 1) -> None:
        if min_observations < 1:
            raise MonitoringError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.min_observations = int(min_observations)
        self._median = P2Quantile(0.5)
        self._observations = 0
        self._requests = 0

    def observe_window(self, threshold_s: float, n: int) -> None:
        """Fold one window/group's own-percentile observation in."""
        if n < 1:
            return  # empty windows carry no information
        if not math.isfinite(threshold_s) or threshold_s < 0:
            raise MonitoringError(
                f"threshold observation must be finite and >= 0, "
                f"got {threshold_s}"
            )
        self._median.add(float(threshold_s))
        self._observations += 1
        self._requests += int(n)

    def current_threshold_s(self) -> Optional[float]:
        """The tuned timer, or ``None`` until warmed up."""
        if self._observations < self.min_observations:
            return None
        return float(self._median.estimate)

    @property
    def observations(self) -> int:
        """Per-window/group observations folded in so far."""
        return self._observations

    @property
    def total_requests(self) -> int:
        """Requests behind those observations."""
        return self._requests
