"""Machines (Xen VMs / LinuX Containers) — the placement granules.

In the paper each service component runs inside its own dedicated VM and
batch jobs run in separate VMs on the same node (§I, §VI-B).  A
:class:`Machine` therefore wraps exactly one *resident* program — an
object exposing ``name`` and ``demand`` (a
:class:`~repro.cluster.resources.ResourceVector`) — and nodes count
machines against their slot capacity.
"""

from __future__ import annotations

import enum
from typing import Optional, Protocol, runtime_checkable

from repro.cluster.resources import ResourceVector
from repro.errors import PlacementError

__all__ = ["MachineKind", "Machine", "Resident"]


@runtime_checkable
class Resident(Protocol):
    """Anything that can occupy a machine: a component or a batch job."""

    @property
    def name(self) -> str:  # pragma: no cover - protocol
        ...

    @property
    def demand(self) -> ResourceVector:  # pragma: no cover - protocol
        ...


class MachineKind(enum.Enum):
    """Whether a machine hosts a latency-critical component or batch work."""

    SERVICE = "service"
    BATCH = "batch"


class Machine:
    """A VM/LXC hosting at most one resident program.

    Parameters
    ----------
    name:
        Unique machine identifier (e.g. ``"vm-searching-17"``).
    kind:
        :class:`MachineKind` — service machines host components, batch
        machines host batch jobs.
    """

    __slots__ = ("name", "kind", "_occupant")

    def __init__(self, name: str, kind: MachineKind = MachineKind.SERVICE) -> None:
        if not name:
            raise PlacementError("machine name must be non-empty")
        self.name = name
        self.kind = kind
        self._occupant: Optional[Resident] = None

    @property
    def occupant(self) -> Optional[Resident]:
        """The resident currently running here, or ``None``."""
        return self._occupant

    @property
    def busy(self) -> bool:
        """Whether the machine hosts a resident."""
        return self._occupant is not None

    @property
    def demand(self) -> ResourceVector:
        """The occupant's resource demand (zero when idle)."""
        if self._occupant is None:
            return ResourceVector.zero()
        return self._occupant.demand

    def assign(self, resident: Resident) -> None:
        """Place ``resident`` on this machine.

        Raises :class:`~repro.errors.PlacementError` if already busy.
        """
        if self._occupant is not None:
            raise PlacementError(
                f"machine {self.name} already hosts {self._occupant.name}"
            )
        self._occupant = resident

    def release(self) -> Resident:
        """Evict and return the occupant.

        Raises :class:`~repro.errors.PlacementError` when idle.
        """
        if self._occupant is None:
            raise PlacementError(f"machine {self.name} is idle")
        resident, self._occupant = self._occupant, None
        return resident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        who = self._occupant.name if self._occupant else "<idle>"
        return f"Machine({self.name}, {self.kind.value}, occupant={who})"
