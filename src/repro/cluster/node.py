"""Nodes: physical machines with shared-resource capacities.

A node aggregates the resource demands of its resident programs (service
components and batch jobs) and answers the question the online monitor
asks on real hardware: *what contention does resident X observe from
everything else on this node?* — the contention vector ``U`` of paper
Table II, including the node's own background hardware/software activity
(§II-A: storage-device garbage collection, kernel daemons, maintenance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.cluster.machine import Machine, MachineKind, Resident
from repro.cluster.resources import ResourceVector
from repro.errors import CapacityError, PlacementError

__all__ = ["NodeCapacity", "Node"]


@dataclass(frozen=True)
class NodeCapacity:
    """Capacities of one node, defaulted to the paper's testbed.

    Two 6-core Xeon E5645 processors → 12 cores; 1 GbE network
    (125 MB/s); a SATA-era disk (~300 MB/s aggregate); cache pressure is
    capped at a saturation MPKI beyond which extra co-runners add no
    further misses.
    """

    cores: int = 12
    disk_bw_mbps: float = 300.0
    net_bw_mbps: float = 125.0
    cache_mpki_cap: float = 60.0
    machine_slots: int = 8

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise CapacityError(f"cores must be positive, got {self.cores}")
        if self.disk_bw_mbps <= 0 or self.net_bw_mbps <= 0:
            raise CapacityError("bandwidth capacities must be positive")
        if self.cache_mpki_cap <= 0:
            raise CapacityError("cache_mpki_cap must be positive")
        if self.machine_slots <= 0:
            raise CapacityError("machine_slots must be positive")

    @property
    def vector(self) -> ResourceVector:
        """Saturation levels as a vector (core usage saturates at 1.0)."""
        return ResourceVector(
            core=1.0,
            cache_mpki=self.cache_mpki_cap,
            disk_bw=self.disk_bw_mbps,
            net_bw=self.net_bw_mbps,
        )


@dataclass
class Node:
    """A physical machine hosting VMs for components and batch jobs."""

    name: str
    capacity: NodeCapacity = field(default_factory=NodeCapacity)
    background: ResourceVector = field(default_factory=ResourceVector.zero)
    _machines: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PlacementError("node name must be non-empty")

    # ------------------------------------------------------------------
    # machine management
    # ------------------------------------------------------------------
    @property
    def machines(self) -> tuple[Machine, ...]:
        """All machines on this node, in creation order."""
        return tuple(self._machines.values())

    @property
    def free_slots(self) -> int:
        """Machine slots still available."""
        return self.capacity.machine_slots - len(self._machines)

    def add_machine(
        self, name: str, kind: MachineKind = MachineKind.SERVICE
    ) -> Machine:
        """Create a machine on this node; enforces the slot capacity."""
        if name in self._machines:
            raise PlacementError(f"machine {name} already exists on {self.name}")
        if self.free_slots <= 0:
            raise CapacityError(
                f"node {self.name} has no free machine slots "
                f"({self.capacity.machine_slots} in use)"
            )
        machine = Machine(name, kind)
        self._machines[name] = machine
        return machine

    def remove_machine(self, name: str) -> Machine:
        """Destroy a machine (must be idle)."""
        machine = self._machines.get(name)
        if machine is None:
            raise PlacementError(f"no machine {name} on node {self.name}")
        if machine.busy:
            raise PlacementError(
                f"machine {name} still hosts {machine.occupant.name}"
            )
        return self._machines.pop(name)

    def host(self, resident: Resident, kind: MachineKind) -> Machine:
        """Place ``resident`` on a free machine of ``kind`` (create one if
        a slot is available)."""
        for machine in self._machines.values():
            if machine.kind is kind and not machine.busy:
                machine.assign(resident)
                return machine
        # Names carry a per-node sequence number: machines are reused
        # across residents, so a resident-derived name could collide
        # when a component returns to a node it once left.
        self._machine_seq = getattr(self, "_machine_seq", 0) + 1
        machine = self.add_machine(
            f"{self.name}/{kind.value}-{self._machine_seq}", kind
        )
        machine.assign(resident)
        return machine

    def evict(self, resident: Resident) -> Machine:
        """Remove ``resident`` from whichever machine hosts it."""
        for machine in self._machines.values():
            if machine.occupant is resident:
                machine.release()
                return machine
        raise PlacementError(f"{resident.name} is not hosted on node {self.name}")

    def residents(self) -> Iterator[Resident]:
        """Iterate over all programs currently running on this node."""
        for machine in self._machines.values():
            if machine.busy:
                yield machine.occupant

    def hosts(self, resident: Resident) -> bool:
        """Whether ``resident`` currently runs on this node."""
        return any(m.occupant is resident for m in self._machines.values())

    # ------------------------------------------------------------------
    # contention accounting
    # ------------------------------------------------------------------
    def total_demand(self, exclude: Optional[Resident] = None) -> ResourceVector:
        """Sum of resident demands (optionally excluding one) + background."""
        total = self.background
        for resident in self.residents():
            if resident is exclude:
                continue
            total = total + resident.demand
        return total

    def contention_for(self, resident: Optional[Resident]) -> ResourceVector:
        """Contention vector ``U`` observed by ``resident`` (Table II).

        The sum of all *other* residents' demands plus background
        activity, saturated at the node's capacity vector — co-runners
        cannot jointly use more than 100 % of the cores or more than the
        physical bandwidths.

        Passing ``None`` returns the contention a *newly arriving*
        resident would observe.
        """
        return self.total_demand(exclude=resident).clip(self.capacity.vector)

    def utilisation(self) -> float:
        """Core-usage fraction of the whole node (for placement/tests)."""
        return min(1.0, self.total_demand().core)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node({self.name}, machines={len(self._machines)}/"
            f"{self.capacity.machine_slots})"
        )
