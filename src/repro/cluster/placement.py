"""Initial placement policies.

PCS starts from whatever allocation the provisioning layer produced
(§III: "component-level scheduling is enforced only after the machines
have been allocated to the service"); these helpers produce the starting
allocations used by the experiments — round-robin (the realistic
default), uniform random (worst case for stragglers) and least-loaded
(greedy by current node pressure).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.machine import MachineKind, Resident
from repro.cluster.node import Node
from repro.errors import PlacementError

__all__ = [
    "round_robin_placement",
    "random_placement",
    "least_loaded_placement",
]


def round_robin_placement(
    cluster: Cluster,
    residents: Sequence[Resident],
    kind: MachineKind = MachineKind.SERVICE,
) -> List[Node]:
    """Place residents cyclically over the nodes; returns hosting nodes."""
    nodes = cluster.nodes
    placed = []
    for i, resident in enumerate(residents):
        placed.append(cluster.place(resident, nodes[i % len(nodes)], kind))
    return placed


def random_placement(
    cluster: Cluster,
    residents: Sequence[Resident],
    rng: np.random.Generator,
    kind: MachineKind = MachineKind.SERVICE,
) -> List[Node]:
    """Place residents uniformly at random; returns hosting nodes."""
    nodes = cluster.nodes
    placed = []
    for resident in residents:
        placed.append(cluster.place(resident, nodes[rng.integers(len(nodes))], kind))
    return placed


def least_loaded_placement(
    cluster: Cluster,
    residents: Sequence[Resident],
    kind: MachineKind = MachineKind.SERVICE,
) -> List[Node]:
    """Greedy: each resident goes to the node with the lowest pressure.

    Pressure is the Euclidean norm of the node's total demand vector, so
    the policy balances all four shared resources rather than just CPU.
    """
    placed = []
    for resident in residents:
        candidates = [n for n in cluster.nodes if n.free_slots > 0]
        if not candidates:
            raise PlacementError("no node has a free machine slot")
        target = min(candidates, key=lambda n: n.total_demand().norm())
        placed.append(cluster.place(resident, target, kind))
    return placed
