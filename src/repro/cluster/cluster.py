"""The cluster: a set of nodes plus the component/job placement map.

This is the object the scheduler manipulates: ``migrate()`` implements
the component-node allocation enforcement of Algorithm 1 line 16 (in the
paper via Storm/ZooKeeper deployment APIs; here by moving the resident
between simulated machines).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.cluster.machine import MachineKind, Resident
from repro.cluster.node import Node, NodeCapacity
from repro.cluster.resources import ResourceVector
from repro.errors import PlacementError

__all__ = ["Cluster"]


class Cluster:
    """Nodes indexed by name, plus a resident → node placement map.

    Parameters
    ----------
    nodes:
        The nodes forming the cluster.  Node names must be unique; the
        iteration order defines the node *index* used by the
        performance matrix (columns of ``L``).
    """

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            if node.name in self._nodes:
                raise PlacementError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node
        if not self._nodes:
            raise PlacementError("cluster needs at least one node")
        self._placement: Dict[int, Node] = {}  # id(resident) -> node
        self._residents: Dict[int, Resident] = {}
        self._migrations = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        n_nodes: int,
        capacity: Optional[NodeCapacity] = None,
        name_prefix: str = "node",
    ) -> "Cluster":
        """Build ``n_nodes`` identical nodes named ``node-0 … node-{n-1}``."""
        if n_nodes <= 0:
            raise PlacementError(f"n_nodes must be positive, got {n_nodes}")
        cap = capacity or NodeCapacity()
        return cls(Node(f"{name_prefix}-{i}", capacity=cap) for i in range(n_nodes))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """Nodes in index order (performance-matrix column order)."""
        return list(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        """Node names in index order."""
        return list(self._nodes)

    def node(self, name: str) -> Node:
        """Look a node up by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise PlacementError(f"no node named {name!r}") from None

    def node_index(self, node: Node) -> int:
        """The matrix column index of ``node``."""
        for i, n in enumerate(self._nodes.values()):
            if n is node:
                return i
        raise PlacementError(f"node {node.name} is not part of this cluster")

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(
        self,
        resident: Resident,
        node: Node | str,
        kind: MachineKind = MachineKind.SERVICE,
    ) -> Node:
        """Place a new resident on ``node``; returns the hosting node."""
        target = self.node(node) if isinstance(node, str) else node
        if target.name not in self._nodes:
            raise PlacementError(f"node {target.name} is not part of this cluster")
        if id(resident) in self._placement:
            raise PlacementError(
                f"{resident.name} is already placed on "
                f"{self._placement[id(resident)].name}; use migrate()"
            )
        target.host(resident, kind)
        self._placement[id(resident)] = target
        self._residents[id(resident)] = resident
        return target

    def remove(self, resident: Resident) -> None:
        """Remove ``resident`` from the cluster entirely."""
        node = self._placement.pop(id(resident), None)
        if node is None:
            raise PlacementError(f"{resident.name} is not placed anywhere")
        self._residents.pop(id(resident))
        node.evict(resident)

    def migrate(
        self,
        resident: Resident,
        destination: Node | str,
        kind: MachineKind = MachineKind.SERVICE,
    ) -> Node:
        """Move ``resident`` to ``destination``; returns the origin node.

        A no-op migration (destination == current node) raises, because
        Algorithm 1 never proposes one — the matrix diagonal entries are
        zero and the threshold ε is positive.
        """
        target = self.node(destination) if isinstance(destination, str) else destination
        origin = self._placement.get(id(resident))
        if origin is None:
            raise PlacementError(f"{resident.name} is not placed; use place()")
        if origin is target:
            raise PlacementError(
                f"{resident.name} already runs on {target.name} (no-op migration)"
            )
        origin.evict(resident)
        try:
            target.host(resident, kind)
        except Exception:
            origin.host(resident, kind)  # roll back so state stays consistent
            raise
        self._placement[id(resident)] = target
        self._migrations += 1
        return origin

    def node_of(self, resident: Resident) -> Node:
        """The node currently hosting ``resident``."""
        node = self._placement.get(id(resident))
        if node is None:
            raise PlacementError(f"{resident.name} is not placed anywhere")
        return node

    def residents_on(self, node: Node | str) -> List[Resident]:
        """All placed residents on a node (placement-map view)."""
        target = self.node(node) if isinstance(node, str) else node
        return [
            r for rid, r in self._residents.items()
            if self._placement[rid] is target
        ]

    def placement_indices(self, residents: Sequence[Resident]) -> List[int]:
        """Node index of each resident — the allocation array ``A[m]``
        of Algorithm 1."""
        index_by_id = {id(n): i for i, n in enumerate(self._nodes.values())}
        return [index_by_id[id(self.node_of(r))] for r in residents]

    # ------------------------------------------------------------------
    # contention queries
    # ------------------------------------------------------------------
    def contention_for(self, resident: Resident) -> ResourceVector:
        """Contention vector observed by ``resident`` on its current node."""
        return self.node_of(resident).contention_for(resident)

    def contention_on(
        self, node: Node | str, exclude: Optional[Resident] = None
    ) -> ResourceVector:
        """Contention a (possibly hypothetical) resident would see on a node."""
        target = self.node(node) if isinstance(node, str) else node
        return target.contention_for(exclude)

    @property
    def migrations(self) -> int:
        """Total number of migrations enforced so far."""
        return self._migrations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(nodes={len(self._nodes)}, placed={len(self._placement)})"
