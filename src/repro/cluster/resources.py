"""Shared-resource kinds and contention vectors (paper Table II).

The paper tracks four classes of shared resources and one scalar of
"contention information" per class:

==========================  =====================================
Shared resource             Contention information
==========================  =====================================
processing units/pipelines  ``U_core``   — core usage (fraction)
LLC, ITLB, DTLB             ``U_cache``  — misses per kilo instr.
disk bandwidth              ``U_diskBW`` — MB/s read+write
network bandwidth           ``U_netBW``  — MB/s send+receive
==========================  =====================================

:class:`ResourceVector` is the 4-vector ``U`` used everywhere: as a
program's resource *demand*, as the *contention* a component observes
(sum of co-runners' demands plus node background activity), and as the
additive update quantity of Table III (``U' = U ± U_ci``).

It is an immutable value type backed by a small NumPy array so that the
performance-matrix fast path can stack many of them into ``(m, 4)``
matrices without conversion cost.
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ResourceKind", "RESOURCE_KINDS", "ResourceVector"]


class ResourceKind(enum.Enum):
    """The four shared-resource classes of paper Table II."""

    CORE = "core"
    CACHE = "cache"
    DISK_BW = "diskBW"
    NET_BW = "networkBW"

    @property
    def index(self) -> int:
        """Position of this kind inside a :class:`ResourceVector`."""
        return _KIND_INDEX[self]


RESOURCE_KINDS: tuple[ResourceKind, ...] = (
    ResourceKind.CORE,
    ResourceKind.CACHE,
    ResourceKind.DISK_BW,
    ResourceKind.NET_BW,
)
_KIND_INDEX = {kind: i for i, kind in enumerate(RESOURCE_KINDS)}

N_RESOURCES = len(RESOURCE_KINDS)


class ResourceVector:
    """An immutable 4-vector over :data:`RESOURCE_KINDS`.

    Supports the algebra Table III needs: ``+``, ``-`` (floored at zero
    via :meth:`minus`), scalar ``*``, and comparisons.  Component order
    is ``(core, cache, diskBW, networkBW)``.

    Parameters
    ----------
    core:
        Core usage as a fraction of the node's cores (``0.31`` = 31 %).
    cache_mpki:
        Shared-cache misses per kilo instruction.
    disk_bw:
        Disk read+write bandwidth in MB/s.
    net_bw:
        Network send+receive bandwidth in MB/s.
    """

    __slots__ = ("_data",)

    def __init__(
        self,
        core: float = 0.0,
        cache_mpki: float = 0.0,
        disk_bw: float = 0.0,
        net_bw: float = 0.0,
    ) -> None:
        data = np.array([core, cache_mpki, disk_bw, net_bw], dtype=np.float64)
        if not np.all(np.isfinite(data)):
            raise ConfigurationError(f"resource vector must be finite, got {data}")
        if np.any(data < 0):
            raise ConfigurationError(f"resource vector must be >= 0, got {data}")
        data.flags.writeable = False
        self._data = data

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "ResourceVector":
        """The all-zero vector."""
        return _ZERO

    @classmethod
    def from_array(cls, arr: Iterable[float]) -> "ResourceVector":
        """Build from any length-4 iterable ``(core, cache, disk, net)``."""
        vals = np.asarray(list(arr), dtype=np.float64)
        if vals.shape != (N_RESOURCES,):
            raise ConfigurationError(
                f"expected {N_RESOURCES} entries, got shape {vals.shape}"
            )
        return cls(*vals)

    @classmethod
    def from_mapping(cls, mapping: Mapping[ResourceKind, float]) -> "ResourceVector":
        """Build from a ``{ResourceKind: value}`` mapping (missing = 0)."""
        return cls(
            core=mapping.get(ResourceKind.CORE, 0.0),
            cache_mpki=mapping.get(ResourceKind.CACHE, 0.0),
            disk_bw=mapping.get(ResourceKind.DISK_BW, 0.0),
            net_bw=mapping.get(ResourceKind.NET_BW, 0.0),
        )

    @classmethod
    def sum(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Sum of many vectors (empty sum is zero)."""
        total = np.zeros(N_RESOURCES)
        for v in vectors:
            total += v._data
        return cls(*total)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def core(self) -> float:
        """Core-usage fraction."""
        return float(self._data[0])

    @property
    def cache_mpki(self) -> float:
        """Shared-cache misses per kilo instruction."""
        return float(self._data[1])

    @property
    def disk_bw(self) -> float:
        """Disk bandwidth in MB/s."""
        return float(self._data[2])

    @property
    def net_bw(self) -> float:
        """Network bandwidth in MB/s."""
        return float(self._data[3])

    def __getitem__(self, kind: ResourceKind) -> float:
        return float(self._data[kind.index])

    def as_array(self) -> np.ndarray:
        """Read-only NumPy view ``(core, cache, diskBW, netBW)``."""
        return self._data

    def as_mapping(self) -> dict[ResourceKind, float]:
        """Dict form keyed by :class:`ResourceKind`."""
        return {kind: float(self._data[kind.index]) for kind in RESOURCE_KINDS}

    # ------------------------------------------------------------------
    # algebra (Table III)
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(*(self._data + other._data))

    def minus(self, other: "ResourceVector") -> "ResourceVector":
        """``self - other`` floored at zero per component.

        Table III subtracts a departing component's own demand from the
        contention of remaining residents; the floor guards against
        negative contention from monitor noise.
        """
        return ResourceVector(*np.maximum(self._data - other._data, 0.0))

    def __mul__(self, factor: float) -> "ResourceVector":
        if not isinstance(factor, (int, float, np.floating)):
            return NotImplemented
        if factor < 0:
            raise ConfigurationError(f"cannot scale by negative factor {factor}")
        return ResourceVector(*(self._data * float(factor)))

    __rmul__ = __mul__

    def clip(self, upper: "ResourceVector") -> "ResourceVector":
        """Component-wise ``min(self, upper)`` — saturate at capacity."""
        return ResourceVector(*np.minimum(self._data, upper._data))

    # ------------------------------------------------------------------
    # comparisons / hashing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return bool(np.array_equal(self._data, other._data))

    def __hash__(self) -> int:
        return hash(self._data.tobytes())

    def isclose(self, other: "ResourceVector", rtol=1e-9, atol=1e-12) -> bool:
        """Tolerant comparison for tests."""
        return bool(np.allclose(self._data, other._data, rtol=rtol, atol=atol))

    def norm(self) -> float:
        """Euclidean norm — a crude total-pressure scalar for placement."""
        return float(np.linalg.norm(self._data))

    def __repr__(self) -> str:
        return (
            f"ResourceVector(core={self.core:.3f}, cache_mpki={self.cache_mpki:.3f},"
            f" disk_bw={self.disk_bw:.3f}, net_bw={self.net_bw:.3f})"
        )


_ZERO = ResourceVector()
