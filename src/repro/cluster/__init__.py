"""Cluster substrate: nodes, machines (VMs/LXCs) and shared resources.

Models the paper's experiment platform (§VI-A: 30 nodes, two 6-core Xeon
E5645 processors each, 1 GbE, Xen VMs) at the level of detail PCS
consumes: each node has capacities for the four shared-resource classes
of Table II (processing units, shared caches, disk bandwidth, network
bandwidth), hosts a bounded number of machines, and exposes, for every
resident program, the *contention vector* ``U`` imposed by its
co-runners plus the node's own hardware/software background activity
(§II-A).
"""

from repro.cluster.cluster import Cluster
from repro.cluster.machine import Machine, MachineKind
from repro.cluster.node import Node, NodeCapacity
from repro.cluster.placement import (
    least_loaded_placement,
    random_placement,
    round_robin_placement,
)
from repro.cluster.resources import (
    RESOURCE_KINDS,
    ResourceKind,
    ResourceVector,
)

__all__ = [
    "ResourceKind",
    "RESOURCE_KINDS",
    "ResourceVector",
    "Machine",
    "MachineKind",
    "Node",
    "NodeCapacity",
    "Cluster",
    "round_robin_placement",
    "random_placement",
    "least_loaded_placement",
]
