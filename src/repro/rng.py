"""Named, reproducible random-number streams.

Every stochastic part of the simulator (batch-job churn, service-time
noise, monitor sampling noise, request arrivals, ...) draws from its own
named :class:`numpy.random.Generator` stream.  Streams are derived from a
single root seed with :class:`numpy.random.SeedSequence` spawning keyed
by a stable hash of the stream name, so

* two runs with the same root seed are bit-identical,
* adding a *new* stream never perturbs existing ones, and
* parallel subsystems cannot accidentally share a generator.

This mirrors the common MPI/HPC practice of per-rank independent
streams (cf. the mpi4py guide): independence comes from the seed
derivation, not from luck.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterator

import numpy as np

__all__ = ["RngRegistry", "stable_name_key"]


def stable_name_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer key.

    Uses BLAKE2 rather than :func:`hash` because the latter is salted
    per process and would break cross-run reproducibility.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RngRegistry:
    """A registry of named random streams derived from one root seed.

    Parameters
    ----------
    seed:
        Root seed.  Identical seeds yield identical streams for
        identical names, regardless of creation order.

    Examples
    --------
    >>> rngs = RngRegistry(seed=7)
    >>> arrivals = rngs.get("service.arrivals")
    >>> noise = rngs.get("monitor.noise")
    >>> arrivals is rngs.get("service.arrivals")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if not name:
            raise ValueError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(stable_name_key(name),)
            )
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str, index: int) -> np.random.Generator:
        """Return an indexed sub-stream, e.g. one per component replica.

        ``fork("comp", 3)`` is equivalent to ``get("comp[3]")`` but makes
        the intent explicit at call sites that loop over entities.
        """
        if index < 0:
            raise ValueError(f"fork index must be >= 0, got {index}")
        return self.get(f"{name}[{index}]")

    def names(self) -> Iterator[str]:
        """Iterate over the names of the streams created so far."""
        return iter(sorted(self._streams))

    def reset(self) -> None:
        """Drop all streams; subsequent ``get`` calls restart each stream."""
        self._streams.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
