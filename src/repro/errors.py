"""Exception hierarchy for the PCS reproduction.

Every error raised by this package derives from :class:`ReproError`, so a
downstream caller can catch the whole family with one ``except`` clause.
Subclasses are grouped by the subsystem that raises them; modules should
raise the most specific class that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value or combination of values."""


class SimulationError(ReproError):
    """A violation of the discrete-event simulation contract.

    Raised, e.g., when an event is scheduled in the past or the engine is
    driven after it has been stopped.
    """


class TopologyError(ReproError, ValueError):
    """An invalid service topology (empty stages, duplicate components...)."""


class PlacementError(ReproError):
    """An invalid component/job placement request on the cluster."""


class CapacityError(PlacementError):
    """A placement that would exceed a node's machine slots."""


class ModelError(ReproError):
    """A performance-model failure (untrained model, singular fit...)."""


class NotFittedError(ModelError):
    """A regression model was used before :meth:`fit` was called."""


class UnstableQueueError(ModelError, ValueError):
    """A queueing computation was requested for utilisation >= 1.

    The M/G/1 expected-latency formula (paper Eq. 2) diverges as the
    server utilisation ``rho`` approaches 1; callers that can tolerate
    saturation should clip the arrival rate instead of catching this.
    """


class SchedulingError(ReproError):
    """An error inside the component-level scheduling algorithm."""


class MonitoringError(ReproError):
    """An error in the online monitor (e.g. empty sampling window)."""


class WorkloadError(ReproError, ValueError):
    """An invalid batch-workload specification."""


class ExperimentError(ReproError):
    """A failure while driving one of the paper's experiments."""


class SweepCacheError(ExperimentError):
    """An error in the on-disk sweep cache / provenance layer."""

    def __init__(self, message: str, path=None) -> None:
        super().__init__(message)
        #: Filesystem path of the offending cache file, when known.
        self.path = path


class CacheCorruptionError(SweepCacheError):
    """A cache file holds truncated or garbage content.

    Raised instead of a bare :class:`json.JSONDecodeError` so the
    message (and the ``path`` attribute) identify the offending file.
    A half-written file cannot be produced by an interrupted sweep —
    point files are written atomically — so corruption indicates real
    external damage and is never silently recomputed over.
    """


class StaleManifestError(SweepCacheError):
    """A ``manifest.json`` was written under a different schema version."""
