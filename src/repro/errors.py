"""Exception hierarchy for the PCS reproduction.

Every error raised by this package derives from :class:`ReproError`, so a
downstream caller can catch the whole family with one ``except`` clause.
Subclasses are grouped by the subsystem that raises them; modules should
raise the most specific class that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value or combination of values."""


class SimulationError(ReproError):
    """A violation of the discrete-event simulation contract.

    Raised, e.g., when an event is scheduled in the past or the engine is
    driven after it has been stopped.
    """


class TopologyError(ReproError, ValueError):
    """An invalid service topology (empty stages, duplicate components...)."""


class PlacementError(ReproError):
    """An invalid component/job placement request on the cluster."""


class CapacityError(PlacementError):
    """A placement that would exceed a node's machine slots."""


class ModelError(ReproError):
    """A performance-model failure (untrained model, singular fit...)."""


class NotFittedError(ModelError):
    """A regression model was used before :meth:`fit` was called."""


class UnstableQueueError(ModelError, ValueError):
    """A queueing computation was requested for utilisation >= 1.

    The M/G/1 expected-latency formula (paper Eq. 2) diverges as the
    server utilisation ``rho`` approaches 1; callers that can tolerate
    saturation should clip the arrival rate instead of catching this.
    """


class SchedulingError(ReproError):
    """An error inside the component-level scheduling algorithm."""


class MonitoringError(ReproError):
    """An error in the online monitor (e.g. empty sampling window)."""


class EstimatorError(ReproError):
    """A misuse of the streaming latency-estimator layer.

    Raised by :mod:`repro.sim.estimators` when an accumulator is asked
    for something its mode cannot honestly provide — e.g. merging P²
    marker states (which are not mergeable) or summarising an empty
    stream.
    """


class WorkloadError(ReproError, ValueError):
    """An invalid batch-workload specification."""


class ExperimentError(ReproError):
    """A failure while driving one of the paper's experiments."""


class ControlPlaneError(ExperimentError):
    """An error in the control-plane loop or the live service mode.

    Raised by :mod:`repro.controlplane` for contract violations the
    caller must see: driving a window whose clock cannot reach it, a
    live-mode sweep request naming an unknown scenario or policy, or a
    control-surface shutdown race.  Derives from
    :class:`ExperimentError` because the control loop *is* the
    experiment loop — existing ``except ExperimentError`` call sites
    keep working.
    """


class WorkerTaskError(ExperimentError):
    """A task shipped to an execution backend raised inside its worker.

    Carries the zero-based ``index`` of the failing task so the caller
    can map it back to the submitted item.  Picklable across process
    boundaries (chunked process workers raise it remotely), which is
    why the original exception survives only as text in the message —
    ``__cause__`` does not cross a pickle.
    """

    def __init__(self, message: str, index=None) -> None:
        super().__init__(message)
        #: Zero-based index of the failing task in the submitted batch.
        self.index = index

    def __reduce__(self):
        # Default exception pickling replays ``args`` only; preserve
        # ``index`` so a remote (spawn-worker) failure keeps its
        # coordinates after the round-trip.
        return (type(self), (self.args[0], self.index))


class SpoolError(ExperimentError):
    """An error in the distributed sweep spool (job/claim/result protocol).

    Raised by :mod:`repro.sim.distributed` for protocol violations the
    caller must see: a spool directory written under a different schema
    version, an undecodable job/result payload, or a coordinator that
    waited past its deadline for live workers.  Transient races (a job
    claimed by a faster worker, a result file not yet visible) are part
    of normal operation and never raise.
    """

    def __init__(self, message: str, path=None) -> None:
        super().__init__(message)
        #: Filesystem path of the offending spool file, when known.
        self.path = path


class SweepExecutionError(ExperimentError):
    """A sweep point's evaluation failed.

    Raised by :meth:`~repro.sim.sweep.ParallelSweepRunner.run` instead
    of the worker's raw exception so the failing grid cell is named;
    the coordinates ride along as attributes.  Points that finished
    before the failure stay cached — rerunning after a fix resumes
    instead of recomputing.
    """

    def __init__(
        self, message: str, policy=None, arrival_rate=None, seed=None
    ) -> None:
        super().__init__(message)
        #: Legend name of the failing point's policy, when known.
        self.policy = policy
        #: Arrival rate (req/s) of the failing point, when known.
        self.arrival_rate = arrival_rate
        #: Root seed of the failing point, when known.
        self.seed = seed


class SweepLookupError(ExperimentError, KeyError):
    """A :meth:`~repro.sim.sweep.SweepResult.get` lookup missed.

    The message lists the grid's available policy/rate/seed coordinates
    so a typo is visible without dumping the whole result object.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return Exception.__str__(self)


class SweepCacheError(ExperimentError):
    """An error in the on-disk sweep cache / provenance layer."""

    def __init__(self, message: str, path=None) -> None:
        super().__init__(message)
        #: Filesystem path of the offending cache file, when known.
        self.path = path


class CacheCorruptionError(SweepCacheError):
    """A cache file holds truncated or garbage content.

    Raised instead of a bare :class:`json.JSONDecodeError` so the
    message (and the ``path`` attribute) identify the offending file.
    A half-written file cannot be produced by an interrupted sweep —
    point files are written atomically — so corruption indicates real
    external damage and is never silently recomputed over.
    """


class StaleManifestError(SweepCacheError):
    """A ``manifest.json`` was written under a different schema version."""
