"""Routing kernels: the per-group sub-request mechanics of each policy.

A :class:`RoutingKernel` is the *mechanism* half of a policy: given one
replica group's arrival stream and the group's current service-time
distributions, it decides which replica(s) execute each sub-request and
returns the resulting per-request group latency, recording per-component
sojourn and executed-service samples along the way.  The *descriptor*
half (name, load multiplier, scheduler coupling) stays in
:mod:`repro.baselines.policies`, which registers one kernel factory next
to each policy descriptor.

The simulator (:mod:`repro.sim.queue_sim`) dispatches through
:func:`routing_kernel_for` only — it never inspects policy types — so a
new routing discipline plugs in by defining a kernel here (or anywhere)
and registering it for its policy class; the simulator is untouched.

Kernels are stateless across groups and intervals: all randomness comes
from the caller's generator, and the sample paths are exactly the ones
the pre-kernel simulator produced (pinned bit-for-bit by
``tests/baselines/test_routing_kernels.py``).

Mechanics (see the paper's §VI-C descriptions)
----------------------------------------------
:class:`RandomSplitKernel` (Basic / PCS)
    each sub-request goes to one uniformly chosen replica (random
    splitting keeps per-replica arrivals Poisson, matching the M/G/1
    model the predictor uses).

:class:`RedundancyKernel` (RED-k)
    each sub-request is executed on ``k`` replicas simultaneously; the
    quickest wins.  Cancellation is *imperfect*: when one copy begins
    execution a cancel message is sent, but copies that started within
    the message delay of each other both execute, and messages in
    flight don't stop a copy that is about to start.  Modelled with a
    two-pass scheme — pass 1 computes uncancelled sample paths and
    start times (a copy is cancelled iff some sibling started more than
    ``cancel_delay_s`` before this copy would start); pass 2 re-runs
    the queues with cancelled copies consuming zero service time.

:class:`ReissueKernel` (RI-p)
    a sub-request goes to its primary replica; if it has not finished
    after the p-th percentile of the expected latency for its class, a
    secondary copy is sent to the next replica.  Pass 1 determines who
    reissues; pass 2 re-runs every replica with the merged
    primary+secondary arrival streams.

:class:`HedgedKernel` (Hedge)
    like reissue, but the backup fires after a *fixed* delay instead of
    an adaptive percentile — the classic hedged/tied-request discipline
    (The Tail at Scale).  Implemented as a :class:`ReissueKernel`
    subclass overriding only the threshold rule, which is exactly the
    extension seam the kernel layer exists for.

:class:`AdaptiveReissueKernel` / :class:`AdaptiveHedgeKernel` (ARI-p / AHedge)
    the same two-pass mechanics, but the timer is tuned *online*: each
    window the kernel pushes its own-window percentile observation into
    a :class:`ThresholdFeed` (the monitor's streaming-quantile gauge,
    :class:`repro.monitoring.streaming.ReissueThresholdFeed`) and
    routes with the feed's cross-window estimate instead of the noisy
    own-window value.  With no feed bound they degrade exactly to
    their fixed counterparts.

Besides latencies, every kernel *reports* its realized duplicate
executions per call (:class:`RoutingOutcome.duplicates`) — the extra
copies that actually consumed service time, i.e. redundancy copies that
escaped cancellation and reissued/hedged secondaries.  This is
bookkeeping on arrays the kernels already compute; no RNG draw is
added, so pre-existing sample paths stay pinned bit for bit.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Protocol

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.service.topology import ReplicaGroup
from repro.simcore.distributions import Distribution
from repro.simcore.lindley import LindleyCarry, lindley_waits, lindley_waits_chunked

__all__ = [
    "RoutingKernel",
    "RoutingOutcome",
    "ThresholdFeed",
    "GroupDraws",
    "RandomSplitKernel",
    "RedundancyKernel",
    "ReissueKernel",
    "HedgedKernel",
    "AdaptiveReissueKernel",
    "AdaptiveHedgeKernel",
    "register_routing_kernel",
    "routing_kernel_for",
    "registered_kernel_types",
]


class ThresholdFeed(Protocol):
    """What an adaptive kernel needs from the monitor's streaming gauges.

    Deliberately narrow — one write, one read — so the kernel layer
    depends on a shape, not on :mod:`repro.monitoring`.  The concrete
    implementation is
    :class:`repro.monitoring.streaming.ReissueThresholdFeed`, a P²
    streaming quantile over the per-window threshold observations.
    """

    def observe_window(self, threshold_s: float, n: int) -> None:
        """Record one window's own-percentile observation over ``n`` requests."""

    def current_threshold_s(self) -> Optional[float]:
        """The tuned threshold, or ``None`` until the feed has warmed up."""


@dataclass(frozen=True)
class RoutingOutcome:
    """One :meth:`RoutingKernel.route_group_outcome` call's result.

    ``duplicates`` counts the *realized* extra executed copies beyond
    one per sub-request: redundancy copies that escaped cancellation
    and reissue/hedge secondaries actually sent.  The policy-induced
    load the predictor models (:class:`repro.baselines.policies
    .InducedLoad`) predicts exactly this quantity.
    """

    latencies: np.ndarray
    duplicates: int = 0


def _primary_choice(
    n: int, n_replicas: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform-random primary per request.

    Random splitting keeps each replica's arrival process Poisson (the
    M in Eq. 2's M/G/1); deterministic round-robin would thin the
    stream into more-regular Erlang interarrivals and understate
    queueing relative to the paper's model.
    """
    if n_replicas == 1:
        return np.zeros(n, dtype=np.int64)
    return rng.integers(0, n_replicas, n)


@dataclass
class GroupDraws:
    """Pre-drawn randomness for one replica group's whole interval.

    The exact chunked simulator cannot draw per chunk — the legacy
    single-pass draw *order* (primary choices, then each replica's
    service samples, group by group) is pinned by the golden sample
    paths, and per-chunk draws would interleave differently.  So it
    draws everything up front in exactly the legacy call order
    (:meth:`RandomSplitKernel.predraw_group`) and each chunk consumes
    consecutive slices via the cursors here.  O(interval) buffers — the
    exact chunked path trades no memory for its bit-identity guarantee;
    the O(chunk)-memory path is the streaming one, which re-draws per
    chunk from a documented different (still seeded) stream.
    """

    primary: np.ndarray
    samples: List[np.ndarray]
    _primary_cursor: int = 0
    _sample_cursors: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._sample_cursors:
            self._sample_cursors = [0] * len(self.samples)

    def next_primary(self, count: int) -> np.ndarray:
        """The next ``count`` primary-replica choices."""
        start = self._primary_cursor
        self._primary_cursor = start + count
        return self.primary[start : start + count]

    def next_samples(self, replica: int, count: int) -> np.ndarray:
        """The next ``count`` service samples for ``replica``."""
        start = self._sample_cursors[replica]
        self._sample_cursors[replica] = start + count
        return self.samples[replica][start : start + count]


class RoutingKernel(ABC):
    """How one replica group serves one interval's sub-requests."""

    #: Whether this kernel can serve an interval in request chunks.
    #: Chunking needs the group's sample path to be computable left to
    #: right with per-component queue carry-over; kernels with
    #: interval-global coupling (redundancy's sibling cancellation,
    #: reissue's own-interval percentile threshold) cannot, and the
    #: simulator falls back to the monolithic path for them.
    supports_chunking: bool = False

    @abstractmethod
    def route_group(
        self,
        arrivals: np.ndarray,
        group: ReplicaGroup,
        dists: Mapping[str, Distribution],
        rng: np.random.Generator,
        sojourns: Dict[str, List[np.ndarray]],
        services: Dict[str, List[np.ndarray]],
        scale: "np.ndarray | None" = None,
        carries: "Optional[Dict[str, LindleyCarry]]" = None,
    ) -> np.ndarray:
        """Serve ``arrivals`` on ``group``; return per-request latency.

        Appends each component's sub-request sojourns (metric 1: the
        quickest copy's latency, attributed to the winning replica) to
        ``sojourns[name]`` and its *executed* service samples to
        ``services[name]``.

        ``scale`` (aligned with ``arrivals``) multiplies each request's
        sampled service times — the mixed-class simulator's per-class
        service scaling.  ``None`` (the default, and the only value
        single-class runs pass) leaves every sample untouched, and the
        underlying draws are identical either way, so pre-class sample
        paths are preserved bit for bit.

        ``carries`` (chunk-capable kernels only) threads each
        component's :class:`~repro.simcore.lindley.LindleyCarry` across
        successive calls, so ``arrivals`` may be one chunk of a longer
        stream; kernels that cannot chunk raise if it is passed.
        """

    def route_group_outcome(
        self,
        arrivals: np.ndarray,
        group: ReplicaGroup,
        dists: Mapping[str, Distribution],
        rng: np.random.Generator,
        sojourns: Dict[str, List[np.ndarray]],
        services: Dict[str, List[np.ndarray]],
        scale: "np.ndarray | None" = None,
        carries: "Optional[Dict[str, LindleyCarry]]" = None,
    ) -> RoutingOutcome:
        """:meth:`route_group` plus realized duplicate accounting.

        The default wraps :meth:`route_group` with ``duplicates=0`` —
        correct for every single-copy kernel, and what third-party
        kernels implementing only :meth:`route_group` inherit.
        Duplicate-producing kernels override this with their real body
        (and implement :meth:`route_group` as the ``.latencies``
        projection), so both entry points share one sample path.
        """
        return RoutingOutcome(
            self.route_group(
                arrivals, group, dists, rng, sojourns, services, scale,
                carries,
            ),
            0,
        )

    def bind_threshold_feed(self, feed: ThresholdFeed) -> "RoutingKernel":
        """Return a kernel wired to ``feed``; non-adaptive kernels are
        feed-blind and return themselves unchanged."""
        return self


@dataclass(frozen=True)
class RandomSplitKernel(RoutingKernel):
    """One uniformly chosen replica per sub-request (Basic / PCS)."""

    supports_chunking = True

    def route_group(
        self, arrivals, group, dists, rng, sojourns, services, scale=None,
        carries=None,
    ) -> np.ndarray:
        n = arrivals.size
        r_count = group.n_replicas
        primary = _primary_choice(n, r_count, rng)
        group_lat = np.empty(n)
        for r, comp in enumerate(group.components):
            mask = primary == r
            t = arrivals[mask]
            s = np.asarray(dists[comp.name].sample(rng, t.size), dtype=np.float64)
            if scale is not None:
                s = s * scale[mask]
            if carries is None:
                w = lindley_waits(t, s, validate=False)
            else:
                w, carries[comp.name] = lindley_waits_chunked(
                    t, s, carries.get(comp.name), validate=False
                )
            soj = w + s
            group_lat[mask] = soj
            sojourns[comp.name].append(soj)
            services[comp.name].append(s)
        return group_lat

    def predraw_group(
        self,
        n_sub: int,
        group: ReplicaGroup,
        dists: Mapping[str, Distribution],
        rng: np.random.Generator,
    ) -> GroupDraws:
        """Draw the whole interval's randomness in the legacy order.

        One ``_primary_choice`` call, then one ``sample`` call per
        replica sized by its primary count — call-for-call the draws
        :meth:`route_group` makes, so the values (and every RNG
        consumer after this group) are bit-identical to the monolithic
        pass whatever chunk size later slices them.
        """
        primary = _primary_choice(n_sub, group.n_replicas, rng)
        samples = []
        for r, comp in enumerate(group.components):
            count = int(np.count_nonzero(primary == r))
            samples.append(
                np.asarray(dists[comp.name].sample(rng, count), dtype=np.float64)
            )
        return GroupDraws(primary, samples)

    def route_chunk(
        self,
        arrivals: np.ndarray,
        group: ReplicaGroup,
        draws: GroupDraws,
        scale: "np.ndarray | None",
        sojourns: Dict[str, List[np.ndarray]],
        services: Dict[str, List[np.ndarray]],
        carries: Dict[str, LindleyCarry],
    ) -> np.ndarray:
        """Serve one chunk from pre-drawn randomness with queue carry."""
        m = arrivals.size
        primary = draws.next_primary(m)
        group_lat = np.empty(m)
        for r, comp in enumerate(group.components):
            mask = primary == r
            t = arrivals[mask]
            s = draws.next_samples(r, t.size)
            if scale is not None:
                s = s * scale[mask]
            w, carries[comp.name] = lindley_waits_chunked(
                t, s, carries.get(comp.name), validate=False
            )
            soj = w + s
            group_lat[mask] = soj
            sojourns[comp.name].append(soj)
            services[comp.name].append(s)
        return group_lat


@dataclass(frozen=True)
class RedundancyKernel(RoutingKernel):
    """``replicas`` simultaneous copies with imperfect cancellation."""

    replicas: int
    cancel_delay_s: float

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError(
                f"redundancy needs >= 1 copies, got {self.replicas}"
            )
        if self.cancel_delay_s < 0:
            raise ConfigurationError("cancel_delay_s must be >= 0")

    def route_group(
        self, arrivals, group, dists, rng, sojourns, services, scale=None,
        carries=None,
    ) -> np.ndarray:
        return self.route_group_outcome(
            arrivals, group, dists, rng, sojourns, services, scale, carries
        ).latencies

    def route_group_outcome(
        self, arrivals, group, dists, rng, sojourns, services, scale=None,
        carries=None,
    ) -> RoutingOutcome:
        if carries is not None:
            raise SimulationError(
                "RedundancyKernel cannot chunk: sibling cancellation "
                "couples the whole interval"
            )
        n = arrivals.size
        r_count = group.n_replicas
        k = min(self.replicas, r_count)
        if k == 1 or n == 0:
            return RoutingOutcome(
                RandomSplitKernel().route_group(
                    arrivals, group, dists, rng, sojourns, services, scale
                ),
                0,
            )
        primary = _primary_choice(n, r_count, rng)
        # copy c of request i runs on replica (primary[i] + c) % r_count.
        starts = np.full((k, n), np.inf)
        svc = np.zeros((k, n))
        replica_req: Dict[int, np.ndarray] = {}
        replica_copy: Dict[int, np.ndarray] = {}
        for r in range(r_count):
            copy_idx = (r - primary) % r_count
            mask = copy_idx < k
            req_ids = np.flatnonzero(mask)
            if req_ids.size == 0:
                continue
            t = arrivals[req_ids]
            s = np.asarray(dists[group.components[r].name].sample(rng, t.size))
            if scale is not None:
                s = s * scale[req_ids]
            w = lindley_waits(t, s, validate=False)
            c = copy_idx[req_ids]
            starts[c, req_ids] = t + w
            svc[c, req_ids] = s
            replica_req[r] = req_ids
            replica_copy[r] = c
        # Imperfect cancellation: a copy dies iff a sibling began execution
        # more than the message delay before this copy would start.
        first_start = starts.min(axis=0)
        cancelled = starts > first_start + self.cancel_delay_s
        # Pass 2: cancelled copies consume no service time.
        svc2 = np.where(cancelled, 0.0, svc)
        finish = np.full((k, n), np.inf)
        for r, req_ids in replica_req.items():
            t = arrivals[req_ids]
            c = replica_copy[r]
            s2 = svc2[c, req_ids]
            w2 = lindley_waits(t, s2, validate=False)
            finish[c, req_ids] = t + w2 + s2
            live = ~cancelled[c, req_ids]
            # Executed work only — cancelled copies never ran.
            services[group.components[r].name].append(s2[live])
        finish = np.where(cancelled, np.inf, finish)
        winner_copy = np.argmin(finish, axis=0)
        group_lat = finish[winner_copy, np.arange(n)] - arrivals
        # Metric 1 records the quickest replica's latency per sub-request,
        # attributed to the winning component.
        winner_replica = (primary + winner_copy) % r_count
        for r, comp in enumerate(group.components):
            won = winner_replica == r
            if won.any():
                sojourns[comp.name].append(group_lat[won])
        # Realized duplicates: copies that escaped cancellation and
        # consumed service time, beyond the one execution per request.
        duplicates = int(k * n - np.count_nonzero(cancelled) - n)
        return RoutingOutcome(group_lat, duplicates)


@dataclass(frozen=True)
class ReissueKernel(RoutingKernel):
    """Conditional backup copy once the primary overstays a threshold."""

    quantile: float

    def __post_init__(self) -> None:
        if not 0 < self.quantile < 1:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )

    def _threshold(self, soj1: np.ndarray, n: int) -> float:
        """The reissue timer: p-th percentile of the interval's own
        primary sojourns (the real system's per-class latency estimate).

        Policy-internal timer, not a reported metric: the real system's
        timer interpolates its latency estimate, so this intentionally
        stays raw np.percentile rather than the nearest-rank kernel in
        repro.sim.metrics.
        """
        return float(np.percentile(soj1, self.quantile * 100.0)) if n else 0.0

    def route_group(
        self, arrivals, group, dists, rng, sojourns, services, scale=None,
        carries=None,
    ) -> np.ndarray:
        return self.route_group_outcome(
            arrivals, group, dists, rng, sojourns, services, scale, carries
        ).latencies

    def route_group_outcome(
        self, arrivals, group, dists, rng, sojourns, services, scale=None,
        carries=None,
    ) -> RoutingOutcome:
        if carries is not None:
            raise SimulationError(
                "ReissueKernel cannot chunk: its reissue timer is a "
                "percentile of the whole interval's primary sojourns"
            )
        n = arrivals.size
        r_count = group.n_replicas
        if r_count == 1 or n == 0:
            return RoutingOutcome(
                RandomSplitKernel().route_group(
                    arrivals, group, dists, rng, sojourns, services, scale
                ),
                0,
            )
        primary = _primary_choice(n, r_count, rng)
        # Pass 1: primary-only sample paths give each request's would-be
        # latency and set the reissue threshold.
        soj1 = np.empty(n)
        svc1 = np.empty(n)
        for r, comp in enumerate(group.components):
            mask = primary == r
            t = arrivals[mask]
            s = np.asarray(dists[comp.name].sample(rng, t.size))
            if scale is not None:
                s = s * scale[mask]
            soj1[mask] = lindley_waits(t, s, validate=False) + s
            svc1[mask] = s
        threshold = self._threshold(soj1, n)
        reissue = soj1 > threshold
        secondary_replica = (primary + 1) % r_count
        soj2 = np.empty(n)
        sec_soj = np.full(n, np.inf)
        for r, comp in enumerate(group.components):
            p_mask = primary == r
            s_mask = reissue & (secondary_replica == r)
            t_p = arrivals[p_mask]
            t_s = arrivals[s_mask] + threshold
            s_p = svc1[p_mask]
            s_s = np.asarray(dists[comp.name].sample(rng, int(s_mask.sum())))
            if scale is not None:
                s_s = s_s * scale[s_mask]
            # Merge primary and secondary streams in arrival order.
            t_all = np.concatenate([t_p, t_s])
            s_all = np.concatenate([s_p, s_s])
            order = np.argsort(t_all, kind="stable")
            w_all = lindley_waits(t_all[order], s_all[order], validate=False)
            soj_all = np.empty_like(w_all)
            soj_all[...] = w_all + s_all[order]
            # Un-permute back to primary/secondary slots.
            unsorted = np.empty_like(soj_all)
            unsorted[order] = soj_all
            soj2[p_mask] = unsorted[: t_p.size]
            sec_soj[s_mask] = unsorted[t_p.size :]
            services[comp.name].append(s_all)
        with np.errstate(invalid="ignore"):
            reissued_lat = np.minimum(soj2, threshold + sec_soj)
        group_lat = np.where(reissue, reissued_lat, soj2)
        # Metric 1: quickest copy per sub-request, attributed to its component.
        primary_won = ~reissue | (soj2 <= threshold + sec_soj)
        for r, comp in enumerate(group.components):
            won_primary = (primary == r) & primary_won
            won_secondary = (secondary_replica == r) & reissue & ~primary_won
            won = won_primary | won_secondary
            if won.any():
                sojourns[comp.name].append(group_lat[won])
        # Every reissued request executed its secondary to completion —
        # the realized duplicate count is exactly the reissue count.
        return RoutingOutcome(group_lat, int(np.count_nonzero(reissue)))


@dataclass(frozen=True)
class HedgedKernel(ReissueKernel):
    """Fixed-delay hedging: the backup fires after ``hedge_delay_s``.

    Inherits the two-pass reissue mechanics wholesale; only the timer
    rule differs, so the whole policy is these few lines.
    """

    quantile: float = 0.5  # unused; kept for the frozen base layout
    hedge_delay_s: float = 0.010

    def __post_init__(self) -> None:
        if self.hedge_delay_s <= 0:
            raise ConfigurationError(
                f"hedge_delay_s must be positive, got {self.hedge_delay_s}"
            )

    def _threshold(self, soj1: np.ndarray, n: int) -> float:
        return float(self.hedge_delay_s)


@dataclass(frozen=True)
class AdaptiveReissueKernel(ReissueKernel):
    """Reissue whose timer is tuned online from the monitor's gauges.

    Each call computes the own-window percentile the fixed kernel would
    have used, pushes it into the bound :class:`ThresholdFeed`, and
    routes with the feed's streaming cross-window estimate instead —
    a stabler timer than any single noisy window, re-tuned every
    window.  Unbound (``feed is None``, e.g. a bare kernel test) it is
    behaviour-identical to :class:`ReissueKernel`.
    """

    feed: Optional[ThresholdFeed] = None

    def bind_threshold_feed(self, feed: ThresholdFeed) -> "AdaptiveReissueKernel":
        return dataclasses.replace(self, feed=feed)

    def _threshold(self, soj1: np.ndarray, n: int) -> float:
        own = super()._threshold(soj1, n)
        if self.feed is None:
            return own
        tuned = self.feed.current_threshold_s()
        if n:
            self.feed.observe_window(own, n)
        return own if tuned is None else float(tuned)


@dataclass(frozen=True)
class AdaptiveHedgeKernel(HedgedKernel):
    """Hedging whose delay tracks an observed latency quantile.

    The fixed :class:`HedgedKernel` fires backups after a configured
    delay whatever the load; here ``hedge_delay_s`` is only the
    cold-start value, and once the bound :class:`ThresholdFeed` warms
    up the delay follows the streamed ``quantile``-th percentile of
    observed group latencies — the Tail-at-Scale recommendation of
    hedging at "the 95th-percentile expected latency", kept current
    window over window.
    """

    quantile: float = 0.95  # the tracked latency quantile (used here)
    feed: Optional[ThresholdFeed] = None

    def bind_threshold_feed(self, feed: ThresholdFeed) -> "AdaptiveHedgeKernel":
        return dataclasses.replace(self, feed=feed)

    def _threshold(self, soj1: np.ndarray, n: int) -> float:
        if self.feed is None:
            return float(self.hedge_delay_s)
        tuned = self.feed.current_threshold_s()
        if n:
            # The percentile observation reuses the one sanctioned
            # raw-percentile site (ReissueKernel._threshold).
            self.feed.observe_window(ReissueKernel._threshold(self, soj1, n), n)
        return float(self.hedge_delay_s) if tuned is None else float(tuned)


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
#: Policy class -> kernel factory.  Resolution walks the policy's MRO,
#: so a subclass without its own registration inherits its parent's
#: kernel (PCSPolicy routes like the Policy base: random split).
_KERNEL_FACTORIES: Dict[type, Callable[[object], RoutingKernel]] = {}


def register_routing_kernel(
    policy_type: type, factory: Callable[[object], RoutingKernel]
) -> None:
    """Register ``factory(policy) -> RoutingKernel`` for a policy class.

    Called next to each descriptor in :mod:`repro.baselines.policies`;
    third-party policies register the same way.  Re-registering a class
    replaces its factory (latest wins), so tests can shadow built-ins.
    """
    if not isinstance(policy_type, type):
        raise ConfigurationError(
            f"policy_type must be a class, got {policy_type!r}"
        )
    _KERNEL_FACTORIES[policy_type] = factory


def routing_kernel_for(policy) -> RoutingKernel:
    """The routing kernel for ``policy`` (most-specific class wins)."""
    for klass in type(policy).__mro__:
        factory = _KERNEL_FACTORIES.get(klass)
        if factory is not None:
            return factory(policy)
    raise SimulationError(
        f"no routing kernel registered for policy {policy!r} "
        f"(register one with repro.baselines.routing.register_routing_kernel)"
    )


def registered_kernel_types() -> Dict[type, Callable[[object], RoutingKernel]]:
    """Snapshot of the registry: policy class -> kernel factory."""
    return dict(_KERNEL_FACTORIES)
