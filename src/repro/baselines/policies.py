"""Policy descriptors for the six compared techniques."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.scheduler.pcs import SchedulerConfig

__all__ = [
    "Policy",
    "BasicPolicy",
    "REDPolicy",
    "ReissuePolicy",
    "PCSPolicy",
    "standard_policies",
]


@dataclass(frozen=True)
class Policy:
    """Base descriptor: how sub-requests are routed inside a replica group."""

    name: str = "policy"

    @property
    def schedules(self) -> bool:
        """Whether the policy runs the PCS scheduler between intervals."""
        return False

    @property
    def copies(self) -> int:
        """Simultaneous copies of each sub-request sent to a group."""
        return 1

    @property
    def load_multiplier(self) -> float:
        """Expected executed copies per sub-request — the factor by
        which the policy multiplies each replica's request load (and
        therefore its resource consumption)."""
        return float(self.copies)


@dataclass(frozen=True)
class BasicPolicy(Policy):
    """No redundancy, no reissue, static placement."""

    name: str = "Basic"


@dataclass(frozen=True)
class REDPolicy(Policy):
    """Request redundancy with ``replicas`` simultaneous copies.

    The paper tests RED-3 and RED-5.  ``cancel_delay_s`` is the network
    message delay of the cancellation mechanism — the reason two
    replicas may both execute a request (§VI-C's discussion of why
    cancellation is imperfect).
    """

    name: str = "RED"
    replicas: int = 3
    cancel_delay_s: float = 0.002

    def __post_init__(self) -> None:
        if self.replicas < 2:
            raise ConfigurationError(
                f"RED needs >= 2 replicas, got {self.replicas}"
            )
        if self.cancel_delay_s < 0:
            raise ConfigurationError("cancel_delay_s must be >= 0")
        object.__setattr__(self, "name", f"RED-{self.replicas}")

    @property
    def copies(self) -> int:
        return self.replicas


@dataclass(frozen=True)
class ReissuePolicy(Policy):
    """Request reissue at the ``quantile`` of expected latency.

    The paper tests RI-90 (reissue after the 90th percentile of the
    expected latency for the request class) and RI-99.
    """

    name: str = "RI"
    quantile: float = 0.90

    def __post_init__(self) -> None:
        if not 0 < self.quantile < 1:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        object.__setattr__(self, "name", f"RI-{int(round(self.quantile * 100))}")

    @property
    def load_multiplier(self) -> float:
        # A fraction (1 - q) of sub-requests is reissued once.
        return 1.0 + (1.0 - self.quantile)


@dataclass(frozen=True)
class PCSPolicy(Policy):
    """Basic routing + predictive component-level scheduling."""

    name: str = "PCS"
    scheduler_config: SchedulerConfig = field(default_factory=SchedulerConfig)
    use_oracle: bool = False  # ablation: ground-truth predictor
    hierarchical_group_size: Optional[int] = None

    @property
    def schedules(self) -> bool:
        return True


def standard_policies() -> List[Policy]:
    """The paper's six compared techniques, in Fig. 6 legend order."""
    return [
        BasicPolicy(),
        REDPolicy(replicas=3),
        REDPolicy(replicas=5),
        ReissuePolicy(quantile=0.90),
        ReissuePolicy(quantile=0.99),
        PCSPolicy(),
    ]
