"""Policy descriptors for the compared techniques.

Each policy is two halves:

- the frozen *descriptor* here — name, parameters, load multiplier,
  whether the PCS scheduler runs between intervals; and
- a *routing kernel* (:mod:`repro.baselines.routing`) holding the
  per-group sub-request mechanics, registered right next to its
  descriptor via :func:`~repro.baselines.routing.register_routing_kernel`.

The simulator dispatches on the registry only, so adding a policy —
see :class:`HedgedPolicy` for a worked example — never touches
:mod:`repro.sim.queue_sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.routing import (
    HedgedKernel,
    RandomSplitKernel,
    RedundancyKernel,
    ReissueKernel,
    register_routing_kernel,
    routing_kernel_for,
)
from repro.errors import ConfigurationError
from repro.scheduler.pcs import SchedulerConfig

__all__ = [
    "Policy",
    "BasicPolicy",
    "REDPolicy",
    "ReissuePolicy",
    "HedgedPolicy",
    "PCSPolicy",
    "standard_policies",
    "routing_kernel_for",
]


@dataclass(frozen=True)
class Policy:
    """Base descriptor: how sub-requests are routed inside a replica group."""

    name: str = "policy"

    @property
    def schedules(self) -> bool:
        """Whether the policy runs the PCS scheduler between intervals."""
        return False

    @property
    def copies(self) -> int:
        """Simultaneous copies of each sub-request sent to a group."""
        return 1

    @property
    def load_multiplier(self) -> float:
        """Expected executed copies per sub-request — the factor by
        which the policy multiplies each replica's request load (and
        therefore its resource consumption)."""
        return float(self.copies)


# Basic routing is the base behaviour: every policy without a more
# specific registration (PCS included) random-splits.
register_routing_kernel(Policy, lambda p: RandomSplitKernel())


@dataclass(frozen=True)
class BasicPolicy(Policy):
    """No redundancy, no reissue, static placement."""

    name: str = "Basic"


register_routing_kernel(BasicPolicy, lambda p: RandomSplitKernel())


@dataclass(frozen=True)
class REDPolicy(Policy):
    """Request redundancy with ``replicas`` simultaneous copies.

    The paper tests RED-3 and RED-5.  ``cancel_delay_s`` is the network
    message delay of the cancellation mechanism — the reason two
    replicas may both execute a request (§VI-C's discussion of why
    cancellation is imperfect).
    """

    name: str = "RED"
    replicas: int = 3
    cancel_delay_s: float = 0.002

    def __post_init__(self) -> None:
        if self.replicas < 2:
            raise ConfigurationError(
                f"RED needs >= 2 replicas, got {self.replicas}"
            )
        if self.cancel_delay_s < 0:
            raise ConfigurationError("cancel_delay_s must be >= 0")
        object.__setattr__(self, "name", f"RED-{self.replicas}")

    @property
    def copies(self) -> int:
        return self.replicas


register_routing_kernel(
    REDPolicy, lambda p: RedundancyKernel(p.replicas, p.cancel_delay_s)
)


@dataclass(frozen=True)
class ReissuePolicy(Policy):
    """Request reissue at the ``quantile`` of expected latency.

    The paper tests RI-90 (reissue after the 90th percentile of the
    expected latency for the request class) and RI-99.
    """

    name: str = "RI"
    quantile: float = 0.90

    def __post_init__(self) -> None:
        if not 0 < self.quantile < 1:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        object.__setattr__(self, "name", f"RI-{int(round(self.quantile * 100))}")

    @property
    def load_multiplier(self) -> float:
        # A fraction (1 - q) of sub-requests is reissued once.
        return 1.0 + (1.0 - self.quantile)


register_routing_kernel(ReissuePolicy, lambda p: ReissueKernel(p.quantile))


@dataclass(frozen=True)
class HedgedPolicy(Policy):
    """Hedged (tied) requests: a backup copy after a fixed delay.

    The Tail-at-Scale discipline the paper's RI-p approximates
    adaptively: every sub-request still outstanding after
    ``hedge_delay_s`` gets one backup on the next replica; the quicker
    copy wins.  Not one of the paper's six techniques — it exists as
    the worked example of a policy plugging into the simulator through
    the kernel registry alone.

    ``expected_hedge_fraction`` is the assumed fraction of requests
    whose primary outlives the delay; it only feeds
    :attr:`load_multiplier` (the resource-accounting estimate), not the
    routing itself, which hedges exactly the requests that actually
    overstay.
    """

    name: str = "Hedge"
    hedge_delay_s: float = 0.010
    expected_hedge_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.hedge_delay_s <= 0:
            raise ConfigurationError(
                f"hedge_delay_s must be positive, got {self.hedge_delay_s}"
            )
        if not 0 <= self.expected_hedge_fraction <= 1:
            raise ConfigurationError(
                "expected_hedge_fraction must be in [0, 1], got "
                f"{self.expected_hedge_fraction}"
            )
        object.__setattr__(
            self, "name", f"Hedge-{self.hedge_delay_s * 1e3:g}ms"
        )

    @property
    def load_multiplier(self) -> float:
        return 1.0 + self.expected_hedge_fraction


register_routing_kernel(
    HedgedPolicy, lambda p: HedgedKernel(hedge_delay_s=p.hedge_delay_s)
)


@dataclass(frozen=True)
class PCSPolicy(Policy):
    """Basic routing + predictive component-level scheduling."""

    name: str = "PCS"
    scheduler_config: SchedulerConfig = field(default_factory=SchedulerConfig)
    use_oracle: bool = False  # ablation: ground-truth predictor
    hierarchical_group_size: Optional[int] = None

    @property
    def schedules(self) -> bool:
        return True


# PCS routes like Basic (it inherits the Policy-base registration); the
# explicit entry documents that this is a decision, not an omission.
register_routing_kernel(PCSPolicy, lambda p: RandomSplitKernel())


def standard_policies() -> List[Policy]:
    """The paper's six compared techniques, in Fig. 6 legend order."""
    return [
        BasicPolicy(),
        REDPolicy(replicas=3),
        REDPolicy(replicas=5),
        ReissuePolicy(quantile=0.90),
        ReissuePolicy(quantile=0.99),
        PCSPolicy(),
    ]
