"""Policy descriptors for the compared techniques.

Each policy is two halves:

- the frozen *descriptor* here — name, parameters, load multiplier,
  whether the PCS scheduler runs between intervals; and
- a *routing kernel* (:mod:`repro.baselines.routing`) holding the
  per-group sub-request mechanics, registered right next to its
  descriptor via :func:`~repro.baselines.routing.register_routing_kernel`.

The simulator dispatches on the registry only, so adding a policy —
see :class:`HedgedPolicy` for a worked example — never touches
:mod:`repro.sim.queue_sim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.routing import (
    AdaptiveHedgeKernel,
    AdaptiveReissueKernel,
    HedgedKernel,
    RandomSplitKernel,
    RedundancyKernel,
    ReissueKernel,
    register_routing_kernel,
    routing_kernel_for,
)
from repro.errors import ConfigurationError
from repro.scheduler.pcs import SchedulerConfig

__all__ = [
    "InducedLoad",
    "Policy",
    "BasicPolicy",
    "REDPolicy",
    "ReissuePolicy",
    "HedgedPolicy",
    "AdaptiveReissuePolicy",
    "AdaptiveHedgePolicy",
    "PCSPolicy",
    "standard_policies",
    "routing_kernel_for",
]


@dataclass(frozen=True)
class InducedLoad:
    """The arrival-rate feedback a routing policy injects (§VI-C).

    Redundancy and reissue *are* interference: every extra executed
    copy is an extra arrival at some replica's queue.  This model makes
    that feedback an explicit object instead of a scalar folded into
    each descriptor: ``copies`` simultaneous copies per sub-request
    plus an expected ``reissue_fraction`` of single backups.

    The old ``Policy.load_multiplier`` scalar is the exact degenerate
    case — :attr:`scalar` reproduces its float expression bit for bit
    for every registered policy (``float(copies) + reissue_fraction``),
    so consumers that cannot see the group keep identical behaviour.
    Group-aware consumers use :meth:`group_multiplier`, which caps the
    fan-out at the group's actual replica count (a RED-5 sub-request on
    a 2-replica group executes at most twice — the kernels have always
    enforced this; the accounting now agrees) and degrades to 1.0 on
    single-replica groups, matching every kernel's random-split
    fallback.  Class mixes and optional groups enter through the
    ``participation`` argument of :meth:`replica_rate` — the resolved
    class-weighted group participation, exactly the factor the runner's
    load model already applies.

    ``cancel_delay_s`` (redundancy only) carries the imperfect-
    cancellation parameter so the *load-dependent* expectation
    :meth:`expected_group_multiplier` can predict how many copies
    actually execute: with queues empty every copy starts within the
    cancel message delay and all ``k`` run; under heavy queueing the
    first start cancels the rest and the multiplier collapses toward 1.
    ``hedge_delay_s`` does the same for fixed-delay hedging, whose
    realized backup fraction is ``P(sojourn > delay)``.
    """

    copies: int = 1
    reissue_fraction: float = 0.0
    cancel_delay_s: Optional[float] = None
    hedge_delay_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ConfigurationError(
                f"induced copies must be >= 1, got {self.copies}"
            )
        if not 0.0 <= self.reissue_fraction <= 1.0:
            raise ConfigurationError(
                "reissue_fraction must be in [0, 1], got "
                f"{self.reissue_fraction}"
            )
        if self.cancel_delay_s is not None and self.cancel_delay_s < 0:
            raise ConfigurationError("cancel_delay_s must be >= 0")
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ConfigurationError("hedge_delay_s must be positive")

    @property
    def scalar(self) -> float:
        """The legacy group-blind multiplier (exact degenerate case)."""
        return float(self.copies) + self.reissue_fraction

    def group_multiplier(self, n_replicas: int) -> float:
        """Expected executed copies per sub-request on an ``n_replicas``
        group, assuming no cancellation succeeds (the static planning
        bound the runner's load model uses)."""
        if n_replicas <= 1:
            # Kernels fall back to plain random split on 1-replica
            # groups — no sibling to duplicate onto.
            return 1.0
        return float(min(self.copies, n_replicas)) + self.reissue_fraction

    def replica_rate(
        self, arrival_rate: float, participation: float, n_replicas: int
    ) -> float:
        """Induced per-replica arrival rate on one group.

        ``participation`` is the (class-weighted) probability a request
        visits the group at all; the group's share of ``arrival_rate``
        is split uniformly over its replicas and inflated by the
        policy's executed copies.
        """
        if n_replicas < 1:
            raise ConfigurationError(
                f"n_replicas must be >= 1, got {n_replicas}"
            )
        return (
            participation
            * self.group_multiplier(n_replicas)
            * arrival_rate
            / n_replicas
        )

    def expected_group_multiplier(
        self,
        n_replicas: int,
        queue_wait_s: float = 0.0,
        sojourn_s: float = 0.0,
    ) -> float:
        """Load-*dependent* expected executed copies per sub-request.

        Refines :meth:`group_multiplier` with the two §VI-C effects the
        static bound ignores, under the exponential-sojourn
        approximation:

        - imperfect cancellation: a redundancy copy executes iff it
          starts within ``cancel_delay_s`` of its quickest sibling.
          With per-replica queueing delays ≈ iid Exp(mean
          ``queue_wait_s``), the excesses over the minimum are again
          exponential, so each of the other ``k−1`` copies survives
          with probability ``1 − exp(−delay/wait)`` — all ``k`` at an
          empty queue, collapsing to 1 under heavy queueing;
        - hedging: the backup fires only when the primary overstays,
          ``P(S > delay) = exp(−delay/sojourn)`` for ``S ≈
          Exp(mean sojourn_s)``.

        Percentile reissue needs no correction: its timer *is* the
        ``q``-th own-window percentile, so the realized backup fraction
        is ``1 − q`` at any load.
        """
        if n_replicas <= 1:
            return 1.0
        k = min(self.copies, n_replicas)
        mult = 1.0
        if k > 1:
            if self.cancel_delay_s is None or queue_wait_s <= 0.0:
                mult = float(k)
            else:
                survive = 1.0 - math.exp(-self.cancel_delay_s / queue_wait_s)
                mult = 1.0 + (k - 1) * survive
        fraction = self.reissue_fraction
        if self.hedge_delay_s is not None:
            fraction = (
                math.exp(-self.hedge_delay_s / sojourn_s)
                if sojourn_s > 0.0
                else 0.0
            )
        return mult + fraction


@dataclass(frozen=True)
class Policy:
    """Base descriptor: how sub-requests are routed inside a replica group."""

    name: str = "policy"

    @property
    def schedules(self) -> bool:
        """Whether the policy runs the PCS scheduler between intervals."""
        return False

    @property
    def copies(self) -> int:
        """Simultaneous copies of each sub-request sent to a group."""
        return 1

    @property
    def adapts_threshold(self) -> bool:
        """Whether the policy's kernel tunes its timer from a
        :class:`~repro.baselines.routing.ThresholdFeed` (the runner
        creates and threads the feed only when this is set)."""
        return False

    def induced_load(self) -> InducedLoad:
        """The policy's arrival-rate feedback model."""
        return InducedLoad(copies=self.copies)

    @property
    def load_multiplier(self) -> float:
        """Expected executed copies per sub-request — the factor by
        which the policy multiplies each replica's request load (and
        therefore its resource consumption).  Derived: the group-blind
        :attr:`InducedLoad.scalar` of :meth:`induced_load`."""
        return self.induced_load().scalar


# Basic routing is the base behaviour: every policy without a more
# specific registration (PCS included) random-splits.
register_routing_kernel(Policy, lambda p: RandomSplitKernel())


@dataclass(frozen=True)
class BasicPolicy(Policy):
    """No redundancy, no reissue, static placement."""

    name: str = "Basic"


register_routing_kernel(BasicPolicy, lambda p: RandomSplitKernel())


@dataclass(frozen=True)
class REDPolicy(Policy):
    """Request redundancy with ``replicas`` simultaneous copies.

    The paper tests RED-3 and RED-5.  ``cancel_delay_s`` is the network
    message delay of the cancellation mechanism — the reason two
    replicas may both execute a request (§VI-C's discussion of why
    cancellation is imperfect).
    """

    name: str = "RED"
    replicas: int = 3
    cancel_delay_s: float = 0.002

    def __post_init__(self) -> None:
        if self.replicas < 2:
            raise ConfigurationError(
                f"RED needs >= 2 replicas, got {self.replicas}"
            )
        if self.cancel_delay_s < 0:
            raise ConfigurationError("cancel_delay_s must be >= 0")
        object.__setattr__(self, "name", f"RED-{self.replicas}")

    @property
    def copies(self) -> int:
        return self.replicas

    def induced_load(self) -> InducedLoad:
        return InducedLoad(
            copies=self.replicas, cancel_delay_s=self.cancel_delay_s
        )


register_routing_kernel(
    REDPolicy, lambda p: RedundancyKernel(p.replicas, p.cancel_delay_s)
)


@dataclass(frozen=True)
class ReissuePolicy(Policy):
    """Request reissue at the ``quantile`` of expected latency.

    The paper tests RI-90 (reissue after the 90th percentile of the
    expected latency for the request class) and RI-99.
    """

    name: str = "RI"
    quantile: float = 0.90

    def __post_init__(self) -> None:
        if not 0 < self.quantile < 1:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        object.__setattr__(self, "name", f"RI-{int(round(self.quantile * 100))}")

    def induced_load(self) -> InducedLoad:
        # A fraction (1 - q) of sub-requests is reissued once.
        return InducedLoad(reissue_fraction=1.0 - self.quantile)


register_routing_kernel(ReissuePolicy, lambda p: ReissueKernel(p.quantile))


@dataclass(frozen=True)
class HedgedPolicy(Policy):
    """Hedged (tied) requests: a backup copy after a fixed delay.

    The Tail-at-Scale discipline the paper's RI-p approximates
    adaptively: every sub-request still outstanding after
    ``hedge_delay_s`` gets one backup on the next replica; the quicker
    copy wins.  Not one of the paper's six techniques — it exists as
    the worked example of a policy plugging into the simulator through
    the kernel registry alone.

    ``expected_hedge_fraction`` is the assumed fraction of requests
    whose primary outlives the delay; it only feeds
    :attr:`load_multiplier` (the resource-accounting estimate), not the
    routing itself, which hedges exactly the requests that actually
    overstay.
    """

    name: str = "Hedge"
    hedge_delay_s: float = 0.010
    expected_hedge_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.hedge_delay_s <= 0:
            raise ConfigurationError(
                f"hedge_delay_s must be positive, got {self.hedge_delay_s}"
            )
        if not 0 <= self.expected_hedge_fraction <= 1:
            raise ConfigurationError(
                "expected_hedge_fraction must be in [0, 1], got "
                f"{self.expected_hedge_fraction}"
            )
        object.__setattr__(
            self, "name", f"Hedge-{self.hedge_delay_s * 1e3:g}ms"
        )

    def induced_load(self) -> InducedLoad:
        return InducedLoad(
            reissue_fraction=self.expected_hedge_fraction,
            hedge_delay_s=self.hedge_delay_s,
        )


register_routing_kernel(
    HedgedPolicy, lambda p: HedgedKernel(hedge_delay_s=p.hedge_delay_s)
)


@dataclass(frozen=True)
class AdaptiveReissuePolicy(ReissuePolicy):
    """RI-p with the timer tuned online from the monitor's gauges.

    Same two-pass reissue mechanics as :class:`ReissuePolicy`; the
    kernel routes with the streaming cross-window percentile estimate
    (:class:`repro.monitoring.streaming.ReissueThresholdFeed`) instead
    of each window's own noisy percentile.  Legend name ``ARI-<p>``.
    """

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(
            self, "name", f"ARI-{int(round(self.quantile * 100))}"
        )

    @property
    def adapts_threshold(self) -> bool:
        return True


register_routing_kernel(
    AdaptiveReissuePolicy, lambda p: AdaptiveReissueKernel(p.quantile)
)


@dataclass(frozen=True)
class AdaptiveHedgePolicy(HedgedPolicy):
    """Hedging whose delay tracks the observed ``quantile`` latency.

    ``hedge_delay_s`` is only the cold-start delay; once the feed warms
    up the backup fires at the streamed ``quantile``-th percentile of
    observed group latencies.  The induced reissue fraction is
    therefore ``1 − quantile`` by construction once tuned, which is
    what :meth:`induced_load` declares.  Legend name ``AHedge-<p>``.
    """

    quantile: float = 0.95

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.quantile < 1:
            raise ConfigurationError(
                f"quantile must be in (0, 1), got {self.quantile}"
            )
        object.__setattr__(
            self, "name", f"AHedge-{int(round(self.quantile * 100))}"
        )

    @property
    def adapts_threshold(self) -> bool:
        return True

    def induced_load(self) -> InducedLoad:
        # Once tuned, the delay sits at the quantile-th percentile of
        # group latency, so a (1 − q) fraction overstays and hedges —
        # the percentile-reissue accounting, not the fixed-delay one.
        return InducedLoad(reissue_fraction=1.0 - self.quantile)


register_routing_kernel(
    AdaptiveHedgePolicy,
    lambda p: AdaptiveHedgeKernel(
        hedge_delay_s=p.hedge_delay_s, quantile=p.quantile
    ),
)


@dataclass(frozen=True)
class PCSPolicy(Policy):
    """Basic routing + predictive component-level scheduling."""

    name: str = "PCS"
    scheduler_config: SchedulerConfig = field(default_factory=SchedulerConfig)
    use_oracle: bool = False  # ablation: ground-truth predictor
    hierarchical_group_size: Optional[int] = None

    @property
    def schedules(self) -> bool:
        return True


# PCS routes like Basic (it inherits the Policy-base registration); the
# explicit entry documents that this is a decision, not an omission.
register_routing_kernel(PCSPolicy, lambda p: RandomSplitKernel())


def standard_policies() -> List[Policy]:
    """The paper's six compared techniques, in Fig. 6 legend order."""
    return [
        BasicPolicy(),
        REDPolicy(replicas=3),
        REDPolicy(replicas=5),
        ReissuePolicy(quantile=0.90),
        ReissuePolicy(quantile=0.99),
        PCSPolicy(),
    ]
