"""Comparison policies (paper §VI-A "Compared techniques").

Six request-routing/mitigation policies share one interface:

- **Basic** — each sub-request goes to one replica (round-robin); no
  redundancy, no reissue, no migration.
- **RED-3 / RED-5** — request redundancy [11, 26, 27]: every
  sub-request is executed on 3 or 5 replicas in parallel; the quickest
  response wins; queued duplicates are cancelled *imperfectly* (the
  paper's two leak paths are modeled).
- **RI-90 / RI-99** — request reissue [14, 18]: a sub-request goes to
  one replica; if it has not completed after the 90th/99th percentile
  of its expected latency, a secondary copy goes to another replica and
  the quicker of the two wins.
- **PCS** — Basic routing plus the predictive component-level
  scheduler migrating components between intervals.

The policies only *describe* behaviour; the sample-path mechanics live
in :mod:`repro.sim.queue_sim`.
"""

from repro.baselines.policies import (
    BasicPolicy,
    PCSPolicy,
    Policy,
    REDPolicy,
    ReissuePolicy,
    standard_policies,
)

__all__ = [
    "Policy",
    "BasicPolicy",
    "REDPolicy",
    "ReissuePolicy",
    "PCSPolicy",
    "standard_policies",
]
