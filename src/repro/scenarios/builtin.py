"""The built-in scenario catalog.

Three workloads ship with the package (see the package docstring for
the how-to-add guide):

``nutch-search``
    the paper's Fig. 1 Nutch-like three-stage search service, built
    from ``config.nutch`` exactly as every experiment did before the
    scenario layer existed — the bit-identity anchor.

``pipeline-deep``
    a deep sequential pipeline (ingest → parse → transform ×2 → store):
    five stages of one load-shared group each, no intra-stage fan-out.
    Latency is a pure *sum* of stage sojourns (Eq. 4 with the Eq. 3 max
    degenerate), so tail mitigation behaves very differently from the
    paper's fan-out topology: a straggler stage cannot hide behind a
    faster sibling group.

``fanout-feed``
    a wide fan-out social-feed service (gateway → many timeline shards
    → rank/blend) with **heavy-tailed** shard service times (Pareto,
    α = 2.2).  The stage max over dozens of heavy-tailed groups makes
    the overall latency tail-dominated — redundancy's min-of-k shines
    at light load and collapses under its own induced load, the
    contrast the paper's §VI-C narrates.

Shape scaling: the non-Nutch builders multiply their replica/group
counts by ``config.scale`` (a :class:`~repro.sim.runner.RunnerConfig`
field, default 1.0), so tests and quick CLI runs can shrink a scenario
without registering a new one.  ``nutch-search`` ignores ``scale`` —
its shape comes entirely from ``config.nutch``, preserving the
pre-scenario behaviour bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.resources import ResourceVector
from repro.scenarios.spec import ScenarioSpec, register_scenario
from repro.service.component import Component, ComponentClass
from repro.service.nutch import build_nutch_service
from repro.service.service import OnlineService
from repro.service.topology import ReplicaGroup, ServiceTopology, Stage
from repro.simcore.distributions import LogNormal, Pareto
from repro.units import ms
from repro.workloads.generator import GeneratorConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runner import RunnerConfig

__all__ = ["NUTCH_SEARCH", "PIPELINE_DEEP", "FANOUT_FEED"]


def _scaled(count: int, scale: float, floor: int = 1) -> int:
    """Round a shape count under the config's scale multiplier."""
    return max(floor, int(round(count * scale)))


#: Per-class resource footprints at the reference request rate (same
#: magnitudes as the Nutch service's Table-III-style footprints, plus a
#: balanced GENERIC profile for pipeline middle stages).
_DEMANDS = {
    ComponentClass.SEGMENTING: ResourceVector(
        core=0.030, cache_mpki=0.5, disk_bw=0.5, net_bw=1.0
    ),
    ComponentClass.SEARCHING: ResourceVector(
        core=0.040, cache_mpki=1.0, disk_bw=4.0, net_bw=1.5
    ),
    ComponentClass.AGGREGATING: ResourceVector(
        core=0.025, cache_mpki=0.4, disk_bw=0.5, net_bw=2.0
    ),
    ComponentClass.GENERIC: ResourceVector(
        core=0.035, cache_mpki=0.7, disk_bw=1.5, net_bw=1.2
    ),
}


def _component(cls: ComponentClass, name: str, dist) -> Component:
    return Component(
        name=name, cls=cls, base_service=dist, demand=_DEMANDS[cls]
    )


def _shared_stage(
    stage: str, group: str, cls: ComponentClass, dist, replicas: int
) -> Stage:
    """One load-shared group of ``replicas`` interchangeable servers."""
    return Stage(
        name=stage,
        groups=[
            ReplicaGroup(
                name=group,
                components=[
                    _component(cls, f"{group}-r{r}", dist)
                    for r in range(replicas)
                ],
            )
        ],
    )


# ----------------------------------------------------------------------
# nutch-search (the paper's service)
# ----------------------------------------------------------------------
def _build_nutch(config: "RunnerConfig") -> OnlineService:
    return build_nutch_service(config.nutch)


NUTCH_SEARCH = register_scenario(
    ScenarioSpec(
        name="nutch-search",
        description=(
            "the paper's Fig. 1 three-stage search service "
            "(segment -> shard fan-out -> aggregate); shape from "
            "config.nutch"
        ),
        build=_build_nutch,
        tags=("paper", "fan-out"),
    )
)


# ----------------------------------------------------------------------
# pipeline-deep (sequential ETL-style chain)
# ----------------------------------------------------------------------
def _build_pipeline(config: "RunnerConfig") -> OnlineService:
    s = config.scale
    # The two transform stages share one class (and therefore one base
    # distribution): §VI-D's homogeneity argument — one profiling
    # campaign per class — must keep holding in every scenario.
    transform = LogNormal(ms(3.0), 0.5)
    stages = [
        _shared_stage(
            "ingest", "ingest-g0", ComponentClass.SEGMENTING,
            LogNormal(ms(0.8), 0.3), _scaled(3, s),
        ),
        _shared_stage(
            "parse", "parse-g0", ComponentClass.GENERIC,
            LogNormal(ms(2.0), 0.6), _scaled(4, s),
        ),
        _shared_stage(
            "transform-a", "transform-a-g0", ComponentClass.SEARCHING,
            transform, _scaled(6, s),
        ),
        _shared_stage(
            "transform-b", "transform-b-g0", ComponentClass.SEARCHING,
            transform, _scaled(6, s),
        ),
        _shared_stage(
            "store", "store-g0", ComponentClass.AGGREGATING,
            LogNormal(ms(1.5), 0.4), _scaled(3, s),
        ),
    ]
    return OnlineService("pipeline-deep", ServiceTopology(stages))


PIPELINE_DEEP = register_scenario(
    ScenarioSpec(
        name="pipeline-deep",
        description=(
            "five-stage sequential pipeline (ingest -> parse -> "
            "transform x2 -> store); latency is a pure sum of stage "
            "sojourns"
        ),
        build=_build_pipeline,
        runner_defaults={"n_nodes": 12},
        tags=("pipeline", "sequential"),
    )
)


# ----------------------------------------------------------------------
# fanout-feed (wide fan-out, heavy-tailed shards)
# ----------------------------------------------------------------------
def _build_fanout(config: "RunnerConfig") -> OnlineService:
    s = config.scale
    n_shards = _scaled(24, s, floor=2)
    shard_dist = Pareto(xm=ms(1.2), alpha=2.2)  # mean 2.2 ms, SCV ~ 2.3
    gateway = _shared_stage(
        "gateway", "gateway-g0", ComponentClass.SEGMENTING,
        LogNormal(ms(0.6), 0.3), _scaled(4, s),
    )
    shards = Stage(
        name="timelines",
        groups=[
            ReplicaGroup(
                name=f"timeline-g{g:02d}",
                components=[
                    _component(
                        ComponentClass.SEARCHING,
                        f"timeline-g{g:02d}-r{r}",
                        shard_dist,
                    )
                    for r in range(3)
                ],
            )
            for g in range(n_shards)
        ],
    )
    blend = _shared_stage(
        "rank-blend", "rank-blend-g0", ComponentClass.AGGREGATING,
        LogNormal(ms(1.8), 0.5), _scaled(5, s),
    )
    return OnlineService("fanout-feed", ServiceTopology([gateway, shards, blend]))


FANOUT_FEED = register_scenario(
    ScenarioSpec(
        name="fanout-feed",
        description=(
            "wide fan-out social-feed service (gateway -> heavy-tailed "
            "timeline shards -> rank/blend); overall latency is "
            "tail-dominated by the stage max"
        ),
        build=_build_fanout,
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.015, max_batch_jobs_per_node=4
        ),
        runner_defaults={"n_nodes": 24},
        tags=("fan-out", "heavy-tail"),
    )
)
