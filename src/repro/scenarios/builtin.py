"""The built-in scenario catalog.

Five workloads ship with the package (see the package docstring for
the how-to-add guide):

``nutch-search``
    the paper's Fig. 1 Nutch-like three-stage search service, built
    from ``config.nutch`` exactly as every experiment did before the
    scenario layer existed — the bit-identity anchor.

``pipeline-deep``
    a deep sequential pipeline (ingest → parse → transform ×2 → store):
    five stages of one load-shared group each, no intra-stage fan-out.
    Latency is a pure *sum* of stage sojourns (Eq. 4 with the Eq. 3 max
    degenerate), so tail mitigation behaves very differently from the
    paper's fan-out topology: a straggler stage cannot hide behind a
    faster sibling group.

``fanout-feed``
    a wide fan-out social-feed service (gateway → many timeline shards
    → rank/blend) with **heavy-tailed** shard service times (Pareto,
    α = 2.2).  The stage max over dozens of heavy-tailed groups makes
    the overall latency tail-dominated — redundancy's min-of-k shines
    at light load and collapses under its own induced load, the
    contrast the paper's §VI-C narrates.

``diamond-search``
    a **DAG** topology (the tail-at-scale partition/aggregate shape):
    query parsing fans out to two *parallel branches* — the web-index
    shards and an optional ads lookup (each request joins it with
    probability 0.65) — that a blend stage joins, with a *skip edge*
    from parse straight to blend.  Overall latency is the critical
    path over the stage DAG, not a chain sum.

``branchy-api``
    a probabilistically branched API backend: a gateway feeds an
    optional profile hydration (p = 0.85) and optional recommendation
    shards (p = 0.5 each) in parallel; a render stage joins whatever
    ran, reachable from the gateway by a skip edge for requests that
    skipped both branches.

``mixed-frontend``
    the **request-class** showcase: a gateway fans out to three
    parallel branch stages — web-search shards, an optional image
    lookup and a suggest service — joined by a blend stage.  Three
    request classes restrict that DAG per class: full ``search``
    queries (60 %), cheap ``autocomplete`` keystrokes (30 %, half the
    service demand, suggest branch only) and ``image-heavy`` queries
    (10 %, 1.6× demand, image branch mandatory) — so per-class latency
    distributions differ by construction.  The search-shard *group
    count* is fixed (class participation overrides name the groups
    explicitly); ``config.scale`` widens the replica counts instead.

Shape scaling: the non-Nutch builders multiply their replica/group
counts by ``config.scale`` (a :class:`~repro.sim.runner.RunnerConfig`
field, default 1.0), so tests and quick CLI runs can shrink a scenario
without registering a new one.  ``nutch-search`` ignores ``scale`` —
its shape comes entirely from ``config.nutch``, preserving the
pre-scenario behaviour bit for bit.

Cluster sizing: the DAG scenarios derive their default ``n_nodes``
from the component count via
:func:`~repro.scenarios.spec.suggested_n_nodes` (one node per ~3
components) instead of hand-picked constants; a test pins the derived
numbers to the actual built shapes.  Every built-in also carries a
``paper_scale`` preset — the overrides ``Fig6Config(paper_scale=True)``
applies — so full-scale runs are sized per scenario rather than
inheriting the Nutch constants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.resources import ResourceVector
from repro.scenarios.spec import ScenarioSpec, register_scenario, suggested_n_nodes
from repro.service.component import Component, ComponentClass
from repro.service.nutch import build_nutch_service
from repro.service.service import OnlineService
from repro.service.topology import (
    ReplicaGroup,
    RequestClass,
    ServiceTopology,
    Stage,
)
from repro.simcore.distributions import LogNormal, Pareto
from repro.units import ms
from repro.workloads.generator import GeneratorConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.runner import RunnerConfig

__all__ = [
    "NUTCH_SEARCH",
    "PIPELINE_DEEP",
    "FANOUT_FEED",
    "DIAMOND_SEARCH",
    "BRANCHY_API",
    "MIXED_FRONTEND",
]


def _scaled(count: int, scale: float, floor: int = 1) -> int:
    """Round a shape count under the config's scale multiplier."""
    return max(floor, int(round(count * scale)))


#: Per-class resource footprints at the reference request rate (same
#: magnitudes as the Nutch service's Table-III-style footprints, plus a
#: balanced GENERIC profile for pipeline middle stages).
_DEMANDS = {
    ComponentClass.SEGMENTING: ResourceVector(
        core=0.030, cache_mpki=0.5, disk_bw=0.5, net_bw=1.0
    ),
    ComponentClass.SEARCHING: ResourceVector(
        core=0.040, cache_mpki=1.0, disk_bw=4.0, net_bw=1.5
    ),
    ComponentClass.AGGREGATING: ResourceVector(
        core=0.025, cache_mpki=0.4, disk_bw=0.5, net_bw=2.0
    ),
    ComponentClass.GENERIC: ResourceVector(
        core=0.035, cache_mpki=0.7, disk_bw=1.5, net_bw=1.2
    ),
}


def _component(cls: ComponentClass, name: str, dist) -> Component:
    return Component(
        name=name, cls=cls, base_service=dist, demand=_DEMANDS[cls]
    )


def _shared_stage(
    stage: str,
    group: str,
    cls: ComponentClass,
    dist,
    replicas: int,
    predecessors=None,
    participation: float = 1.0,
) -> Stage:
    """One load-shared group of ``replicas`` interchangeable servers."""
    return Stage(
        name=stage,
        groups=[
            ReplicaGroup(
                name=group,
                components=[
                    _component(cls, f"{group}-r{r}", dist)
                    for r in range(replicas)
                ],
                participation=participation,
            )
        ],
        predecessors=predecessors,
    )


# ----------------------------------------------------------------------
# nutch-search (the paper's service)
# ----------------------------------------------------------------------
def _build_nutch(config: "RunnerConfig") -> OnlineService:
    return build_nutch_service(config.nutch)


NUTCH_SEARCH = register_scenario(
    ScenarioSpec(
        name="nutch-search",
        description=(
            "the paper's Fig. 1 three-stage search service "
            "(segment -> shard fan-out -> aggregate); shape from "
            "config.nutch"
        ),
        build=_build_nutch,
        # The paper's testbed: 30 nodes hosting the 100-searching-VM
        # topology (NutchConfig's defaults are already the 20x5 shape).
        paper_scale={"n_nodes": 30},
        tags=("paper", "fan-out"),
    )
)


# ----------------------------------------------------------------------
# pipeline-deep (sequential ETL-style chain)
# ----------------------------------------------------------------------
def _build_pipeline(config: "RunnerConfig") -> OnlineService:
    s = config.scale
    # The two transform stages share one class (and therefore one base
    # distribution): §VI-D's homogeneity argument — one profiling
    # campaign per class — must keep holding in every scenario.
    transform = LogNormal(ms(3.0), 0.5)
    stages = [
        _shared_stage(
            "ingest", "ingest-g0", ComponentClass.SEGMENTING,
            LogNormal(ms(0.8), 0.3), _scaled(3, s),
        ),
        _shared_stage(
            "parse", "parse-g0", ComponentClass.GENERIC,
            LogNormal(ms(2.0), 0.6), _scaled(4, s),
        ),
        _shared_stage(
            "transform-a", "transform-a-g0", ComponentClass.SEARCHING,
            transform, _scaled(6, s),
        ),
        _shared_stage(
            "transform-b", "transform-b-g0", ComponentClass.SEARCHING,
            transform, _scaled(6, s),
        ),
        _shared_stage(
            "store", "store-g0", ComponentClass.AGGREGATING,
            LogNormal(ms(1.5), 0.4), _scaled(3, s),
        ),
    ]
    return OnlineService("pipeline-deep", ServiceTopology(stages))


PIPELINE_DEEP = register_scenario(
    ScenarioSpec(
        name="pipeline-deep",
        description=(
            "five-stage sequential pipeline (ingest -> parse -> "
            "transform x2 -> store); latency is a pure sum of stage "
            "sojourns"
        ),
        build=_build_pipeline,
        runner_defaults={"n_nodes": 12},
        # Full-scale: triple the chain's width on a cluster sized by
        # the same one-node-per-~3-components rule as the defaults.
        paper_scale={"n_nodes": 36, "scale": 3.0},
        tags=("pipeline", "sequential"),
    )
)


# ----------------------------------------------------------------------
# fanout-feed (wide fan-out, heavy-tailed shards)
# ----------------------------------------------------------------------
def _build_fanout(config: "RunnerConfig") -> OnlineService:
    s = config.scale
    n_shards = _scaled(24, s, floor=2)
    shard_dist = Pareto(xm=ms(1.2), alpha=2.2)  # mean 2.2 ms, SCV ~ 2.3
    gateway = _shared_stage(
        "gateway", "gateway-g0", ComponentClass.SEGMENTING,
        LogNormal(ms(0.6), 0.3), _scaled(4, s),
    )
    shards = Stage(
        name="timelines",
        groups=[
            ReplicaGroup(
                name=f"timeline-g{g:02d}",
                components=[
                    _component(
                        ComponentClass.SEARCHING,
                        f"timeline-g{g:02d}-r{r}",
                        shard_dist,
                    )
                    for r in range(3)
                ],
            )
            for g in range(n_shards)
        ],
    )
    blend = _shared_stage(
        "rank-blend", "rank-blend-g0", ComponentClass.AGGREGATING,
        LogNormal(ms(1.8), 0.5), _scaled(5, s),
    )
    return OnlineService("fanout-feed", ServiceTopology([gateway, shards, blend]))


FANOUT_FEED = register_scenario(
    ScenarioSpec(
        name="fanout-feed",
        description=(
            "wide fan-out social-feed service (gateway -> heavy-tailed "
            "timeline shards -> rank/blend); overall latency is "
            "tail-dominated by the stage max"
        ),
        build=_build_fanout,
        generator=GeneratorConfig(
            jobs_per_node_per_s=0.015, max_batch_jobs_per_node=4
        ),
        runner_defaults={"n_nodes": 24},
        # Full-scale: twice the shard fan-out (48 heavy-tailed groups).
        paper_scale={"n_nodes": 56, "scale": 2.0},
        tags=("fan-out", "heavy-tail"),
    )
)


# ----------------------------------------------------------------------
# diamond-search (DAG: parallel branches, an optional stage, a skip edge)
# ----------------------------------------------------------------------
#: Component count of the unscaled diamond shape (parse + web shards +
#: ads + blend) — pinned to the built service by a scenarios test so
#: the sizing rule below can never drift from the real topology.
DIAMOND_COMPONENTS = 3 + 6 * 3 + 3 + 4


def _build_diamond(config: "RunnerConfig") -> OnlineService:
    s = config.scale
    parse = _shared_stage(
        "parse", "parse-g0", ComponentClass.SEGMENTING,
        LogNormal(ms(0.9), 0.3), _scaled(3, s),
    )
    web = Stage(
        name="web",
        groups=[
            ReplicaGroup(
                name=f"web-g{g:02d}",
                components=[
                    _component(
                        ComponentClass.SEARCHING,
                        f"web-g{g:02d}-r{r}",
                        LogNormal(ms(3.2), 0.6),
                    )
                    for r in range(3)
                ],
            )
            for g in range(_scaled(6, s, floor=2))
        ],
        predecessors=("parse",),
    )
    ads = _shared_stage(
        "ads", "ads-g0", ComponentClass.GENERIC,
        LogNormal(ms(2.4), 0.5), _scaled(3, s),
        predecessors=("parse",), participation=0.65,
    )
    blend = _shared_stage(
        "blend", "blend-g0", ComponentClass.AGGREGATING,
        LogNormal(ms(1.6), 0.4), _scaled(4, s),
        # parse -> blend is a structural skip edge. The mandatory web
        # branch always dominates it (completion(web) >= completion
        # (parse)), so it never gates the join here — it exercises the
        # skip-edge machinery end to end; branchy-api is the scenario
        # where the skip edge genuinely binds (both branches optional).
        predecessors=("parse", "web", "ads"),
    )
    return OnlineService(
        "diamond-search", ServiceTopology([parse, web, ads, blend])
    )


DIAMOND_SEARCH = register_scenario(
    ScenarioSpec(
        name="diamond-search",
        description=(
            "DAG search service (parse -> {web shards || optional ads} "
            "-> blend, with a parse->blend skip edge); latency is the "
            "critical path over the stage DAG"
        ),
        build=_build_diamond,
        runner_defaults={"n_nodes": suggested_n_nodes(DIAMOND_COMPONENTS)},
        paper_scale={
            "n_nodes": suggested_n_nodes(3 * DIAMOND_COMPONENTS),
            "scale": 3.0,
        },
        tags=("dag", "fan-out", "skip-edge"),
    )
)


# ----------------------------------------------------------------------
# branchy-api (DAG: probabilistic optional stages behind a gateway)
# ----------------------------------------------------------------------
#: Unscaled branchy shape (gateway + profile + 2 recs groups + render).
BRANCHY_COMPONENTS = 3 + 3 + 2 * 2 + 3


def _build_branchy(config: "RunnerConfig") -> OnlineService:
    s = config.scale
    gateway = _shared_stage(
        "gateway", "gateway-g0", ComponentClass.SEGMENTING,
        LogNormal(ms(0.7), 0.3), _scaled(3, s),
    )
    profile = _shared_stage(
        "profile", "profile-g0", ComponentClass.GENERIC,
        LogNormal(ms(2.2), 0.5), _scaled(3, s),
        predecessors=("gateway",), participation=0.85,
    )
    recs = Stage(
        name="recs",
        groups=[
            ReplicaGroup(
                name=f"recs-g{g}",
                components=[
                    _component(
                        ComponentClass.SEARCHING,
                        f"recs-g{g}-r{r}",
                        LogNormal(ms(3.0), 0.7),
                    )
                    for r in range(2)
                ],
                participation=0.5,
            )
            for g in range(_scaled(2, s, floor=1))
        ],
        predecessors=("gateway",),
    )
    render = _shared_stage(
        "render", "render-g0", ComponentClass.AGGREGATING,
        LogNormal(ms(1.4), 0.4), _scaled(3, s),
        # gateway -> render is the skip edge: requests that skipped
        # both optional branches still render straight away.
        predecessors=("gateway", "profile", "recs"),
    )
    return OnlineService(
        "branchy-api", ServiceTopology([gateway, profile, recs, render])
    )


BRANCHY_API = register_scenario(
    ScenarioSpec(
        name="branchy-api",
        description=(
            "probabilistically branched API backend (gateway -> "
            "{optional profile || optional recs} -> render, gateway->"
            "render skip edge); per-request Bernoulli branch draws"
        ),
        build=_build_branchy,
        runner_defaults={"n_nodes": suggested_n_nodes(BRANCHY_COMPONENTS)},
        paper_scale={
            "n_nodes": suggested_n_nodes(3 * BRANCHY_COMPONENTS),
            "scale": 3.0,
        },
        tags=("dag", "optional-stages", "skip-edge"),
    )
)


# ----------------------------------------------------------------------
# mixed-frontend (request classes over a three-branch DAG)
# ----------------------------------------------------------------------
#: Unscaled mixed-frontend shape (gateway + 4 search shard groups +
#: image + suggest + blend) — pinned to the built service by a test.
MIXED_FRONTEND_COMPONENTS = 3 + 4 * 3 + 3 + 2 + 4

#: The shard *group count* is deliberately scale-independent: the
#: request classes below override these groups by name, and a name
#: list baked into a frozen spec cannot track a scaled group count.
#: ``config.scale`` widens the replica counts inside each group.
_MIXED_SEARCH_GROUPS = 4


def _build_mixed(config: "RunnerConfig") -> OnlineService:
    s = config.scale
    search_dist = LogNormal(ms(3.0), 0.6)
    gateway = _shared_stage(
        "gateway", "gateway-g0", ComponentClass.SEGMENTING,
        LogNormal(ms(0.8), 0.3), _scaled(3, s),
    )
    search = Stage(
        name="search",
        groups=[
            ReplicaGroup(
                name=f"search-g{g:02d}",
                components=[
                    _component(
                        ComponentClass.SEARCHING,
                        f"search-g{g:02d}-r{r}",
                        search_dist,
                    )
                    for r in range(_scaled(3, s))
                ],
            )
            for g in range(_MIXED_SEARCH_GROUPS)
        ],
        predecessors=("gateway",),
    )
    image = _shared_stage(
        "image", "image-g0", ComponentClass.GENERIC,
        LogNormal(ms(4.5), 0.7), _scaled(3, s),
        predecessors=("gateway",), participation=0.5,
    )
    # Suggest is a prefix search against the suggestion index — same
    # component class (and base distribution) as the shards, per the
    # one-profiling-campaign-per-class homogeneity rule.  Autocomplete
    # requests reach it cheap through their 0.5x class service scale.
    suggest = _shared_stage(
        "suggest", "suggest-g0", ComponentClass.SEARCHING,
        search_dist, _scaled(2, s),
        predecessors=("gateway",),
    )
    blend = _shared_stage(
        "blend", "blend-g0", ComponentClass.AGGREGATING,
        LogNormal(ms(1.5), 0.4), _scaled(4, s),
        # Every class keeps at least one branch mandatory, so unlike
        # branchy-api the join needs no gateway->blend skip edge:
        # class-skipped branch stages pass through at their
        # predecessor's completion time.
        predecessors=("search", "image", "suggest"),
    )
    return OnlineService(
        "mixed-frontend",
        ServiceTopology([gateway, search, image, suggest, blend]),
    )


MIXED_FRONTEND = register_scenario(
    ScenarioSpec(
        name="mixed-frontend",
        description=(
            "class-mixed frontend (gateway -> {search shards || optional "
            "image || suggest} -> blend); three request classes restrict "
            "the DAG and rescale service demand per class"
        ),
        build=_build_mixed,
        runner_defaults={
            "n_nodes": suggested_n_nodes(MIXED_FRONTEND_COMPONENTS)
        },
        paper_scale={
            "n_nodes": suggested_n_nodes(3 * MIXED_FRONTEND_COMPONENTS),
            "scale": 3.0,
        },
        tags=("dag", "classes", "optional-stages"),
        request_classes=(
            # Full search: shards always, image on its topology-default
            # coin flip, never the suggest branch.
            RequestClass(
                "search", weight=0.6,
                participation={"suggest-g0": 0.0},
            ),
            # Keystroke autocomplete: suggest only, half the demand.
            RequestClass(
                "autocomplete", weight=0.3, service_scale=0.5,
                participation={
                    **{
                        f"search-g{g:02d}": 0.0
                        for g in range(_MIXED_SEARCH_GROUPS)
                    },
                    "image-g0": 0.0,
                    "suggest-g0": 1.0,
                },
            ),
            # Image-heavy search: image mandatory, 1.6x the demand.
            RequestClass(
                "image-heavy", weight=0.1, service_scale=1.6,
                participation={"image-g0": 1.0, "suggest-g0": 0.0},
            ),
        ),
    )
)
