"""Import Alibaba-style microservice call graphs as scenarios.

The cluster-trace-microservices releases describe a request's journey
as a *call graph*: microservice nodes and caller → callee edges.  This
module turns a JSON description in that spirit into a registered
:class:`~repro.scenarios.spec.ScenarioSpec`, so a production-shaped
topology rides the same harness (runner, sweep, figures, CLI) as the
hand-built catalog.

Input schema (one JSON object)::

    {
      "name": "alibaba-msXXXX",
      "description": "optional catalog line",
      "services": {
        "<node>": {
          "mean_service_ms": 3.0,      # required, > 0
          "scv": 0.6,                  # optional, default 0.5
          "replicas": 3,               # optional, default 2
          "class": "searching",        # optional ComponentClass name,
                                       # default "generic"
          "participation": 1.0         # optional, (0, 1]
        }, ...
      },
      "edges": [["caller", "callee"], ...],
      "classes": [                     # optional request classes
        {"name": "api", "weight": 0.7, "service_scale": 1.0,
         "participation": {"<node>": 0.0, ...}}, ...
      ]
    }

Each node becomes one stage holding one load-shared replica group (the
group is named after the node, so class ``participation`` overrides
address nodes directly); edges become stage predecessors.  Stages are
ordered by a deterministic Kahn topological sort — ties resolve in
``services`` declaration order — because
:class:`~repro.service.topology.ServiceTopology` requires predecessors
to appear earlier in the stage list.  Service times are LogNormal
(mean, SCV), the same family the built-ins use; per-class resource
demands come from the built-in footprint table so the scheduler has
real vectors to balance.

The call graph must have exactly one entry node (requests enter at the
frontend) — multi-rooted graphs are rejected rather than silently
merged.  Cycles (retry loops in real traces) are rejected too: the
simulators model acyclic request DAGs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.scenarios.builtin import _component, _scaled
from repro.scenarios.spec import (
    ScenarioSpec,
    register_scenario,
    suggested_n_nodes,
)
from repro.service.component import ComponentClass
from repro.service.service import OnlineService
from repro.service.topology import (
    ReplicaGroup,
    RequestClass,
    ServiceTopology,
    Stage,
)
from repro.simcore.distributions import LogNormal
from repro.units import ms

__all__ = ["load_callgraph", "scenario_from_callgraph"]

_CLASS_NAMES = {c.name.lower(): c for c in ComponentClass}


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise ConfigurationError(message)


def load_callgraph(
    source: Union[str, Path, Mapping[str, object]],
) -> Dict[str, object]:
    """Parse and validate one call-graph description.

    ``source`` is a path to a JSON file or an already-parsed mapping.
    Returns a normalised dict with keys ``name``, ``description``,
    ``services`` (declaration-ordered), ``edges`` and ``classes``;
    raises :class:`~repro.errors.ConfigurationError` on every schema
    violation (missing nodes, dangling edges, cycles, multiple entry
    nodes, bad numbers) so callers never build half a topology.
    """
    if isinstance(source, (str, Path)):
        try:
            payload = json.loads(Path(source).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read call graph {source}: {exc}"
            ) from exc
    else:
        payload = dict(source)
    _require(isinstance(payload, dict), "call graph must be a JSON object")

    name = payload.get("name")
    _require(
        isinstance(name, str) and bool(name),
        "call graph needs a non-empty 'name'",
    )
    services = payload.get("services")
    _require(
        isinstance(services, dict) and bool(services),
        f"call graph {name!r} needs a non-empty 'services' mapping",
    )
    normalised: Dict[str, Dict[str, object]] = {}
    for node, attrs in services.items():
        _require(
            isinstance(attrs, dict),
            f"call graph {name!r} service {node!r} must be an object",
        )
        mean = attrs.get("mean_service_ms")
        _require(
            isinstance(mean, (int, float)) and mean > 0,
            f"service {node!r} needs mean_service_ms > 0",
        )
        scv = attrs.get("scv", 0.5)
        _require(
            isinstance(scv, (int, float)) and scv > 0,
            f"service {node!r} scv must be > 0",
        )
        replicas = attrs.get("replicas", 2)
        _require(
            isinstance(replicas, int) and replicas >= 1,
            f"service {node!r} replicas must be an int >= 1",
        )
        cls_name = str(attrs.get("class", "generic")).lower()
        _require(
            cls_name in _CLASS_NAMES,
            f"service {node!r} class {cls_name!r} unknown "
            f"(one of {sorted(_CLASS_NAMES)})",
        )
        participation = attrs.get("participation", 1.0)
        _require(
            isinstance(participation, (int, float))
            and 0 < participation <= 1,
            f"service {node!r} participation must lie in (0, 1]",
        )
        normalised[node] = {
            "mean_service_ms": float(mean),
            "scv": float(scv),
            "replicas": int(replicas),
            "class": _CLASS_NAMES[cls_name],
            "participation": float(participation),
        }

    edges_raw = payload.get("edges", [])
    _require(
        isinstance(edges_raw, list),
        f"call graph {name!r} 'edges' must be a list of [caller, callee]",
    )
    edges: List[Tuple[str, str]] = []
    seen_edges = set()
    for e in edges_raw:
        _require(
            isinstance(e, (list, tuple)) and len(e) == 2,
            f"call graph {name!r} edge {e!r} must be [caller, callee]",
        )
        caller, callee = str(e[0]), str(e[1])
        for endpoint in (caller, callee):
            _require(
                endpoint in normalised,
                f"call graph {name!r} edge references unknown service "
                f"{endpoint!r}",
            )
        _require(caller != callee, f"self-call on {caller!r}")
        if (caller, callee) not in seen_edges:
            seen_edges.add((caller, callee))
            edges.append((caller, callee))

    classes_raw = payload.get("classes", [])
    _require(
        isinstance(classes_raw, list),
        f"call graph {name!r} 'classes' must be a list",
    )
    classes: List[RequestClass] = []
    for c in classes_raw:
        _require(
            isinstance(c, dict) and isinstance(c.get("name"), str),
            f"call graph {name!r} class entries need a 'name'",
        )
        part = c.get("participation", {})
        _require(
            isinstance(part, dict),
            f"class {c['name']!r} participation must be a mapping",
        )
        unknown = set(part) - set(normalised)
        _require(
            not unknown,
            f"class {c['name']!r} participation names unknown services "
            f"{sorted(unknown)}",
        )
        # RequestClass validates weight/scale/participation ranges.
        classes.append(
            RequestClass(
                name=c["name"],
                weight=float(c.get("weight", 1.0)),
                service_scale=float(c.get("service_scale", 1.0)),
                participation={g: float(p) for g, p in part.items()},
            )
        )

    return {
        "name": name,
        "description": str(
            payload.get("description", f"imported call graph {name}")
        ),
        "services": normalised,
        "edges": edges,
        "classes": tuple(classes),
    }


def _topological_order(
    nodes: Sequence[str], edges: Sequence[Tuple[str, str]], name: str
) -> List[str]:
    """Deterministic Kahn sort; declaration order breaks ties."""
    indegree = {n: 0 for n in nodes}
    for _, callee in edges:
        indegree[callee] += 1
    order: List[str] = []
    ready = [n for n in nodes if indegree[n] == 0]
    _require(
        len(ready) >= 1,
        f"call graph {name!r} has no entry service (cycle through "
        "every node)",
    )
    _require(
        len(ready) == 1,
        f"call graph {name!r} must have exactly one entry service, "
        f"found {sorted(ready)}",
    )
    successors: Dict[str, List[str]] = {n: [] for n in nodes}
    for caller, callee in edges:
        successors[caller].append(callee)
    declared = {n: i for i, n in enumerate(nodes)}
    while ready:
        node = ready.pop(0)
        order.append(node)
        newly = []
        for callee in successors[node]:
            indegree[callee] -= 1
            if indegree[callee] == 0:
                newly.append(callee)
        ready.extend(sorted(newly, key=declared.__getitem__))
        ready.sort(key=declared.__getitem__)
    _require(
        len(order) == len(nodes),
        f"call graph {name!r} contains a cycle through "
        f"{sorted(set(nodes) - set(order))}",
    )
    return order


def scenario_from_callgraph(
    source: Union[str, Path, Mapping[str, object]],
    register: bool = True,
    replace_existing: bool = False,
) -> ScenarioSpec:
    """Build (and by default register) a scenario from a call graph.

    The builder closes over the parsed graph: each invocation rebuilds
    the topology under the config's ``scale`` (replica counts scale,
    the graph shape does not — class participation addresses nodes by
    name).  Returns the :class:`~repro.scenarios.spec.ScenarioSpec`;
    with ``register=False`` the spec is only returned, for callers that
    manage their own registry lifetime (tests).
    """
    graph = load_callgraph(source)
    node_order = _topological_order(
        list(graph["services"]), graph["edges"], graph["name"]
    )
    predecessors: Dict[str, List[str]] = {n: [] for n in node_order}
    for caller, callee in graph["edges"]:
        predecessors[callee].append(caller)
    services = graph["services"]
    n_components = sum(s["replicas"] for s in services.values())

    def build(config) -> OnlineService:
        stages = []
        for node in node_order:
            attrs = services[node]
            dist = LogNormal(ms(attrs["mean_service_ms"]), attrs["scv"])
            stages.append(
                Stage(
                    name=node,
                    groups=[
                        ReplicaGroup(
                            name=node,
                            components=[
                                _component(
                                    attrs["class"], f"{node}-r{r}", dist
                                )
                                for r in range(
                                    _scaled(attrs["replicas"], config.scale)
                                )
                            ],
                            participation=attrs["participation"],
                        )
                    ],
                    predecessors=tuple(predecessors[node]),
                )
            )
        return OnlineService(graph["name"], ServiceTopology(stages))

    tags = ("callgraph", "dag")
    if graph["classes"]:
        tags += ("classes",)
    spec = ScenarioSpec(
        name=graph["name"],
        description=graph["description"],
        build=build,
        runner_defaults={"n_nodes": suggested_n_nodes(n_components)},
        paper_scale={
            "n_nodes": suggested_n_nodes(3 * n_components),
            "scale": 3.0,
        },
        tags=tags,
        request_classes=graph["classes"],
    )
    if register:
        register_scenario(spec, replace_existing=replace_existing)
    return spec
