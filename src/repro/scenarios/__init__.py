"""Workload scenarios: pluggable service topologies for the harness.

The paper evaluates PCS on exactly one service — the Fig. 1 Nutch-like
search topology.  This package generalises that singularity into a
registry of named :class:`~repro.scenarios.spec.ScenarioSpec` bundles
(service builder + workload/interference profile + runner defaults +
metadata) so every experiment layer — :class:`~repro.sim.runner.
ExperimentRunner`, the sweep subsystem, the figure drivers and the CLI
— runs any registered scenario by name.

Scenario catalog
----------------
``nutch-search`` (default)
    The paper's three-stage search service: one segmenting group, a
    shard fan-out of searching groups, one aggregating group.  Shape
    comes from ``RunnerConfig.nutch`` (a
    :class:`~repro.service.nutch.NutchConfig`); results are
    bit-identical to the pre-scenario harness.

``pipeline-deep``
    A five-stage sequential pipeline (ingest → parse → transform ×2 →
    store), one load-shared group per stage.  With no intra-stage
    fan-out, overall latency is a pure sum of stage sojourns — a
    straggler cannot hide behind a faster sibling group, which stresses
    migration-based mitigation very differently from the search
    topology.

``fanout-feed``
    A wide fan-out social-feed service: gateway → ~24 heavy-tailed
    timeline-shard groups (Pareto service times, α = 2.2) → rank/blend.
    The stage max over dozens of heavy-tailed groups makes the overall
    latency tail-dominated; redundancy's min-of-k is strongest here at
    light load and collapses hardest under its own induced load.

``diamond-search``
    A request **DAG**: parse fans out to parallel web-shard and
    optional ads branches, joined by a blend stage with a
    parse → blend skip edge.  Overall latency is the critical path
    over the stage DAG (chains are the degenerate case).

``branchy-api``
    A probabilistically branched API backend: optional profile and
    recommendation stages (per-request Bernoulli draws) behind a
    gateway, joined by a render stage reachable by a skip edge.

``mixed-frontend``
    The **request-class** showcase: three parallel branch stages
    (search shards, optional image lookup, suggest) behind a gateway,
    with three declared request classes (``search``/``autocomplete``/
    ``image-heavy``) that restrict the DAG and rescale service demand
    per class.  Runs report per-class latency summaries alongside the
    pooled ones; ``--classes`` re-weights the mix from the CLI.

Non-Nutch shapes scale with ``RunnerConfig.scale`` (group/replica
counts are multiplied and rounded), so tests and quick CLI runs shrink
a scenario without registering a new one.  ``repro-pcs scenarios``
prints this catalog with live topology summaries (DAG scenarios show
their stage predecessors and optional-group counts; classed scenarios
append their class table).

Importing a scenario
--------------------
:mod:`repro.scenarios.callgraph` turns an Alibaba-style call-graph
JSON edge list into a registered scenario
(:func:`~repro.scenarios.callgraph.scenario_from_callgraph`), so real
production traces can ride the same harness as the hand-built shapes.

Adding a scenario
-----------------
1. Write a builder ``def build(config: RunnerConfig) -> OnlineService``
   that deterministically constructs the topology (unique component
   names; classes homogeneous — every component of a class shares one
   base distribution, so §VI-D's one-profiling-campaign-per-class
   argument keeps holding).  Give components resource demands or the
   scheduler has nothing to balance.
2. Register it::

       from repro.scenarios import ScenarioSpec, register_scenario

       register_scenario(ScenarioSpec(
           name="my-service",
           description="one line for the catalog",
           build=build,
           runner_defaults={"n_nodes": 16},
       ))

3. Run it anywhere a scenario name is accepted: ``RunnerConfig(
   scenario="my-service")``, ``repro-pcs sweep --scenario my-service``,
   ``Fig6Config(scenario="my-service")``.  Sweep caches record the name
   in their manifest, so aggregation and provenance work unchanged.

Registration is import-time: built-ins register when this package
imports; put third-party registrations in your own module and import it
before resolving names (worker processes re-import
:mod:`repro.scenarios`, so built-ins always resolve; third-party
scenarios must be importable from the worker too, i.e. live in a real
module rather than a notebook cell).
"""

from repro.scenarios.spec import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    suggested_n_nodes,
)
from repro.scenarios import builtin as _builtin  # noqa: F401  (registers built-ins)
from repro.scenarios.builtin import (
    BRANCHY_API,
    DIAMOND_SEARCH,
    FANOUT_FEED,
    MIXED_FRONTEND,
    NUTCH_SEARCH,
    PIPELINE_DEEP,
)
from repro.scenarios.callgraph import (
    load_callgraph,
    scenario_from_callgraph,
)

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "suggested_n_nodes",
    "load_callgraph",
    "scenario_from_callgraph",
    "NUTCH_SEARCH",
    "PIPELINE_DEEP",
    "FANOUT_FEED",
    "DIAMOND_SEARCH",
    "BRANCHY_API",
    "MIXED_FRONTEND",
]
