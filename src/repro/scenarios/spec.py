"""The :class:`ScenarioSpec` descriptor and its named registry.

A *scenario* bundles everything one workload-under-study needs to run
end to end through the experiment harness:

- a **service builder** — ``build(config) -> OnlineService`` receiving
  the resolved :class:`~repro.sim.runner.RunnerConfig` (builders read
  the config's shape knobs: ``config.nutch`` for the paper topology,
  ``config.scale`` for the generic size multiplier);
- a **workload/interference profile** — the batch-churn
  :class:`~repro.workloads.generator.GeneratorConfig` and the
  interference-model noise that scenario is studied under;
- **runner defaults** — the :class:`~repro.sim.runner.RunnerConfig`
  field overrides (cluster size, interval length, ...) that make the
  scenario well-posed out of the box;
- **metadata** — description and tags for the CLI catalog.

Scenarios are referenced *by name* everywhere configs are hashed,
pickled or cached (``RunnerConfig.scenario``, the sweep manifest): the
registry is the single mapping from name to builder, so worker
processes and cache readers resolve identically to the submitting
process.  Registration happens at import time (built-ins in
:mod:`repro.scenarios.builtin`; third parties call
:func:`register_scenario` from their own module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.workloads.generator import GeneratorConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.service import OnlineService
    from repro.sim.runner import RunnerConfig

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
]


def _default_generator() -> GeneratorConfig:
    """The harness-wide default batch-churn profile."""
    return GeneratorConfig(jobs_per_node_per_s=0.01, max_batch_jobs_per_node=3)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload scenario: topology + workload + defaults.

    ``build`` must be deterministic: the same config object yields the
    same service (same component names, classes, base distributions),
    because workers rebuild the service from the config independently
    and their results must be bit-identical.
    """

    name: str
    description: str
    build: Callable[["RunnerConfig"], "OnlineService"]
    generator: GeneratorConfig = field(default_factory=_default_generator)
    interference_noise: float = 0.02
    #: RunnerConfig field overrides that make the scenario well-posed
    #: by default (e.g. ``{"n_nodes": 24}``).
    runner_defaults: Mapping[str, object] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not callable(self.build):
            raise ConfigurationError(
                f"scenario {self.name!r} build must be callable"
            )
        if self.interference_noise < 0:
            raise ConfigurationError("interference_noise must be >= 0")
        unknown = set(self.runner_defaults) & {"scenario"}
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} runner_defaults may not override "
                f"{sorted(unknown)}"
            )

    # ------------------------------------------------------------------
    # config construction
    # ------------------------------------------------------------------
    def runner_config(self, **overrides) -> "RunnerConfig":
        """A :class:`~repro.sim.runner.RunnerConfig` for this scenario.

        Starts from the runner's defaults, applies the scenario's
        ``generator``/``interference_noise``/``runner_defaults``, then
        the caller's ``overrides`` (which win).
        """
        from repro.sim.runner import RunnerConfig  # late: layering

        kwargs: Dict[str, object] = {
            "scenario": self.name,
            "generator": self.generator,
            "interference_noise": self.interference_noise,
        }
        kwargs.update(self.runner_defaults)
        kwargs.update(overrides)
        return RunnerConfig(**kwargs)

    def build_service(self, config: "RunnerConfig") -> "OnlineService":
        """Build the scenario's service for one resolved config."""
        service = self.build(config)
        if service.name != self.name:
            # Keep service identity aligned with the registry name so
            # logs/tables can always be traced back to the scenario.
            service.name = self.name
        return service

    def describe(self, config: "RunnerConfig" = None) -> str:
        """One catalog line: topology summary + description."""
        cfg = config if config is not None else self.runner_config()
        topo = self.build_service(cfg).topology
        return (
            f"{self.name}: {topo.describe()} "
            f"({topo.n_components} components) — {self.description}"
        )


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace_existing: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (returns it for chaining).

    Names are unique; pass ``replace_existing=True`` to shadow a
    built-in (e.g. a test doubling a scenario's scale).
    """
    if spec.name in _REGISTRY and not replace_existing:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered "
            "(pass replace_existing=True to shadow it)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name; unknown names list the catalog."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r} (registered: "
            f"{', '.join(sorted(_REGISTRY)) or 'none'})"
        ) from None


def scenario_names() -> List[str]:
    """Registered names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]
