"""The :class:`ScenarioSpec` descriptor and its named registry.

A *scenario* bundles everything one workload-under-study needs to run
end to end through the experiment harness:

- a **service builder** — ``build(config) -> OnlineService`` receiving
  the resolved :class:`~repro.sim.runner.RunnerConfig` (builders read
  the config's shape knobs: ``config.nutch`` for the paper topology,
  ``config.scale`` for the generic size multiplier);
- a **workload/interference profile** — the batch-churn
  :class:`~repro.workloads.generator.GeneratorConfig` and the
  interference-model noise that scenario is studied under;
- **runner defaults** — the :class:`~repro.sim.runner.RunnerConfig`
  field overrides (cluster size, interval length, ...) that make the
  scenario well-posed out of the box;
- **metadata** — description and tags for the CLI catalog.

Scenarios are referenced *by name* everywhere configs are hashed,
pickled or cached (``RunnerConfig.scenario``, the sweep manifest): the
registry is the single mapping from name to builder, so worker
processes and cache readers resolve identically to the submitting
process.  Registration happens at import time (built-ins in
:mod:`repro.scenarios.builtin`; third parties call
:func:`register_scenario` from their own module).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.service.topology import RequestClass
from repro.workloads.generator import GeneratorConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.service.service import OnlineService
    from repro.sim.runner import RunnerConfig

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "suggested_n_nodes",
]


def _default_generator() -> GeneratorConfig:
    """The harness-wide default batch-churn profile."""
    return GeneratorConfig(jobs_per_node_per_s=0.01, max_batch_jobs_per_node=3)


def suggested_n_nodes(
    n_components: int, components_per_node: float = 3.0, floor: int = 8
) -> int:
    """Scenario-aware cluster sizing from the component count.

    The built-in scenarios' hand-picked ``n_nodes`` constants cluster
    around one node per ~3 components — enough spare slots that the
    scheduler has somewhere to migrate *to*, few enough that batch-job
    interference still bites.  New scenarios derive their default from
    this rule instead of inventing another constant; the ``floor``
    keeps tiny topologies on clusters large enough for churn to matter.
    """
    if n_components < 1:
        raise ConfigurationError("n_components must be >= 1")
    if components_per_node <= 0:
        raise ConfigurationError("components_per_node must be positive")
    return max(floor, math.ceil(n_components / components_per_node))


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload scenario: topology + workload + defaults.

    ``build`` must be deterministic: the same config object yields the
    same service (same component names, classes, base distributions),
    because workers rebuild the service from the config independently
    and their results must be bit-identical.
    """

    name: str
    description: str
    build: Callable[["RunnerConfig"], "OnlineService"]
    generator: GeneratorConfig = field(default_factory=_default_generator)
    interference_noise: float = 0.02
    #: RunnerConfig field overrides that make the scenario well-posed
    #: by default (e.g. ``{"n_nodes": 24}``).
    runner_defaults: Mapping[str, object] = field(default_factory=dict)
    #: Paper-scale preset: the shape/size overrides a full-scale
    #: (``--scale paper``) run of *this* scenario uses — e.g.
    #: ``{"n_nodes": 30}`` for the paper's Nutch setup, or a larger
    #: ``scale`` multiplier for the synthetic scenarios.  Scenarios
    #: without a preset make ``Fig6Config(paper_scale=True)`` raise a
    #: named :class:`~repro.errors.ConfigurationError` instead of
    #: silently inheriting the Nutch-shaped constants.
    paper_scale: Mapping[str, object] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    #: Request classes the scenario's workload mixes
    #: (:class:`~repro.service.topology.RequestClass`).  Empty — the
    #: paper's homogeneous population — keeps every run on the exact
    #: pre-class code path.  The runner resolves these against the
    #: built topology (``ServiceTopology.resolve_classes``), optionally
    #: re-weighted by ``RunnerConfig.class_mix``.
    request_classes: Tuple[RequestClass, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if not callable(self.build):
            raise ConfigurationError(
                f"scenario {self.name!r} build must be callable"
            )
        if self.interference_noise < 0:
            raise ConfigurationError("interference_noise must be >= 0")
        class_names = [c.name for c in self.request_classes]
        if len(set(class_names)) != len(class_names):
            raise ConfigurationError(
                f"scenario {self.name!r} declares duplicate request "
                f"class names {class_names}"
            )
        for label, mapping in (
            ("runner_defaults", self.runner_defaults),
            ("paper_scale", self.paper_scale),
        ):
            unknown = set(mapping) & {"scenario"}
            if unknown:
                raise ConfigurationError(
                    f"scenario {self.name!r} {label} may not override "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # config construction
    # ------------------------------------------------------------------
    def runner_config(self, **overrides) -> "RunnerConfig":
        """A :class:`~repro.sim.runner.RunnerConfig` for this scenario.

        Starts from the runner's defaults, applies the scenario's
        ``generator``/``interference_noise``/``runner_defaults``, then
        the caller's ``overrides`` (which win).
        """
        from repro.sim.runner import RunnerConfig  # late: layering

        kwargs: Dict[str, object] = {
            "scenario": self.name,
            "generator": self.generator,
            "interference_noise": self.interference_noise,
        }
        kwargs.update(self.runner_defaults)
        kwargs.update(overrides)
        return RunnerConfig(**kwargs)

    def build_service(self, config: "RunnerConfig") -> "OnlineService":
        """Build the scenario's service for one resolved config."""
        service = self.build(config)
        if service.name != self.name:
            # Keep service identity aligned with the registry name so
            # logs/tables can always be traced back to the scenario.
            service.name = self.name
        return service

    def describe(self, config: "RunnerConfig" = None) -> str:
        """One catalog line: topology summary + description.

        Mixed-class scenarios append their class table (name, mix
        weight, service scale, per-group participation overrides);
        class-free scenarios render exactly as before (golden-pinned).
        """
        cfg = config if config is not None else self.runner_config()
        topo = self.build_service(cfg).topology
        line = (
            f"{self.name}: {topo.describe()} "
            f"({topo.n_components} components) — {self.description}"
        )
        if self.request_classes:
            resolved = topo.resolve_classes(self.request_classes)
            if resolved is not None:
                line += f" | classes: {resolved.describe()}"
        return line


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace_existing: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (returns it for chaining).

    Names are unique; pass ``replace_existing=True`` to shadow a
    built-in (e.g. a test doubling a scenario's scale).
    """
    if spec.name in _REGISTRY and not replace_existing:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered "
            "(pass replace_existing=True to shadow it)"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name; unknown names list the catalog."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r} (registered: "
            f"{', '.join(sorted(_REGISTRY)) or 'none'})"
        ) from None


def scenario_names() -> List[str]:
    """Registered names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]
