"""Fig. 5 — prediction accuracy of the performance model (§VI-B).

The paper's campaign: a searching component co-located with one Hadoop
or Spark job per test; Hadoop jobs at 20 input sizes (50 MB–4 GB),
Spark jobs at 10 sizes (200 MB–7 GB).  *"In each test, we trained the
regression models based on the historical running information and
predicted the component's service [time] using the constructed
models"* — i.e. one Eq. 1 model per workload type, trained on that
type's history and evaluated on held-out observations of each size.

Reported exactly like the paper: the per-(workload, size) percentage
error, the fraction of cases under 3 %/5 %/8 %, and the overall mean
error (paper: 63.33 %, 82.22 %, 96.67 % and 2.68 %).

The six per-workload campaigns are independent, each drawing from its
own named :class:`~repro.rng.RngRegistry` stream, and run through
:func:`repro.sim.sweep.parallel_map` — so ``workers=N`` parallelises
the campaign without changing a single number (results are
worker-count-independent by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.interference.ground_truth import default_interference_model
from repro.model.combined import CombinedServiceTimeModel
from repro.model.training import TrainingSet, error_buckets
from repro.rng import RngRegistry
from repro.scenarios import get_scenario
from repro.service.component import Component, ComponentClass
from repro.sim.profiling import ProfilingConfig, observe_condition
from repro.sim.sweep import parallel_map
from repro.simcore.distributions import LogNormal
from repro.units import gb, mb, ms
from repro.workloads.batch import BatchJobSpec
from repro.experiments.report import render_table

__all__ = ["Fig5Config", "Fig5Case", "Fig5Result", "run_fig5", "PAPER_FIG5"]

#: The paper's reported numbers for the same experiment.
PAPER_FIG5 = {
    "mape": 2.68,
    "buckets": {3.0: 0.6333, 5.0: 0.8222, 8.0: 0.9667},
}

HADOOP_WORKLOADS = ("hadoop.bayes", "hadoop.wordcount", "hadoop.pageindex")
SPARK_WORKLOADS = ("spark.bayes", "spark.wordcount", "spark.sort")


@dataclass(frozen=True)
class Fig5Config:
    """Shape of the prediction-accuracy campaign."""

    n_hadoop_sizes: int = 20
    n_spark_sizes: int = 10
    train_windows: int = 3
    test_windows: int = 1
    window_s: float = 60.0
    request_rate: float = 50.0
    interference_noise: float = 0.02
    search_mean_s: float = ms(3.5)
    search_scv: float = 0.5
    seed: int = 0
    #: Which scenario's hot class the campaign profiles.  The default
    #: keeps the paper's setup: a synthetic searching component shaped
    #: by ``search_mean_s``/``search_scv`` (bit-identical to the
    #: pre-scenario driver).  Any other registered name profiles that
    #: scenario's most numerous component class instead.
    scenario: str = "nutch-search"
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_hadoop_sizes < 2 or self.n_spark_sizes < 2:
            raise ExperimentError("need at least 2 sizes per framework")
        if self.train_windows < 1 or self.test_windows < 1:
            raise ExperimentError("train/test windows must be >= 1")
        get_scenario(self.scenario)  # fail fast on unknown names


@dataclass(frozen=True)
class Fig5Case:
    """One bar of Fig. 5: a (workload, input size) evaluation case."""

    workload: str
    input_mb: float
    percent_error: float


@dataclass
class Fig5Result:
    """All cases plus the paper-comparison summary."""

    cases: List[Fig5Case]
    config: Fig5Config

    @property
    def errors(self) -> np.ndarray:
        """Per-case percentage errors."""
        return np.array([c.percent_error for c in self.cases])

    @property
    def mape(self) -> float:
        """Mean prediction error over all cases (paper: 2.68 %)."""
        return float(self.errors.mean())

    @property
    def buckets(self) -> Dict[float, float]:
        """Fractions below 3 %/5 %/8 % (paper: 63 %/82 %/97 %)."""
        return error_buckets(self.errors)

    def per_workload_mape(self) -> Dict[str, float]:
        """Mean error per workload type."""
        out: Dict[str, List[float]] = {}
        for case in self.cases:
            out.setdefault(case.workload, []).append(case.percent_error)
        return {k: float(np.mean(v)) for k, v in out.items()}

    def render(self) -> str:
        """Fig. 5 as a text table plus the headline comparison."""
        rows = [
            [w, f"{e:.2f}%"] for w, e in sorted(self.per_workload_mape().items())
        ]
        table = render_table(
            ["co-runner workload", "mean error"],
            rows,
            title="Fig. 5 — prediction error of the performance model",
        )
        b = self.buckets
        summary = (
            f"\ncases: {len(self.cases)} | mean error {self.mape:.2f}% "
            f"(paper {PAPER_FIG5['mape']:.2f}%)\n"
            f"< 3%: {b[3.0]:.1%} (paper {PAPER_FIG5['buckets'][3.0]:.1%}) | "
            f"< 5%: {b[5.0]:.1%} (paper {PAPER_FIG5['buckets'][5.0]:.1%}) | "
            f"< 8%: {b[8.0]:.1%} (paper {PAPER_FIG5['buckets'][8.0]:.1%})"
        )
        return table + summary


def _representative_for(workload: str, cfg: Fig5Config) -> Component:
    """The component whose service time the campaign predicts.

    ``nutch-search`` keeps the paper's synthetic searching component
    (shaped by the config's ``search_mean_s``/``search_scv``) so the
    default campaign is bit-identical to the pre-scenario driver; any
    other scenario profiles a detached clone of its most numerous
    class's representative — the class whose mispredictions would hurt
    the scheduler most.
    """
    if cfg.scenario == "nutch-search":
        return Component(
            name=f"searching-rep-{workload}",
            cls=ComponentClass.SEARCHING,
            base_service=LogNormal(cfg.search_mean_s, cfg.search_scv),
        )
    spec = get_scenario(cfg.scenario)
    service = spec.build_service(spec.runner_config(scale=cfg.scale))
    counts: Dict[ComponentClass, int] = {}
    for comp in service.components:
        counts[comp.cls] = counts.get(comp.cls, 0) + 1
    hot_cls = max(counts, key=lambda c: (counts[c], c.value))
    rep = service.representative(hot_cls)
    return Component(
        name=f"{hot_cls.value}-rep-{workload}",
        cls=rep.cls,
        base_service=rep.base_service,
    )


def _conditions_for(workload: str, cfg: Fig5Config) -> List[BatchJobSpec]:
    if workload.startswith("hadoop"):
        sizes = np.geomspace(mb(50), gb(4), cfg.n_hadoop_sizes)
    else:
        sizes = np.geomspace(mb(200), gb(7), cfg.n_spark_sizes)
    return [BatchJobSpec.of(workload, float(s)) for s in sizes]


def _run_workload_campaign(args: Tuple[str, Fig5Config]) -> List[Fig5Case]:
    """One workload's whole train/evaluate campaign (one sweep point).

    Module-level and picklable so :func:`parallel_map` can ship it to a
    spawn worker; draws from a workload-named RNG stream so the result
    does not depend on which process (or in which order) it runs.
    """
    workload, cfg = args
    rng = RngRegistry(cfg.seed).get(f"fig5.{workload}")
    interference = default_interference_model(cfg.interference_noise)
    prof_cfg = ProfilingConfig(
        window_s=cfg.window_s,
        request_rate=cfg.request_rate,
        repetitions=cfg.train_windows + cfg.test_windows,
    )
    representative = _representative_for(workload, cfg)
    specs = _conditions_for(workload, cfg)
    training = TrainingSet()
    held_out = []  # (input_mb, [(u, x_bar), ...])
    for spec in specs:
        windows = observe_condition(
            representative,
            [spec],
            interference,
            prof_cfg,
            rng,
            condition_tag=f"{workload}-{spec.input_mb:.0f}",
        )
        for u, x_bar, _scv in windows[: cfg.train_windows]:
            training.add(u, x_bar)
        held_out.append((spec.input_mb, windows[cfg.train_windows :]))
    # "In each test": one model per workload type, trained on that
    # type's history.
    model = CombinedServiceTimeModel().fit(
        training.contention, training.service_times
    )
    cases: List[Fig5Case] = []
    for input_mb, windows in held_out:
        errors = []
        for u, x_bar, _scv in windows:
            predicted = model.predict_one(u)
            errors.append(abs(predicted - x_bar) / x_bar * 100.0)
        cases.append(
            Fig5Case(
                workload=workload,
                input_mb=float(input_mb),
                percent_error=float(np.mean(errors)),
            )
        )
    return cases


#: Coarse wall-clock calibration for one simulated *window-second* of a
#: profiling campaign (measured ~7e-6 s on the dev host — a default
#: 20-size × 4-window campaign runs in ~30 ms — rounded up for margin).
FIG5_WALL_S_PER_WINDOW_SECOND = 2e-5


def campaign_cost_estimate_s(cfg: Fig5Config) -> float:
    """Expected wall-clock of one per-workload campaign.

    Each campaign simulates ``n_sizes × (train + test) × window_s``
    seconds of profiling windows.  Default-size campaigns are *light*
    (tens of milliseconds), so the cost-aware ``auto`` backend rule
    correctly keeps the six-campaign batch on zero-start-up threads —
    a spawn pool would pay seconds of per-worker import for
    sub-second total compute.  Scaled-up campaigns (many sizes, long
    windows) clear the spawn-tax cutoff and route to processes, where
    true parallelism finally pays for itself.
    """
    windows = cfg.train_windows + cfg.test_windows
    n_sizes = max(cfg.n_hadoop_sizes, cfg.n_spark_sizes)
    return float(
        n_sizes * windows * cfg.window_s * FIG5_WALL_S_PER_WINDOW_SECOND
    )


def run_fig5(
    config: Fig5Config | None = None,
    workers: int = 1,
    backend=None,
    chunk_size=None,
) -> Fig5Result:
    """Run the whole Fig. 5 campaign.

    ``workers``/``backend`` fan the six per-workload campaigns out over
    an execution backend (:mod:`repro.sim.backends`); the per-workload
    RNG streams make the numbers identical for any worker count or
    backend.  The default ``backend=None`` goes through the cost-aware
    ``auto`` rule with :func:`campaign_cost_estimate_s`: default-size
    campaigns are cheap and stay on threads (no spawn tax), scaled-up
    ones route to spawn processes for true parallelism.
    """
    cfg = config or Fig5Config()
    per_workload = parallel_map(
        _run_workload_campaign,
        [(w, cfg) for w in HADOOP_WORKLOADS + SPARK_WORKLOADS],
        workers=workers,
        backend=backend,
        chunk_size=chunk_size,
        est_cost_s=campaign_cost_estimate_s(cfg),
    )
    cases = [case for campaign in per_workload for case in campaign]
    return Fig5Result(cases=cases, config=cfg)
