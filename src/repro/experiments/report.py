"""Plain-text tables and series charts for experiment output.

The paper's artifacts are figures; a terminal reproduction renders the
same data as aligned tables and simple horizontal bar charts, which is
what the benchmark harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError

__all__ = ["render_table", "render_bars", "format_ms", "format_ci"]


def format_ms(seconds: float, digits: int = 2) -> str:
    """Format a latency in milliseconds with a unit suffix."""
    return f"{seconds * 1e3:.{digits}f}ms"


def format_ci(lo: float, hi: float, digits: int = 2) -> str:
    """Format a confidence interval as ``[lo, hi]`` (pre-scaled values)."""
    if hi < lo:
        raise ExperimentError(f"interval upper bound {hi} below lower {lo}")
    return f"[{lo:.{digits}f}, {hi:.{digits}f}]"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ExperimentError("table needs headers")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
    log: bool = False,
) -> str:
    """Render a labelled horizontal bar chart (terminal 'figure').

    ``log=True`` scales bars by log10, which keeps the RED-5 blow-ups
    of Fig. 6 on the same axis as PCS.
    """
    if not values:
        raise ExperimentError("no values to chart")
    if width < 1:
        raise ExperimentError("width must be >= 1")
    import math

    vals = dict(values)
    if any(v < 0 for v in vals.values()):
        raise ExperimentError("bar values must be >= 0")
    if log:
        floor = min(v for v in vals.values() if v > 0) if any(vals.values()) else 1.0
        scale_of = {
            k: (math.log10(v / floor) + 1.0 if v > 0 else 0.0)
            for k, v in vals.items()
        }
    else:
        scale_of = vals
    top = max(scale_of.values()) or 1.0
    label_w = max(len(k) for k in vals)
    lines = [title] if title else []
    for key, value in vals.items():
        bar = "#" * max(1 if value > 0 else 0, int(round(scale_of[key] / top * width)))
        lines.append(f"{key.ljust(label_w)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)
