"""Fig. 7 — scalability of the scheduling algorithm (§VI-D).

The paper measures the scheduler's *analysis* time (constructing the
performance matrix from monitored information) and *search* time (the
greedy loop) for growing services, up to 640 components on 128 nodes,
reporting 551 ms at the top of the range — under 0.1 % of the 600 s
scheduling interval.

This driver times our implementation on synthetic-but-realistic
instances of the same sizes: random component demands, random batch
contention per node, the ground-truth oracle predictor (so timing
measures the scheduler, not profiling).  It also times the §VI-D
hierarchical strategy beyond 640 components.

Grid points run through :func:`repro.sim.sweep.parallel_map`.  The
default stays ``workers=1`` because co-timed points contend for cores
and would inflate each other's wall-clock; use ``workers>1`` only for
quick shape checks where absolute times don't matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.report import render_table
from repro.interference.ground_truth import default_interference_model
from repro.model.matrix import MatrixInputs
from repro.scenarios import get_scenario
from repro.model.predictor import OraclePredictor
from repro.scheduler.hierarchical import HierarchicalScheduler
from repro.scheduler.pcs import PCSScheduler, SchedulerConfig
from repro.scheduler.threshold import StaticThreshold
from repro.service.component import Component, ComponentClass
from repro.sim.aggregate import SeedAggregate
from repro.sim.sweep import parallel_map
from repro.simcore.distributions import LogNormal
from repro.units import ms

__all__ = ["Fig7Config", "Fig7Point", "Fig7Result", "run_fig7", "make_instance"]

#: Paper's wall-clock at the largest point (640 components, 128 nodes).
PAPER_TOP_TIME_S = 0.551

#: Paper's scheduling interval — the budget the time is compared against.
PAPER_INTERVAL_S = 600.0


@dataclass(frozen=True)
class Fig7Config:
    """The (m, k) grid and measurement repetitions."""

    sizes: Tuple[Tuple[int, int], ...] = (
        (40, 8),
        (80, 16),
        (160, 32),
        (320, 64),
        (640, 128),
    )
    repeats: int = 3
    seed: int = 0
    hierarchical_sizes: Tuple[Tuple[int, int], ...] = ((1280, 128), (2560, 128))
    hierarchical_group_size: int = 640
    #: ``None`` keeps the paper's synthetic all-searching instances
    #: (bit-identical to the pre-scenario driver); a registered
    #: scenario name derives each instance's class mix and per-class
    #: demand templates from that scenario's topology instead, so the
    #: scalability curve can be measured for any workload shape.
    scenario: Optional[str] = None
    scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ExperimentError("need at least one (m, k) point")
        if any(m < 1 or k < 1 for m, k in self.sizes):
            raise ExperimentError("sizes must be positive")
        if self.repeats < 1:
            raise ExperimentError("repeats must be >= 1")
        if self.scenario is not None:
            get_scenario(self.scenario)  # fail fast on unknown names


@dataclass(frozen=True)
class Fig7Point:
    """One measured grid point.

    Timings are the per-phase minima over the configured repeats (the
    measurement-noise floor, reduced through
    :class:`repro.sim.aggregate.SeedAggregate` — repeats are seeded
    ``seed + rep``, i.e. they *are* a seed sweep); ``total_std_s``
    records the repeat-to-repeat spread of the total for context.
    """

    m: int
    k: int
    analysis_time_s: float
    search_time_s: float
    n_migrations: int
    hierarchical: bool = False
    total_std_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        """Analysis + search (the quantity Fig. 7 plots)."""
        return self.analysis_time_s + self.search_time_s


@dataclass
class Fig7Result:
    """All measured points."""

    points: List[Fig7Point]
    config: Fig7Config

    def top_point(self) -> Fig7Point:
        """The (640, 128) point the paper quotes 551 ms for."""
        flat = [p for p in self.points if not p.hierarchical]
        return max(flat, key=lambda p: p.m)

    def render(self) -> str:
        """Fig. 7 as a table plus the paper comparison."""
        rows = [
            [
                p.m,
                p.k,
                "hier" if p.hierarchical else "flat",
                f"{p.analysis_time_s * 1e3:.1f}",
                f"{p.search_time_s * 1e3:.1f}",
                f"{p.total_time_s * 1e3:.1f}",
                p.n_migrations,
            ]
            for p in self.points
        ]
        table = render_table(
            ["m", "k", "mode", "analysis (ms)", "search (ms)", "total (ms)", "migrations"],
            rows,
            title="Fig. 7 — scheduling algorithm scalability",
        )
        top = self.top_point()
        frac = top.total_time_s / PAPER_INTERVAL_S
        return table + (
            f"\ntop point ({top.m} comps, {top.k} nodes): "
            f"{top.total_time_s * 1e3:.0f} ms "
            f"(paper: {PAPER_TOP_TIME_S * 1e3:.0f} ms); "
            f"{frac:.3%} of the 600 s scheduling interval"
        )


@lru_cache(maxsize=32)
def _scenario_rows(m: int, scenario: str, scale: float):
    """Per-row (stage, class, demand template) cycled from a scenario.

    The scenario's components are tiled to ``m`` rows and sorted by
    stage, so a synthetic instance of any size keeps the scenario's
    class mix, stage structure and per-class demand shape.  Memoized —
    the rows are deterministic per (m, scenario, scale) and the grid
    driver asks for the same ones once per repeat; callers must treat
    the returned arrays as read-only (copy before handing them out).
    """
    spec = get_scenario(scenario)
    comps = spec.build_service(spec.runner_config(scale=scale)).components
    rows = sorted(
        (
            (comp.stage_index, comp.cls, comp.demand.as_array())
            for i in range(m)
            for comp in (comps[i % len(comps)],)
        ),
        key=lambda row: row[0],
    )
    stage_of = np.array([r[0] for r in rows], dtype=np.int64)
    classes = tuple(r[1] for r in rows)
    templates = np.stack([r[2] for r in rows])
    return stage_of, classes, templates


def make_instance(
    m: int,
    k: int,
    rng: np.random.Generator,
    n_stages: int = 3,
    scenario: Optional[str] = None,
    scale: float = 1.0,
) -> MatrixInputs:
    """A synthetic scheduling instance with realistic magnitudes.

    By default components carry searching-like demands; with
    ``scenario`` given, the class mix, stage structure and demand
    templates come from that scenario's topology (tiled to ``m``).
    Nodes carry random batch contention; a third of the nodes are 'hot'
    so the greedy has real work to do (timings on an instance with
    nothing to migrate would flatter the search loop).
    """
    if m < n_stages:
        raise ExperimentError(f"need m >= {n_stages}")
    if scenario is None:
        stage_of = np.sort(rng.integers(0, n_stages, m))
        classes = [ComponentClass.SEARCHING] * m
        templates = np.array([0.04, 1.0, 4.0, 1.5])
    else:
        stage_of, classes, templates = _scenario_rows(m, scenario, scale)
        stage_of, classes = stage_of.copy(), list(classes)
    demands = rng.uniform(0.5, 1.5, (m, 4)) * templates
    assignment = rng.integers(0, k, m)
    node_totals = np.zeros((k, 4))
    for i in range(m):
        node_totals[assignment[i]] += demands[i]
    hot = rng.random(k) < 0.33
    batch = rng.uniform(0.0, 1.0, (k, 4)) * np.array([0.9, 40.0, 250.0, 90.0])
    node_totals += batch * hot[:, None]
    arrival = rng.uniform(5.0, 40.0, m)
    return MatrixInputs(
        stage_of=stage_of,
        classes=classes,
        demands=demands,
        assignment=assignment,
        node_totals=node_totals,
        arrival_rates=arrival,
    )


def _oracle(config: Optional[Fig7Config] = None) -> OraclePredictor:
    if config is None or config.scenario is None:
        rep = Component(
            name="fig7-rep",
            cls=ComponentClass.SEARCHING,
            base_service=LogNormal(ms(3.5), 0.5),
        )
        return OraclePredictor(
            default_interference_model(noise_sigma=0.0),
            {ComponentClass.SEARCHING: rep},
        )
    spec = get_scenario(config.scenario)
    service = spec.build_service(spec.runner_config(scale=config.scale))
    reps = {cls: service.representative(cls) for cls in service.classes()}
    return OraclePredictor(default_interference_model(noise_sigma=0.0), reps)


def _measure_flat_point(args: Tuple[int, int, Fig7Config]) -> Fig7Point:
    """Noise-floor timing of one flat (m, k) grid point over repeats.

    The repeat reduction goes through the shared
    :class:`~repro.sim.aggregate.SeedAggregate` layer (each repeat is
    the same instance family under seed ``seed + rep``): timings take
    the per-phase minimum — the standard noise-floor convention for
    micro-timings — and the migration count takes the nearest-rank
    median across repeats.

    Module-level and picklable so :func:`parallel_map` can ship it to a
    spawn worker.
    """
    m, k, cfg = args
    predictor = _oracle(cfg)
    sched_cfg = SchedulerConfig(threshold=StaticThreshold(ms(1)))
    records = {}
    for rep in range(cfg.repeats):
        seed = cfg.seed + rep
        rng = np.random.default_rng(seed)
        inputs = make_instance(m, k, rng, scenario=cfg.scenario, scale=cfg.scale)
        scheduler = PCSScheduler(predictor, sched_cfg)
        outcome = scheduler.schedule(inputs)
        records[seed] = {
            "analysis_time_s": outcome.analysis_time_s,
            "search_time_s": outcome.search_time_s,
            "total_time_s": outcome.analysis_time_s + outcome.search_time_s,
            "n_migrations": float(outcome.n_migrations),
        }
    agg = SeedAggregate.from_records(f"fig7-flat-{m}x{k}", float(m), records)
    return Fig7Point(
        m=m,
        k=k,
        analysis_time_s=agg["analysis_time_s"].min,
        search_time_s=agg["search_time_s"].min,
        n_migrations=int(agg["n_migrations"].p50),
        total_std_s=agg["total_time_s"].std,
    )


def _measure_hier_point(args: Tuple[int, int, Fig7Config]) -> Fig7Point:
    """Timing of one hierarchical grid point (beyond 640 components)."""
    m, k, cfg = args
    predictor = _oracle(cfg)
    sched_cfg = SchedulerConfig(threshold=StaticThreshold(ms(1)))
    rng = np.random.default_rng(cfg.seed)
    inputs = make_instance(m, k, rng, scenario=cfg.scenario, scale=cfg.scale)
    scheduler = HierarchicalScheduler(
        predictor, sched_cfg, group_size=cfg.hierarchical_group_size
    )
    outcome = scheduler.schedule(inputs)
    return Fig7Point(
        m=m,
        k=k,
        analysis_time_s=outcome.analysis_time_s,
        search_time_s=outcome.search_time_s,
        n_migrations=outcome.n_migrations,
        hierarchical=True,
    )


#: Coarse wall-clock calibration for one performance-matrix cell per
#: timing repeat (build + greedy amortised) — only has to rank a grid
#: point against the worker spawn tax.
SCHED_WALL_S_PER_CELL = 2e-5


def point_cost_estimate_s(cfg: Fig7Config) -> float:
    """Expected wall-clock of the grid's most expensive point.

    Scheduling work scales with the ``m × k`` matrix; the largest
    point dominates a batch's wall-clock, so the ``auto`` backend rule
    sizes the whole batch by it — the conservative choice for Fig. 7,
    where thread workers sharing the GIL would silently inflate the
    *measured* durations that are the figure's whole output.
    """
    cells = max(
        [cfg.repeats * m * k for m, k in cfg.sizes]
        + [m * k for m, k in cfg.hierarchical_sizes]
    )
    return float(cells * SCHED_WALL_S_PER_CELL)


def run_fig7(
    config: Fig7Config | None = None,
    workers: int = 1,
    backend=None,
    chunk_size=None,
) -> Fig7Result:
    """Measure analysis + search times over the (m, k) grid.

    Keep ``workers=1`` (the default) for paper-faithful timings:
    co-scheduled points steal cycles from each other.  The default
    ``backend=None`` goes through the cost-aware ``auto`` rule with
    :func:`point_cost_estimate_s`; the paper-sized grid estimates well
    past the spawn-tax cutoff, so ``workers > 1`` spawns processes
    rather than GIL-sharing threads (which would inflate the measured
    durations).  For deliberately tiny custom grids pass ``--backend
    process`` explicitly if timing fidelity still matters.
    """
    cfg = config or Fig7Config()
    est = point_cost_estimate_s(cfg)
    points: List[Fig7Point] = parallel_map(
        _measure_flat_point,
        [(m, k, cfg) for m, k in cfg.sizes],
        workers=workers,
        backend=backend,
        chunk_size=chunk_size,
        est_cost_s=est,
    )
    points += parallel_map(
        _measure_hier_point,
        [(m, k, cfg) for m, k in cfg.hierarchical_sizes],
        workers=workers,
        backend=backend,
        chunk_size=chunk_size,
        est_cost_s=est,
    )
    return Fig7Result(points=points, config=cfg)
