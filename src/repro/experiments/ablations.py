"""Ablations of the design choices the paper fixes without evaluating.

The paper pins several knobs by argument rather than measurement: the
migration threshold ε (§VI-C), the Algorithm 2 partial matrix update
(§V), prediction fidelity (implicitly), and the hierarchical strategy
(§VI-D).  Each ablation here varies exactly one of them and reports the
cost/benefit, using small-but-faithful configurations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.policies import BasicPolicy, PCSPolicy
from repro.errors import ExperimentError
from repro.experiments.fig7 import make_instance, _oracle
from repro.experiments.report import render_table
from repro.model.matrix import PerformanceMatrix
from repro.monitoring.monitor import MonitorConfig
from repro.scheduler.pcs import PCSScheduler, SchedulerConfig
from repro.scheduler.threshold import AdaptiveThreshold, StaticThreshold
from repro.service.nutch import NutchConfig
from repro.sim.runner import ExperimentRunner, RunnerConfig
from repro.units import ms
from repro.workloads.generator import GeneratorConfig

__all__ = [
    "AblationConfig",
    "threshold_sweep",
    "update_mode_comparison",
    "build_method_comparison",
    "predictor_fidelity",
    "hierarchy_tradeoff",
    "monitor_noise_sensitivity",
    "run_all_ablations",
]


@dataclass(frozen=True)
class AblationConfig:
    """Shared scale knobs for the runner-based ablations."""

    arrival_rate: float = 100.0
    n_nodes: int = 16
    n_intervals: int = 6
    warmup_intervals: int = 1
    interval_s: float = 30.0
    seed: int = 11
    nutch: NutchConfig = field(
        default_factory=lambda: NutchConfig(n_search_groups=10, replicas_per_group=4)
    )

    def runner(self, **overrides) -> ExperimentRunner:
        """Build a runner for this scale."""
        kwargs = dict(
            n_nodes=self.n_nodes,
            arrival_rate=self.arrival_rate,
            interval_s=self.interval_s,
            n_intervals=self.n_intervals,
            warmup_intervals=self.warmup_intervals,
            seed=self.seed,
            nutch=self.nutch,
        )
        kwargs.update(overrides)
        return ExperimentRunner(RunnerConfig(**kwargs))


def threshold_sweep(
    cfg: AblationConfig | None = None,
    epsilons_ms: Tuple[float, ...] = (0.1, 0.3, 1.0, 5.0, 20.0),
) -> str:
    """ε trade-off: too low churns migrations, too high misses gains.

    The paper's ε=5 ms was 5 % of *its* accepted latency; this sweep
    shows where the knee sits on our scale, plus the adaptive policy.
    """
    ab = cfg or AblationConfig()
    runner = ab.runner()
    rows = []
    basic = runner.run(BasicPolicy())
    rows.append(["Basic", "-", f"{basic.component_p99_s*1e3:.1f}",
                 f"{basic.overall_mean_s*1e3:.1f}", 0])
    for eps in epsilons_ms:
        policy = PCSPolicy(
            scheduler_config=SchedulerConfig(threshold=StaticThreshold(ms(eps)))
        )
        r = runner.run(policy)
        rows.append([f"PCS eps={eps}ms", f"{eps:.1f}",
                     f"{r.component_p99_s*1e3:.1f}",
                     f"{r.overall_mean_s*1e3:.1f}", r.n_migrations])
    adaptive = PCSPolicy(
        scheduler_config=SchedulerConfig(
            threshold=AdaptiveThreshold(fraction=0.03, min_epsilon_s=ms(0.3))
        )
    )
    r = runner.run(adaptive)
    rows.append(["PCS adaptive 3%", "adaptive",
                 f"{r.component_p99_s*1e3:.1f}",
                 f"{r.overall_mean_s*1e3:.1f}", r.n_migrations])
    return render_table(
        ["policy", "eps", "component p99 (ms)", "overall mean (ms)", "migrations"],
        rows,
        title=f"Ablation: migration threshold @ {ab.arrival_rate:g} req/s",
    )


def update_mode_comparison(
    sizes: Tuple[Tuple[int, int], ...] = ((80, 16), (160, 32), (320, 64)),
    seed: int = 3,
) -> str:
    """Algorithm 2's partial update vs exact full row rebuilds.

    Measures both the schedule quality (predicted final overall latency)
    and the search time — the fidelity/speed trade the paper takes.
    """
    predictor = _oracle()
    rows = []
    for m, k in sizes:
        per_mode = {}
        for mode in ("algorithm2", "full"):
            inputs = make_instance(m, k, np.random.default_rng(seed))
            sched = PCSScheduler(
                predictor,
                SchedulerConfig(
                    threshold=StaticThreshold(ms(1)), update_mode=mode
                ),
            )
            out = sched.schedule(inputs)
            per_mode[mode] = out
        a2, full = per_mode["algorithm2"], per_mode["full"]
        rows.append(
            [
                f"{m}x{k}",
                f"{a2.final_overall_s*1e3:.2f}",
                f"{full.final_overall_s*1e3:.2f}",
                f"{a2.search_time_s*1e3:.1f}",
                f"{full.search_time_s*1e3:.1f}",
                f"{a2.n_migrations}/{full.n_migrations}",
            ]
        )
    return render_table(
        [
            "instance",
            "final overall A2 (ms)",
            "final overall full (ms)",
            "search A2 (ms)",
            "search full (ms)",
            "migrations A2/full",
        ],
        rows,
        title="Ablation: Algorithm 2 partial update vs exact rebuild",
    )


def build_method_comparison(
    sizes: Tuple[Tuple[int, int], ...] = ((20, 5), (40, 8), (80, 12)),
    seed: int = 5,
) -> str:
    """Vectorised matrix build vs the literal reference implementation."""
    predictor = _oracle()
    rows = []
    for m, k in sizes:
        inputs = make_instance(m, k, np.random.default_rng(seed))
        pm_fast = PerformanceMatrix(inputs.copy(), predictor)
        t0 = time.perf_counter()
        pm_fast.build("fast")
        t_fast = time.perf_counter() - t0
        pm_ref = PerformanceMatrix(inputs.copy(), predictor)
        t0 = time.perf_counter()
        pm_ref.build("reference")
        t_ref = time.perf_counter() - t0
        max_diff = float(np.max(np.abs(pm_fast.L - pm_ref.L)))
        rows.append(
            [
                f"{m}x{k}",
                f"{t_fast*1e3:.1f}",
                f"{t_ref*1e3:.1f}",
                f"{t_ref/max(t_fast, 1e-9):.0f}x",
                f"{max_diff:.2e}",
            ]
        )
    return render_table(
        ["instance", "fast (ms)", "reference (ms)", "speedup", "max |diff|"],
        rows,
        title="Ablation: vectorised vs reference matrix build",
    )


def predictor_fidelity(cfg: AblationConfig | None = None) -> str:
    """Trained Eq. 1 models vs the ground-truth oracle.

    The gap isolates how much scheduling quality prediction error
    costs — the paper argues 2.68 % error is 'sufficient ... to achieve
    a near-optimal performance'.
    """
    ab = cfg or AblationConfig()
    runner = ab.runner()
    sc = SchedulerConfig(
        threshold=AdaptiveThreshold(fraction=0.03, min_epsilon_s=ms(0.3))
    )
    rows = []
    basic = runner.run(BasicPolicy())
    rows.append(["Basic", f"{basic.component_p99_s*1e3:.1f}",
                 f"{basic.overall_mean_s*1e3:.1f}", 0])
    trained = runner.run(PCSPolicy(scheduler_config=sc))
    rows.append(["PCS (trained Eq.1)", f"{trained.component_p99_s*1e3:.1f}",
                 f"{trained.overall_mean_s*1e3:.1f}", trained.n_migrations])
    oracle = runner.run(PCSPolicy(scheduler_config=sc, use_oracle=True))
    rows.append(["PCS (oracle)", f"{oracle.component_p99_s*1e3:.1f}",
                 f"{oracle.overall_mean_s*1e3:.1f}", oracle.n_migrations])
    return render_table(
        ["scheduler", "component p99 (ms)", "overall mean (ms)", "migrations"],
        rows,
        title=f"Ablation: prediction fidelity @ {ab.arrival_rate:g} req/s",
    )


def hierarchy_tradeoff(
    m: int = 960,
    k: int = 64,
    group_sizes: Tuple[int, ...] = (120, 240, 480, 960),
    seed: int = 9,
) -> str:
    """§VI-D's grouped scheduling: time vs achieved reduction."""
    from repro.scheduler.hierarchical import HierarchicalScheduler

    predictor = _oracle()
    rows = []
    for gs in group_sizes:
        inputs = make_instance(m, k, np.random.default_rng(seed))
        sched = HierarchicalScheduler(
            predictor,
            SchedulerConfig(threshold=StaticThreshold(ms(1))),
            group_size=gs,
        )
        out = sched.schedule(inputs)
        rows.append(
            [
                f"{gs}" + (" (flat)" if gs >= m else ""),
                f"{out.total_time_s*1e3:.0f}",
                f"{out.predicted_reduction_s*1e3:.2f}",
                out.n_migrations,
            ]
        )
    return render_table(
        ["group size", "time (ms)", "predicted reduction (ms)", "migrations"],
        rows,
        title=f"Ablation: hierarchical scheduling on {m} components, {k} nodes",
    )


def monitor_noise_sensitivity(
    noise_scales: Tuple[float, ...] = (0.0, 1.0, 3.0, 10.0),
    cfg: AblationConfig | None = None,
) -> str:
    """How monitor noise degrades PCS (robustness check).

    Scales the default core/bandwidth/cache noise levels together.
    """
    ab = cfg or AblationConfig()
    sc = SchedulerConfig(
        threshold=AdaptiveThreshold(fraction=0.03, min_epsilon_s=ms(0.3))
    )
    rows = []
    for scale in noise_scales:
        base = MonitorConfig()
        monitor = MonitorConfig(
            core_noise=base.core_noise * scale,
            bw_noise=base.bw_noise * scale,
            cache_noise=base.cache_noise * scale,
        )
        runner = ab.runner(monitor=monitor)
        r = runner.run(PCSPolicy(scheduler_config=sc))
        rows.append(
            [
                f"{scale:g}x",
                f"{r.component_p99_s*1e3:.1f}",
                f"{r.overall_mean_s*1e3:.1f}",
                r.n_migrations,
            ]
        )
    return render_table(
        ["monitor noise", "component p99 (ms)", "overall mean (ms)", "migrations"],
        rows,
        title=f"Ablation: monitor-noise sensitivity @ {ab.arrival_rate:g} req/s",
    )


def run_all_ablations(cfg: AblationConfig | None = None) -> str:
    """Run every ablation and join the reports."""
    ab = cfg or AblationConfig()
    parts = [
        threshold_sweep(ab),
        update_mode_comparison(),
        build_method_comparison(),
        predictor_fidelity(ab),
        hierarchy_tradeoff(),
        monitor_noise_sensitivity(cfg=ab),
    ]
    return "\n\n".join(parts)
