"""Analysis helpers over Fig. 6-style sweep results.

Quantifies the qualitative claims the paper makes in prose:

- :func:`crossover_rate` — the arrival rate at which a mitigation
  technique flips from helping to hurting relative to Basic ("when the
  arrival rate gradually increases ... this technique adversely causes
  longer latencies compared to those of Basic");
- :func:`dominance_table` — who is best at each rate;
- :func:`pcs_convergence` — how PCS's per-interval latency series
  settles as migrations accumulate within one run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.report import render_table
from repro.sim.runner import PolicyResult

__all__ = ["crossover_rate", "dominance_table", "pcs_convergence"]


def crossover_rate(
    results: Dict[float, Dict[str, PolicyResult]],
    technique: str,
    baseline: str = "Basic",
    metric: str = "overall_mean_s",
) -> Optional[float]:
    """Estimate where ``technique`` starts losing to ``baseline``.

    Scans the sweep in rate order; at the first transition from
    better-than-baseline to worse-than-baseline, interpolates the
    crossing geometrically (latency ratios move multiplicatively with
    load).  Returns ``None`` when no crossover exists in the sweep, and
    the lowest rate when the technique never helps.
    """
    rates = sorted(results)
    if not rates:
        raise ExperimentError("empty sweep")
    ratios = []
    for rate in rates:
        per_policy = results[rate]
        if technique not in per_policy or baseline not in per_policy:
            raise ExperimentError(
                f"sweep is missing {technique!r} or {baseline!r} at {rate}"
            )
        ratios.append(
            getattr(per_policy[technique], metric)
            / getattr(per_policy[baseline], metric)
        )
    if ratios[0] >= 1.0:
        return rates[0]  # never helped
    for i in range(1, len(rates)):
        if ratios[i] >= 1.0:
            # Geometric interpolation of log(ratio) crossing zero.
            lo, hi = rates[i - 1], rates[i]
            a, b = math.log(ratios[i - 1]), math.log(ratios[i])
            t = -a / (b - a)
            return float(math.exp(
                math.log(lo) + t * (math.log(hi) - math.log(lo))
            ))
    return None


def dominance_table(
    results: Dict[float, Dict[str, PolicyResult]],
    metric: str = "component_p99_s",
) -> str:
    """Which policy wins at each arrival rate, and by how much."""
    if not results:
        raise ExperimentError("empty sweep")
    rows = []
    for rate in sorted(results):
        per_policy = results[rate]
        ranked = sorted(per_policy.items(), key=lambda kv: getattr(kv[1], metric))
        best_name, best = ranked[0]
        runner_up_name, runner_up = ranked[1] if len(ranked) > 1 else ranked[0]
        margin = getattr(runner_up, metric) / getattr(best, metric)
        rows.append(
            [
                f"{rate:g}",
                best_name,
                f"{getattr(best, metric) * 1e3:.1f}",
                runner_up_name,
                f"{margin:.2f}x",
            ]
        )
    return render_table(
        ["rate (req/s)", "best", "best (ms)", "runner-up", "margin"],
        rows,
        title=f"Policy dominance by arrival rate ({metric})",
    )


def pcs_convergence(result: PolicyResult) -> Dict[str, float]:
    """How much PCS improved between its first and last measured interval.

    Returns the first/last per-interval overall means and the relative
    improvement; a positive improvement shows the scheduler adapting
    within the run (beyond what the pooled numbers reveal).
    """
    series = result.per_interval_overall_mean
    if len(series) < 2:
        raise ExperimentError("need at least two measured intervals")
    first, last = float(series[0]), float(series[-1])
    return {
        "first_interval_mean_s": first,
        "last_interval_mean_s": last,
        "relative_improvement": 1.0 - last / first if first > 0 else 0.0,
    }
