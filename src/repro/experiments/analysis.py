"""Analysis helpers over Fig. 6-style sweep results.

Quantifies the qualitative claims the paper makes in prose:

- :func:`crossover_rate` — the arrival rate at which a mitigation
  technique flips from helping to hurting relative to Basic ("when the
  arrival rate gradually increases ... this technique adversely causes
  longer latencies compared to those of Basic");
- :func:`dominance_table` — who is best at each rate;
- :func:`pcs_convergence` — how PCS's per-interval latency series
  settles as migrations accumulate within one run.

The ``summary_*`` variants run the same analyses over a multi-seed
:class:`~repro.sim.aggregate.SweepSummary`, so per-seed reduction goes
through the shared aggregate layer instead of a private loop.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.report import format_ci, render_table
from repro.sim.aggregate import SweepSummary
from repro.sim.runner import PolicyResult

__all__ = [
    "crossover_rate",
    "dominance_table",
    "pcs_convergence",
    "predicted_policy_latency",
    "predicted_latency_curve",
    "predicted_crossover_rate",
    "summary_crossover_rate",
    "summary_dominance_table",
]


def _crossover_from_values(
    values: Dict[float, Dict[str, float]], technique: str, baseline: str
) -> Optional[float]:
    """Shared crossover scan over ``{rate: {policy: metric value}}``."""
    rates = sorted(values)
    if not rates:
        raise ExperimentError("empty sweep")
    ratios = []
    for rate in rates:
        per_policy = values[rate]
        if technique not in per_policy or baseline not in per_policy:
            raise ExperimentError(
                f"sweep is missing {technique!r} or {baseline!r} at {rate}"
            )
        ratios.append(per_policy[technique] / per_policy[baseline])
    if ratios[0] >= 1.0:
        return rates[0]  # never helped
    for i in range(1, len(rates)):
        if ratios[i] >= 1.0:
            # Geometric interpolation of log(ratio) crossing zero.
            lo, hi = rates[i - 1], rates[i]
            a, b = math.log(ratios[i - 1]), math.log(ratios[i])
            t = -a / (b - a)
            return float(math.exp(
                math.log(lo) + t * (math.log(hi) - math.log(lo))
            ))
    return None


def crossover_rate(
    results: Dict[float, Dict[str, PolicyResult]],
    technique: str,
    baseline: str = "Basic",
    metric: str = "overall_mean_s",
) -> Optional[float]:
    """Estimate where ``technique`` starts losing to ``baseline``.

    Scans the sweep in rate order; at the first transition from
    better-than-baseline to worse-than-baseline, interpolates the
    crossing geometrically (latency ratios move multiplicatively with
    load).  Returns ``None`` when no crossover exists in the sweep, and
    the lowest rate when the technique never helps.
    """
    return _crossover_from_values(
        {
            rate: {name: getattr(r, metric) for name, r in per_policy.items()}
            for rate, per_policy in results.items()
        },
        technique,
        baseline,
    )


def summary_crossover_rate(
    summary: SweepSummary,
    technique: str,
    baseline: str = "Basic",
    metric: str = "overall_latency.mean",
) -> Optional[float]:
    """:func:`crossover_rate` over seed-mean metrics of a summary."""
    return _crossover_from_values(
        {
            rate: {
                name: summary.seed_mean(name, rate, metric)
                for name in summary.policies()
            }
            for rate in summary.rates()
        },
        technique,
        baseline,
    )


def _group_benefit(induced, sojourn: float, n_replicas: int) -> float:
    """One group's expected latency after the policy's tail-cutting.

    Dispatches on the :class:`~repro.baselines.policies.InducedLoad`
    shape, so any policy expressible through the descriptor seam gets
    the right closed form without this module naming policy classes.
    Single-replica groups cannot duplicate (the kernels fall back to
    plain random split there) and keep the raw sojourn.
    """
    from repro.model.queueing import (
        hedged_latency,
        quickest_of_k_latency,
        reissue_latency,
    )

    if n_replicas <= 1:
        return float(sojourn)
    k = min(induced.copies, n_replicas)
    if k > 1:
        return float(quickest_of_k_latency(sojourn, k))
    if induced.reissue_fraction > 0.0:
        if induced.hedge_delay_s is not None:
            return float(hedged_latency(sojourn, induced.hedge_delay_s))
        return float(reissue_latency(sojourn, 1.0 - induced.reissue_fraction))
    return float(sojourn)


def predicted_policy_latency(
    topology,
    policy,
    arrival_rate: float,
    rho_max: Optional[float] = None,
    service_scale: float = 1.0,
) -> float:
    """Model-predicted mean overall latency of ``policy`` at one rate.

    The analytic side of §VI-C: each replica is an M/G/1 server (Eq. 2)
    whose arrival rate is the policy's *induced* per-replica rate
    (:meth:`~repro.baselines.policies.InducedLoad.replica_rate` — the
    group-capped executed-copy multiplier times the participation share
    of the stream), so duplicate executions are priced as utilisation.
    Each group's sojourn then gets the policy's exponential-model
    benefit transform (:mod:`repro.model.queueing`), and groups compose
    group-mean → stage-max → DAG critical path exactly as the measured
    objective does (:mod:`repro.model.service_latency`).

    ``service_scale`` inflates every component's base mean service time
    — the knob for folding in average cluster interference, which the
    base (idle-node) demands do not see.  Predictions are comparable
    *across policies* at any fixed scale; crossovers are ratios, so
    they are insensitive to it to first order.
    """
    from repro.model.queueing import DEFAULT_RHO_MAX, mg1_latency_array
    from repro.model.service_latency import (
        dag_overall_latency,
        stage_latencies,
    )

    if arrival_rate <= 0:
        raise ExperimentError(
            f"arrival_rate must be positive, got {arrival_rate!r}"
        )
    if service_scale <= 0:
        raise ExperimentError(
            f"service_scale must be positive, got {service_scale!r}"
        )
    induced = policy.induced_load()
    cap = DEFAULT_RHO_MAX if rho_max is None else rho_max
    group_lats: List[float] = []
    stage_of_group: List[int] = []
    for si, stage in enumerate(topology.stages):
        for group in stage.groups:
            n = group.n_replicas
            lam_r = induced.replica_rate(
                arrival_rate, group.participation, n
            )
            sojourns = mg1_latency_array(
                np.array([c.base_mean * service_scale for c in group]),
                np.array([c.base_scv for c in group]),
                lam_r,
                rho_max=cap,
            )
            group_lats.append(
                _group_benefit(induced, float(np.mean(sojourns)), n)
            )
            stage_of_group.append(si)
    stage_lats = stage_latencies(
        np.asarray(group_lats), np.asarray(stage_of_group)
    )
    return float(
        dag_overall_latency(stage_lats, topology.predecessor_indices)
    )


def predicted_latency_curve(
    topology,
    policy,
    rates: Sequence[float],
    service_scale: float = 1.0,
) -> Dict[float, float]:
    """:func:`predicted_policy_latency` over a rate grid."""
    return {
        float(rate): predicted_policy_latency(
            topology, policy, float(rate), service_scale=service_scale
        )
        for rate in rates
    }


def predicted_crossover_rate(
    topology,
    technique,
    rates: Sequence[float],
    baseline=None,
    service_scale: float = 1.0,
) -> Optional[float]:
    """Model-*derived* help→hurt crossover of a duplication policy.

    The analytic counterpart of :func:`summary_crossover_rate`: scans
    :func:`predicted_policy_latency` curves of ``technique`` vs
    ``baseline`` (default :class:`~repro.baselines.policies.BasicPolicy`)
    over ``rates`` through the same
    :func:`_crossover_from_values` kernel the measured scan uses, so
    "crossover" means the same thing on both sides of the comparison.
    Returns ``None`` when the technique still helps at the highest
    rate, and the lowest rate when it never helps.
    """
    from repro.baselines.policies import BasicPolicy

    if baseline is None:
        baseline = BasicPolicy()
    values = {
        float(rate): {
            technique.name: predicted_policy_latency(
                topology, technique, float(rate),
                service_scale=service_scale,
            ),
            baseline.name: predicted_policy_latency(
                topology, baseline, float(rate),
                service_scale=service_scale,
            ),
        }
        for rate in rates
    }
    return _crossover_from_values(values, technique.name, baseline.name)


def dominance_table(
    results: Dict[float, Dict[str, PolicyResult]],
    metric: str = "component_p99_s",
) -> str:
    """Which policy wins at each arrival rate, and by how much."""
    if not results:
        raise ExperimentError("empty sweep")
    rows = []
    for rate in sorted(results):
        per_policy = results[rate]
        ranked = sorted(per_policy.items(), key=lambda kv: getattr(kv[1], metric))
        best_name, best = ranked[0]
        runner_up_name, runner_up = ranked[1] if len(ranked) > 1 else ranked[0]
        margin = getattr(runner_up, metric) / getattr(best, metric)
        rows.append(
            [
                f"{rate:g}",
                best_name,
                f"{getattr(best, metric) * 1e3:.1f}",
                runner_up_name,
                f"{margin:.2f}x",
            ]
        )
    return render_table(
        ["rate (req/s)", "best", "best (ms)", "runner-up", "margin"],
        rows,
        title=f"Policy dominance by arrival rate ({metric})",
    )


def summary_dominance_table(
    summary: SweepSummary, metric: str = "component_latency.p99"
) -> str:
    """Who wins at each rate on seed-mean metrics, with the winner's CI.

    The multi-seed sibling of :func:`dominance_table`: ranks by the
    aggregate layer's seed-means and shows the winner's Student-t
    interval so a photo-finish is visible as overlapping CIs.  The last
    column is the *paired* runner-up − best interval
    (:meth:`~repro.sim.aggregate.SweepSummary.paired_diff`): policies
    share seeds, so the per-seed deltas cancel common variation — a
    paired interval excluding 0 means the win is real even when the
    two marginal CIs overlap.
    """
    rates = summary.rates()
    if not rates:
        raise ExperimentError("empty summary")
    rows = []
    for rate in rates:
        ranked = sorted(
            ((name, summary.get(name, rate)[metric]) for name in summary.policies()),
            key=lambda kv: kv[1].mean,
        )
        best_name, best = ranked[0]
        runner_up_name, runner_up = ranked[1] if len(ranked) > 1 else ranked[0]
        margin = runner_up.mean / best.mean
        if runner_up_name != best_name:
            try:
                delta = summary.paired_diff(
                    runner_up_name, best_name, rate, metrics=[metric]
                )[metric]
            except ExperimentError:
                # Lopsided seed sets (e.g. a partially rerun cache)
                # cannot be paired; the table still renders.
                paired = "n/a"
            else:
                paired = format_ci(delta.t_lo * 1e3, delta.t_hi * 1e3, digits=2)
        else:
            paired = "n/a"
        rows.append(
            [
                f"{rate:g}",
                best_name,
                f"{best.mean * 1e3:.1f}",
                format_ci(best.t_lo * 1e3, best.t_hi * 1e3, digits=1),
                runner_up_name,
                f"{margin:.2f}x",
                paired,
            ]
        )
    return render_table(
        [
            "rate (req/s)",
            "best",
            "mean (ms)",
            f"{summary.config.confidence:.0%} CI (ms)",
            "runner-up",
            "margin",
            "paired Δ (ms)",
        ],
        rows,
        title=f"Policy dominance by arrival rate ({metric}, seed-mean)",
    )


def pcs_convergence(result: PolicyResult) -> Dict[str, float]:
    """How much PCS improved between its first and last measured interval.

    Returns the first/last per-interval overall means and the relative
    improvement; a positive improvement shows the scheduler adapting
    within the run (beyond what the pooled numbers reveal).
    """
    series = result.per_interval_overall_mean
    if len(series) < 2:
        raise ExperimentError("need at least two measured intervals")
    first, last = float(series[0]), float(series[-1])
    return {
        "first_interval_mean_s": first,
        "last_interval_mean_s": last,
        "relative_improvement": 1.0 - last / first if first > 0 else 0.0,
    }
